"""Tracer overhead: zero simulated cycles, bounded host time when off.

The tracing plane's contract (DESIGN.md section 9): a tracer never
advances the simulated clock, so a traced run and an untraced run land
on the *same* final cycle count; and with tracing disabled the
instrumentation sites cost only a no-op method call, bounded here at
under 5% of host runtime.  Results are written to
``benchmarks/results/BENCH_trace_overhead.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder
from repro.trace import NO_TRACE
from repro.wasp import Wasp

LAUNCHES = 30
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_trace_overhead.json"


def run_workload(trace: bool) -> tuple[int, float, object]:
    """Final simulated cycles, host seconds, and the tracer used."""
    wasp = Wasp(trace=trace)
    image = ImageBuilder().minimal(Mode.LONG64)
    start = time.perf_counter()
    for _ in range(LAUNCHES):
        wasp.launch(image, use_snapshot=False)
    host = time.perf_counter() - start
    return wasp.clock.cycles, host, wasp.tracer


def noop_call_cost(calls: int = 200_000) -> float:
    """Host seconds per NO_TRACE hook call (the disabled-path unit cost)."""
    from repro.trace import Category

    start = time.perf_counter()
    for _ in range(calls):
        NO_TRACE.component("x", 1, Category.GUEST)
    return (time.perf_counter() - start) / calls


@pytest.fixture(scope="module")
def measured(report):
    report.owns_results_file = True  # this module writes RESULTS_PATH itself
    sim_off, host_off, _ = run_workload(trace=False)
    sim_on, host_on, tracer = run_workload(trace=True)
    spans = sum(1 for _ in tracer.walk())
    events = len(tracer.all_events())
    per_call = noop_call_cost()
    # Every span is at most a begin+end pair of hook calls; with tracing
    # disabled the same sites hit NO_TRACE no-ops instead.  Their total
    # host cost relative to the untraced runtime is the disabled-path
    # overhead the <5% acceptance bound is about.
    noop_fraction = (2 * spans + events) * per_call / host_off
    data = {
        "engine_mode": report.engine_mode,
        "launches": LAUNCHES,
        "simulated_cycles": {"disabled": sim_off, "enabled": sim_on},
        "host_seconds": {"disabled": round(host_off, 6),
                         "enabled": round(host_on, 6)},
        "trace_records": {"spans": spans, "instants": events},
        "noop_call_seconds": per_call,
        "disabled_overhead_fraction": noop_fraction,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    report.row("simulated cycles, traced vs not", f"{sim_off:,}", f"{sim_on:,}")
    report.row("disabled-tracer host overhead", "< 5%",
               f"{noop_fraction:.2%}")
    report.note(f"{spans} spans + {events} instants over {LAUNCHES} launches; "
                f"results in {RESULTS_PATH.name}")
    return data


class TestTraceOverhead:
    def test_zero_simulated_overhead(self, measured):
        assert (measured["simulated_cycles"]["enabled"]
                == measured["simulated_cycles"]["disabled"])

    def test_disabled_host_overhead_under_five_percent(self, measured):
        assert measured["disabled_overhead_fraction"] < 0.05

    def test_results_file_seeded(self, measured):
        stored = json.loads(RESULTS_PATH.read_text())
        assert stored["launches"] == LAUNCHES
        assert stored["disabled_overhead_fraction"] < 0.05
