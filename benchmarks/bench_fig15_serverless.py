"""Figure 15: serverless virtines (Vespid) vs an OpenWhisk-like platform.

A Locust-style load (ramp-up, two bursts, ramp-down) drives both
platforms.  Paper shape: Vespid's lightweight virtine execution keeps
response latency low and flat through the bursts, while the container
platform pays cold starts (and queueing) when load spikes.
"""

import pytest

from repro.apps.serverless import (
    BurstyWorkload,
    OpenWhiskLikePlatform,
    PlatformReport,
    VespidPlatform,
)

WORKERS = 8


@pytest.fixture(scope="module")
def measured(report):
    workload = BurstyWorkload.paper_pattern(scale=1.0)
    arrivals = workload.arrivals()
    vespid = VespidPlatform(max_workers=WORKERS)
    openwhisk = OpenWhiskLikePlatform(max_workers=WORKERS)
    reports = {
        "vespid": PlatformReport(platform="vespid", records=vespid.run(arrivals)),
        "openwhisk": PlatformReport(platform="openwhisk", records=openwhisk.run(arrivals)),
    }

    report.line(f"  workload: {len(arrivals)} requests, ramp/burst/dip/burst/ramp-down")
    report.row("vespid cold start", "sub-ms (virtine)",
               f"{vespid.cold_start_s() * 1000:.2f} ms")
    report.row("openwhisk cold start", "container (100s of ms)",
               f"{openwhisk.cold_start_s() * 1000:.1f} ms")
    for name, platform_report in reports.items():
        report.line(
            f"  {name:10s} p50 {platform_report.latency_percentile_ms(50):9.2f} ms"
            f"   p99 {platform_report.latency_percentile_ms(99):9.2f} ms"
            f"   max {max(r.latency_ms for r in platform_report.records):9.2f} ms"
            f"   colds {platform_report.cold_count}"
        )
    report.line("  vespid time series (tput rps / p99 ms per 5s):")
    for t, _, p99, rps in reports["vespid"].time_series()[::5]:
        report.line(f"    t={t:5.1f}s  {rps:7.1f} rps   p99 {p99:9.3f} ms")
    report.line("  openwhisk time series:")
    for t, _, p99, rps in reports["openwhisk"].time_series()[::5]:
        report.line(f"    t={t:5.1f}s  {rps:7.1f} rps   p99 {p99:9.3f} ms")
    return reports, vespid, openwhisk, arrivals


class TestShape:
    def test_vespid_latency_flat(self, measured):
        reports, *_ = measured
        vespid = reports["vespid"]
        assert vespid.latency_percentile_ms(99) < 5.0

    def test_openwhisk_tail_shows_cold_starts(self, measured):
        reports, *_ = measured
        assert reports["openwhisk"].latency_percentile_ms(99.9) > 100.0

    def test_vespid_wins_every_percentile(self, measured):
        reports, *_ = measured
        for q in (50, 90, 99):
            assert (
                reports["vespid"].latency_percentile_ms(q)
                < reports["openwhisk"].latency_percentile_ms(q)
            )

    def test_throughput_tracks_offered_load(self, measured):
        reports, *_ = measured
        series = reports["vespid"].time_series()
        burst_tput = max(rps for _, _, _, rps in series)
        assert burst_tput > 300  # the 400 rps bursts are absorbed

    def test_all_requests_served(self, measured):
        reports, _, _, arrivals = measured
        assert len(reports["vespid"].records) == len(arrivals)
        assert len(reports["openwhisk"].records) == len(arrivals)


def test_benchmark_vespid_run(benchmark, measured):
    _, vespid, _, arrivals = measured
    benchmark.pedantic(vespid.run, args=(arrivals,), rounds=3, iterations=1)


def test_benchmark_openwhisk_run(benchmark, measured):
    _, _, openwhisk, arrivals = measured
    benchmark.pedantic(openwhisk.run, args=(arrivals,), rounds=3, iterations=1)
