"""Figure 14 (E8): JavaScript virtine slowdown relative to native.

The Duktape-analog engine base64-encodes a buffer.  Bars: virtine,
virtine+snapshot, virtine+NT (no teardown), virtine+snapshot+NT.
Paper: baseline 419 us; unoptimised virtine ~+125 us (1.5-2x range on
artifact machines); snapshot roughly halves the overhead; NT+snapshot
drops to ~137 us -- effectively just parse+execute, *below* native.
"""

import pytest

from repro.apps.js.virtine_js import (
    DEFAULT_DATA_SIZE,
    JsVirtineClient,
    NativeJsBaseline,
    python_base64,
)
from repro.units import cycles_to_us
from repro.wasp import Wasp

DATA = bytes(i & 0xFF for i in range(DEFAULT_DATA_SIZE))
EXPECTED = python_base64(DATA)


@pytest.fixture(scope="module")
def measured(report):
    wasp = Wasp()
    results = {}

    native = NativeJsBaseline(wasp).run(DATA)
    assert native.encoded == EXPECTED
    results["native"] = native.cycles

    plain = JsVirtineClient(wasp, use_snapshot=False)
    plain.run(DATA)
    results["virtine"] = plain.run(DATA).cycles

    snap = JsVirtineClient(wasp, use_snapshot=True)
    snap.run(DATA)
    results["virtine+snapshot"] = snap.run(DATA).cycles

    nt = JsVirtineClient(wasp, use_snapshot=False, no_teardown=True)
    with nt.open_session() as session:
        nt.run_in_session(session, DATA)
        results["virtine+NT"] = nt.run_in_session(session, DATA).cycles

    snap_nt = JsVirtineClient(wasp, use_snapshot=True, no_teardown=True)
    with snap_nt.open_session() as session:
        snap_nt.run_in_session(session, DATA)
        results["virtine+snapshot+NT"] = snap_nt.run_in_session(session, DATA).cycles

    base = results["native"]
    report.row("native baseline", "419 us", f"{cycles_to_us(base):,.0f} us")
    paper_bars = {
        "virtine": "~1.3x (+125 us)",
        "virtine+snapshot": "~2x less overhead",
        "virtine+NT": "< virtine",
        "virtine+snapshot+NT": "137 us (<1x)",
    }
    for label, hint in paper_bars.items():
        report.row(
            f"{label} slowdown", hint,
            f"{results[label] / base:.2f}x ({cycles_to_us(results[label]):,.0f} us)",
        )
    return results


class TestShape:
    def test_baseline_near_paper(self, measured):
        assert cycles_to_us(measured["native"]) == pytest.approx(419, rel=0.15)

    def test_unoptimized_slowdown_range(self, measured):
        """Artifact C8: leftmost bar in the 1.3-2x range."""
        ratio = measured["virtine"] / measured["native"]
        assert 1.2 < ratio < 2.0

    def test_snapshot_reduces_overhead(self, measured):
        overhead_plain = measured["virtine"] - measured["native"]
        overhead_snap = measured["virtine+snapshot"] - measured["native"]
        assert overhead_snap < overhead_plain

    def test_nt_reduces_further(self, measured):
        assert measured["virtine+NT"] < measured["virtine+snapshot"]

    def test_full_optimisation_beats_native(self, measured):
        """The paper's final bar: retained engine + snapshot executes
        less code than the native alloc/teardown cycle."""
        assert measured["virtine+snapshot+NT"] < measured["native"]


def test_benchmark_native_js(benchmark, measured):
    wasp = Wasp()
    baseline = NativeJsBaseline(wasp)
    benchmark.pedantic(lambda: baseline.run(DATA), rounds=2, iterations=1)


def test_benchmark_virtine_js_snapshot(benchmark, measured):
    wasp = Wasp()
    client = JsVirtineClient(wasp, use_snapshot=True)
    client.run(DATA)
    benchmark.pedantic(lambda: client.run(DATA), rounds=2, iterations=1)
