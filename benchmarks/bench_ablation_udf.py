"""Ablation: per-row cost of virtine-isolated database UDFs (§7.1).

Beyond the paper's figures: quantifies what the proposed UDF isolation
would cost a Postgres-style engine.  A table is scanned with the same
UDF registered trusted (in-process, the status quo) and virtine-
isolated; the delta per row is the isolation price -- which the
snapshot machinery keeps at the restore floor rather than a cold boot.
"""

import pytest

from repro.apps.database import Database
from repro.units import cycles_to_us

ROWS = 64


def scale_fn(value):
    return value * 3


@pytest.fixture(scope="module")
def measured(report):
    db = Database()
    db.execute("CREATE TABLE metrics (id INT, value INT)")
    for i in range(0, ROWS, 8):
        values = ", ".join(f"({j}, {j * 10})" for j in range(i, i + 8))
        db.execute(f"INSERT INTO metrics VALUES {values}")
    db.register_udf("scale_t", scale_fn, isolation="trusted")
    db.register_udf("scale_v", scale_fn, isolation="virtine")

    db.execute("SELECT scale_v(value) FROM metrics LIMIT 1")  # warm snapshot

    start = db.wasp.clock.cycles
    trusted_rows = db.execute("SELECT scale_t(value) FROM metrics")
    trusted = db.wasp.clock.cycles - start

    start = db.wasp.clock.cycles
    isolated_rows = db.execute("SELECT scale_v(value) FROM metrics")
    isolated = db.wasp.clock.cycles - start

    assert trusted_rows.rows == isolated_rows.rows  # identical results
    per_row = (isolated - trusted) / ROWS
    report.line(f"  {ROWS} rows: trusted {cycles_to_us(trusted):9.1f} us, "
                f"virtine {cycles_to_us(isolated):9.1f} us")
    report.row("isolation cost per row", "snapshot-restore floor",
               f"{per_row:,.0f} cyc ({cycles_to_us(per_row):.1f} us)")
    report.row("query slowdown", "bounded", f"{isolated / trusted:.1f}x")
    return {"trusted": trusted, "isolated": isolated, "per_row": per_row}


class TestShape:
    def test_results_identical(self, measured):
        assert measured["isolated"] > measured["trusted"]

    def test_per_row_is_restore_floor_not_boot(self, measured):
        """Warm rows pay the snapshot restore (~10-40 us), not a cold
        boot + libc init (~90+ us)."""
        assert cycles_to_us(measured["per_row"]) < 60.0

    def test_amortisable_for_real_udfs(self, measured):
        """The per-row price sits under the paper's ~100 us amortisation
        point: a UDF doing real work hides it."""
        assert cycles_to_us(measured["per_row"]) < 100.0


def test_benchmark_isolated_scan(benchmark, measured):
    db = Database()
    db.execute("CREATE TABLE t (v INT)")
    db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
    db.register_udf("scale", scale_fn)
    db.execute("SELECT scale(v) FROM t LIMIT 1")
    benchmark.pedantic(
        lambda: db.execute("SELECT scale(v) FROM t"), rounds=5, iterations=1
    )
