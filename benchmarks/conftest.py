"""Shared reporting for the benchmark suite.

Each benchmark regenerates one table/figure from the paper and records a
paper-vs-measured comparison.  The comparisons are printed in the
terminal summary (so they survive pytest's output capture) and written
to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_SECTIONS: list[tuple[str, list[str]]] = []


class ExperimentReport:
    """Accumulates one experiment's comparison table."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.lines: list[str] = []

    def line(self, text: str) -> None:
        self.lines.append(text)

    def row(self, label: str, paper: str, measured: str) -> None:
        self.lines.append(f"  {label:<38s} paper: {paper:>14s}   measured: {measured:>14s}")

    def note(self, text: str) -> None:
        self.lines.append(f"  note: {text}")


@pytest.fixture(scope="module")
def report(request):
    """Module-scoped experiment report, flushed at session end."""
    experiment = ExperimentReport(request.module.__doc__.strip().splitlines()[0]
                                  if request.module.__doc__ else request.module.__name__)
    yield experiment
    _SECTIONS.append((experiment.title, experiment.lines))


def pytest_terminal_summary(terminalreporter):
    if not _SECTIONS:
        return
    terminalreporter.write_sep("=", "paper vs. measured (simulated cycles on the virtual clock)")
    _RESULTS_DIR.mkdir(exist_ok=True)
    all_text = []
    for title, lines in _SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        all_text.append(title)
        for line in lines:
            terminalreporter.write_line(line)
            all_text.append(line)
        all_text.append("")
    (_RESULTS_DIR / "summary.txt").write_text("\n".join(all_text) + "\n")
