"""Shared reporting for the benchmark suite.

Each benchmark regenerates one table/figure from the paper and records a
paper-vs-measured comparison.  The comparisons are printed in the
terminal summary (so they survive pytest's output capture), written to
``benchmarks/results/summary.txt``, and each module's structured rows
land in ``benchmarks/results/BENCH_<module>.json`` (modules that write a
richer results file themselves set ``report.owns_results_file``).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_SECTIONS: list[tuple[str, list[str]]] = []


def engine_mode(fast_paths: bool = True, jit: bool = True) -> str:
    """Canonical label for an interpreter engine configuration.

    Every ``BENCH_*.json`` records the mode that produced it so results
    are self-describing: ``reference`` (plain interpreter), ``fast``
    (PR 4 fast-path engine, JIT off), or ``fast+jit`` (superblock JIT on
    top of the fast paths -- the library default).
    """
    if not fast_paths:
        return "reference"
    return "fast+jit" if jit else "fast"


class ExperimentReport:
    """Accumulates one experiment's comparison table."""

    def __init__(self, title: str, module_name: str) -> None:
        self.title = title
        self.module_name = module_name
        self.lines: list[str] = []
        #: Structured mirror of :meth:`row` calls, dumped to the module's
        #: ``BENCH_<module>.json``.
        self.rows: list[dict[str, str]] = []
        #: Free-form structured results (set via :meth:`record`).
        self.data: dict = {}
        #: Modules that write their own ``BENCH_<name>.json`` (with a
        #: richer schema than rows+data) set this to skip the default
        #: emission and avoid clobbering their file.
        self.owns_results_file = False
        #: Engine configuration the module measured under, recorded in
        #: its results file.  Defaults to the library default; modules
        #: that pin a different configuration (or sweep several) set it
        #: via :func:`engine_mode` or to an explicit label.
        self.engine_mode = engine_mode()

    def line(self, text: str) -> None:
        self.lines.append(text)

    def row(self, label: str, paper: str, measured: str) -> None:
        self.rows.append({"label": label, "paper": paper, "measured": measured})
        self.lines.append(f"  {label:<38s} paper: {paper:>14s}   measured: {measured:>14s}")

    def note(self, text: str) -> None:
        self.lines.append(f"  note: {text}")

    def record(self, key: str, value) -> None:
        """Attach a structured result (JSON-serialisable) to the module's file."""
        self.data[key] = value

    def results_path(self) -> pathlib.Path:
        stem = self.module_name
        if stem.startswith("bench_"):
            stem = stem[len("bench_"):]
        return _RESULTS_DIR / f"BENCH_{stem}.json"


class HostTimer:
    """Wall-clock timing helpers shared by host-throughput benchmarks.

    Host time is the one quantity in this suite that is *not* on the
    virtual clock, so it is noisy; ``best_of`` takes the minimum over
    repeats, the standard estimator for "how fast can this go".
    """

    @staticmethod
    def measure(fn):
        """Run ``fn()`` once; return ``(result, elapsed_seconds)``."""
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    @staticmethod
    def best_of(fn, repeats: int = 3):
        """Run ``fn()`` ``repeats`` times; return ``(last_result, best_seconds)``."""
        best = float("inf")
        result = None
        for _ in range(repeats):
            result, elapsed = HostTimer.measure(fn)
            if elapsed < best:
                best = elapsed
        return result, best


@pytest.fixture(scope="module")
def host_timer():
    """Shared wall-clock timing helpers (module-scoped for convenience)."""
    return HostTimer()


@pytest.fixture(scope="module")
def report(request):
    """Module-scoped experiment report, flushed at session end."""
    experiment = ExperimentReport(
        request.module.__doc__.strip().splitlines()[0]
        if request.module.__doc__ else request.module.__name__,
        request.module.__name__,
    )
    yield experiment
    _SECTIONS.append((experiment.title, experiment.lines))
    if not experiment.owns_results_file and (experiment.rows or experiment.data):
        _RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "experiment": experiment.title,
            "engine_mode": experiment.engine_mode,
            "rows": experiment.rows,
            "data": experiment.data,
        }
        experiment.results_path().write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _SECTIONS:
        return
    terminalreporter.write_sep("=", "paper vs. measured (simulated cycles on the virtual clock)")
    _RESULTS_DIR.mkdir(exist_ok=True)
    all_text = []
    for title, lines in _SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        all_text.append(title)
        for line in lines:
            terminalreporter.write_line(line)
            all_text.append(line)
        all_text.append("")
    (_RESULTS_DIR / "summary.txt").write_text("\n".join(all_text) + "\n")
