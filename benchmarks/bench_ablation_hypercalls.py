"""Ablation: host-interaction frequency vs virtine latency.

Section 4's third insight: "host interactions can be facilitated with
hypercalls ... but their number must be limited to keep costs low."
This sweep varies the hypercalls per invocation and recovers the
per-interaction cost (the doubly-expensive exit of Section 6.3).
"""

import pytest

from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us
from repro.wasp import BitmaskPolicy, Hypercall, VirtineConfig, Wasp

COUNTS = (0, 1, 2, 4, 8, 16, 32)


def make_entry(count):
    def entry(env):
        for _ in range(count):
            env.hypercall(Hypercall.STAT, "/touch")
        return count

    return entry


def policy():
    return BitmaskPolicy(VirtineConfig.allowing(Hypercall.STAT))


@pytest.fixture(scope="module")
def measured(report):
    wasp = Wasp()
    wasp.kernel.fs.add_file("/touch", b"x")
    results = {}
    for count in COUNTS:
        image = ImageBuilder().hosted(f"hc-{count}", make_entry(count))
        wasp.launch(image, policy=policy(), use_snapshot=False)  # warm
        results[count] = wasp.launch(image, policy=policy(), use_snapshot=False).cycles
        report.line(f"  {count:3d} hypercalls: {cycles_to_us(results[count]):8.1f} us")
    per_call = (results[32] - results[0]) / 32
    report.row("marginal cost per hypercall", "2 ring switches + exits",
               f"{per_call:,.0f} cyc ({cycles_to_us(per_call):.2f} us)")
    return results


class TestShape:
    def test_monotonic_in_hypercalls(self, measured):
        values = [measured[c] for c in COUNTS]
        assert values == sorted(values)

    def test_linear_slope(self, measured):
        slope_low = (measured[8] - measured[0]) / 8
        slope_high = (measured[32] - measured[8]) / 24
        assert slope_high == pytest.approx(slope_low, rel=0.25)

    def test_per_call_cost_is_doubly_expensive(self, measured):
        """Each hypercall pays two full ring transitions plus the world
        switches -- thousands of cycles, not hundreds."""
        per_call = (measured[32] - measured[0]) / 32
        costs = Wasp().costs
        floor = costs.VMRUN_EXIT + costs.VMRUN_ENTRY + 2 * costs.RING_TRANSITION
        assert per_call > floor


def test_benchmark_chatty_virtine(benchmark, measured):
    wasp = Wasp()
    wasp.kernel.fs.add_file("/touch", b"x")
    image = ImageBuilder().hosted("hc-bench", make_entry(8))
    wasp.launch(image, policy=policy(), use_snapshot=False)
    benchmark.pedantic(
        lambda: wasp.launch(image, policy=policy(), use_snapshot=False),
        rounds=5,
        iterations=1,
    )
