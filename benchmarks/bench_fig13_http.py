"""Figure 13 (E7): HTTP latency and throughput, native vs virtines.

A single-threaded static-content server; each connection handled
natively, in a fresh virtine, or in a fresh virtine with snapshotting
(seven hypercalls per request either way).  Claim C7: < 20% throughput
drop relative to native (the paper measures 12% with snapshotting).
"""

import pytest

from repro.apps.http.client import RequestGenerator
from repro.apps.http.server import StaticHttpServer
from repro.wasp import Wasp

REQUESTS = 30
FILE_BODY = b"<html>" + b"v" * 1024 + b"</html>"


def build_world(isolation):
    wasp = Wasp()
    wasp.kernel.fs.add_file("/srv/index.html", FILE_BODY)
    server = StaticHttpServer(wasp, port=8000, isolation=isolation)
    generator = RequestGenerator(wasp.kernel, server, "/index.html")
    generator.one_request()  # warm: pool fill + snapshot capture
    return generator


@pytest.fixture(scope="module")
def measured(report):
    reports = {}
    for isolation in ("native", "virtine", "snapshot"):
        generator = build_world(isolation)
        reports[isolation] = generator.run(REQUESTS)

    native_tput = reports["native"].harmonic_mean_rps
    for isolation in ("native", "virtine", "snapshot"):
        load = reports[isolation]
        report.line(
            f"  {isolation:9s}  mean latency {load.mean_latency_us:9.1f} us"
            f"   throughput {load.harmonic_mean_rps:10.0f} req/s"
        )
    for isolation in ("virtine", "snapshot"):
        drop = 1 - reports[isolation].harmonic_mean_rps / native_tput
        paper = "12% (snapshot)" if isolation == "snapshot" else "(higher)"
        report.row(f"throughput drop: {isolation}", paper, f"{drop * 100:.1f}%")
    return reports


class TestShape:
    def test_no_errors(self, measured):
        assert all(r.errors == 0 for r in measured.values())

    def test_native_fastest(self, measured):
        assert (
            measured["native"].mean_latency_us
            <= measured["snapshot"].mean_latency_us
        )

    def test_snapshot_drop_under_20_percent(self, measured):
        """Claim C7."""
        drop = 1 - measured["snapshot"].harmonic_mean_rps / measured["native"].harmonic_mean_rps
        assert drop < 0.20

    def test_drop_near_paper_value(self, measured):
        drop = 1 - measured["snapshot"].harmonic_mean_rps / measured["native"].harmonic_mean_rps
        assert drop == pytest.approx(0.12, abs=0.06)


def test_benchmark_native_request(benchmark, measured):
    generator = build_world("native")
    benchmark.pedantic(generator.one_request, rounds=10, iterations=1)


def test_benchmark_virtine_request(benchmark, measured):
    generator = build_world("snapshot")
    benchmark.pedantic(generator.one_request, rounds=10, iterations=1)
