"""Figures 2+8 (E4): execution-context creation latencies.

Figure 2 (lower bounds): function << vmrun < pthread << KVM create.
Figure 8 adds Wasp: scratch ("Wasp"), pooled+synchronous clean
("Wasp+C"), pooled+asynchronous clean ("Wasp+CA"), plus Linux process
and SGX create/ECALL.  Claim C4: Wasp+C/Wasp+CA sit near the vmrun
hardware limit and outperform pthread creation; Wasp+CA is within a few
percent of bare vmrun.
"""

import pytest

from repro.host.process import ProcessBaseline
from repro.host.sgx import SgxBaseline
from repro.host.threads import PthreadBaseline
from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us
from repro.wasp import CleanMode, Wasp


@pytest.fixture(scope="module")
def world():
    wasp = Wasp()
    # The probe halts on its first instruction: create/enter/exit only.
    image = ImageBuilder().hlt_only()
    # Warm the pool so cached measurements reflect steady state.
    wasp.launch(image, use_snapshot=False)
    wasp.launch(image, use_snapshot=False)
    return wasp, image


def launch_scratch(world):
    wasp, image = world
    return wasp.launch(image, use_snapshot=False, pooled=False).cycles


def launch_cached_sync(world):
    wasp, image = world
    return wasp.launch(image, use_snapshot=False, clean=CleanMode.SYNC).cycles


def launch_cached_async(world):
    wasp, image = world
    return wasp.launch(image, use_snapshot=False, clean=CleanMode.ASYNC).cycles


@pytest.fixture(scope="module")
def measured(world, report):
    wasp, image = world
    kernel = wasp.kernel
    costs = wasp.costs

    function = costs.FUNCTION_CALL
    pthread = PthreadBaseline(kernel).create_and_join()
    process = ProcessBaseline(kernel).spawn()

    # "vmrun": KVM_RUN on an already-constructed context that halts
    # immediately -- the hardware limit, measured from userspace.
    handle = wasp.kvm.create_vm()
    handle.set_user_memory_region(4 * 1024 * 1024)
    vcpu = handle.create_vcpu()
    handle.load_program(image.program)
    vcpu.run()  # absorb one-time first-instruction state
    handle.vm.reset()
    handle.vm.interp.attach_program(image.program)
    with wasp.clock.region() as region:
        vcpu.run()
    vmrun = region.elapsed

    # "KVM": create a VM + reach hlt, from scratch, raw KVM interface.
    with wasp.clock.region() as region:
        raw = wasp.kvm.create_vm()
        raw.set_user_memory_region(4 * 1024 * 1024)
        raw_vcpu = raw.create_vcpu()
        raw.load_program(image.program)
        raw_vcpu.run()
    kvm_create = region.elapsed
    wasp_scratch = launch_scratch(world)
    wasp_cached = launch_cached_sync(world)
    wasp_cached_async = launch_cached_async(world)

    sgx = SgxBaseline(kernel.clock)
    sgx_create = sgx.create()
    sgx_ecall = sgx.ecall()

    # Isolation-spectrum creation rows (ROADMAP item 2): the SUD
    # context is a prctl + mprotect; the container stacks namespaces,
    # a cgroup, pivot_root, and a seccomp load on top of a fork.
    from repro.host.backend import create_host

    sud_create = create_host("sud").backend_impl.creation_cycles()
    container_create = create_host("container").backend_impl.creation_cycles()

    rows = {
        "function": function,
        "vmrun": vmrun,
        "SUD context": sud_create,
        "Wasp+CA (cached, async clean)": wasp_cached_async,
        "Wasp+C (cached)": wasp_cached,
        "Linux pthread": pthread,
        "SGX ECALL": sgx_ecall,
        "Wasp (scratch)": wasp_scratch,
        "KVM (create + hlt)": kvm_create,
        "Linux process": process,
        "Container": container_create,
        "SGX Create": sgx_create,
    }
    paper_hint = {
        "function": "~30 cyc",
        "vmrun": "hardware limit",
        "SUD context": "prctl + mprotect",
        "Wasp+CA (cached, async clean)": "within 4% of vmrun",
        "Wasp+C (cached)": "< pthread",
        "Linux pthread": "tens of us",
        "SGX ECALL": "~14K cyc",
        "Wasp (scratch)": "~KVM create",
        "KVM (create + hlt)": "100Ks of cyc",
        "Linux process": "~1 ms scale",
        "Container": "> process",
        "SGX Create": "ms scale",
    }
    for label, cycles in rows.items():
        report.row(label, paper_hint[label], f"{cycles:,} cyc ({cycles_to_us(cycles):,.1f} us)")
    overhead = (wasp_cached_async - vmrun) / vmrun
    report.row("Wasp+CA overhead vs vmrun", "<= 4%", f"{overhead * 100:.1f}%")
    return rows


class TestShape:
    def test_figure2_ordering(self, measured):
        assert (
            measured["function"]
            < measured["vmrun"]
            < measured["Linux pthread"]
            < measured["KVM (create + hlt)"]
        )

    def test_cached_beats_pthread(self, measured):
        assert measured["Wasp+C (cached)"] < measured["Linux pthread"]
        assert measured["Wasp+CA (cached, async clean)"] < measured["Linux pthread"]

    def test_async_near_hardware_limit(self, measured):
        """C4: Wasp+CA is within a few percent of the vmrun floor."""
        ratio = measured["Wasp+CA (cached, async clean)"] / measured["vmrun"]
        assert ratio < 1.10

    def test_scratch_near_kvm_create(self, measured):
        ratio = measured["Wasp (scratch)"] / measured["KVM (create + hlt)"]
        assert 0.5 < ratio < 2.0

    def test_sgx_series(self, measured):
        assert measured["SGX Create"] > 100 * measured["SGX ECALL"]

    def test_spectrum_creation_ordering(self, measured):
        """SUD creation is the spectrum floor; the container is the
        ceiling of the OS-mechanism rows."""
        assert measured["SUD context"] < measured["Linux pthread"]
        assert (
            measured["Linux pthread"]
            < measured["Linux process"]
            < measured["Container"]
        )


def test_benchmark_cached_launch(benchmark, world, measured):
    benchmark.pedantic(launch_cached_async, args=(world,), rounds=10, iterations=1)


def test_benchmark_scratch_launch(benchmark, world, measured):
    benchmark.pedantic(launch_scratch, args=(world,), rounds=5, iterations=1)
