"""Figure 9/10: parallel virtine creation scales with core count.

"Creation rates scale roughly linearly up to the physical core count"
(Section 6.2).  The lockstep SMP plane runs the same creation storm on
1/2/4/8 simulated cores, pooled (Wasp+C, Figure 10) and scratch (Wasp,
Figure 9): throughput should rise monotonically with cores, pooled
creation should sit orders of magnitude above scratch, and -- the
determinism contract -- the same seed must replay identical cycle
totals and an identical Chrome trace export.
"""

import pytest

from repro.cluster import parallel_creation

LAUNCHES = 64
CORE_COUNTS = (1, 2, 4, 8)
SEED = 42


def measure(cores: int, pooled: bool):
    return parallel_creation(cores, LAUNCHES, pooled=pooled, seed=SEED)


@pytest.fixture(scope="module")
def measured(report):
    results = {
        (cores, pooled): measure(cores, pooled)
        for cores in CORE_COUNTS
        for pooled in (True, False)
    }
    rows = []
    for cores in CORE_COUNTS:
        pooled = results[(cores, True)]
        scratch = results[(cores, False)]
        rows.append({
            "cores": cores,
            "pooled_per_s": pooled.throughput_per_s,
            "scratch_per_s": scratch.throughput_per_s,
            "pooled_makespan_cycles": pooled.makespan_cycles,
            "scratch_makespan_cycles": scratch.makespan_cycles,
            "steals": pooled.steals + scratch.steals,
        })
        report.line(
            f"  {cores} core(s): pooled {pooled.throughput_per_s:>12,.0f}/s"
            f"   scratch {scratch.throughput_per_s:>10,.0f}/s"
        )
    base = results[(1, True)].throughput_per_s
    peak = results[(CORE_COUNTS[-1], True)].throughput_per_s
    report.row(f"pooled creation, {CORE_COUNTS[-1]} cores vs 1",
               "near-linear", f"{peak / base:.1f}x")
    report.record("seed", SEED)
    report.record("launches", LAUNCHES)
    report.record("rows", rows)
    return results


class TestShape:
    def test_monotone_scaling_pooled(self, measured):
        series = [measured[(c, True)].throughput_per_s for c in CORE_COUNTS]
        assert series == sorted(series)
        assert series[0] < series[-1]

    def test_monotone_scaling_scratch(self, measured):
        series = [measured[(c, False)].throughput_per_s for c in CORE_COUNTS]
        assert series == sorted(series)

    def test_near_linear_to_eight_cores(self, measured):
        base = measured[(1, True)].throughput_per_s
        assert measured[(8, True)].throughput_per_s / base > 6.0
        assert measured[(8, True)].throughput_per_s / base <= 8.5

    def test_pooled_dominates_scratch(self, measured):
        for cores in CORE_COUNTS:
            assert (measured[(cores, True)].throughput_per_s
                    > 10 * measured[(cores, False)].throughput_per_s)

    def test_all_launches_complete(self, measured):
        for rep in measured.values():
            assert rep.launches == LAUNCHES
            assert not rep.failures


class TestDeterminism:
    def test_same_seed_same_signature(self, measured):
        for (cores, pooled), rep in measured.items():
            replay = measure(cores, pooled)
            assert replay.signature() == rep.signature()

    def test_traced_replay_byte_identical(self):
        from repro.cluster import VirtineCluster
        from repro.runtime.image import ImageBuilder

        def traced_run():
            cluster = VirtineCluster(cores=4, seed=SEED, trace=True)
            image = ImageBuilder().hlt_only()
            cluster.prewarm(image, 4)
            rep = cluster.launch_many(image, [None] * 16, use_snapshot=False)
            return rep.signature(), cluster.chrome_json()

        first_sig, first_json = traced_run()
        second_sig, second_json = traced_run()
        assert first_sig == second_sig
        assert first_json == second_json


def test_benchmark_parallel_creation(benchmark, measured):
    benchmark.pedantic(measure, args=(4, True), rounds=3, iterations=1)
