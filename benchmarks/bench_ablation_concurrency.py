"""Ablation: asynchronous virtines scale across cores (§2's futures).

A batch of snapshot-warmed function invocations is scheduled by the
VirtineExecutor over 1/2/4/8 cores.  Makespan should scale down near-
linearly until per-launch overheads dominate -- the scheduling headroom
a virtine-based platform has because each invocation is so cheap.
"""

import pytest

from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us
from repro.wasp import BitmaskPolicy, Hypercall, VirtineConfig, Wasp
from repro.wasp.futures import VirtineExecutor

JOBS = 24
CORE_COUNTS = (1, 2, 4, 8)


def job_entry(env):
    if not env.from_snapshot:
        env.charge(env._wasp.costs.GUEST_LIBC_INIT)
        env.snapshot(payload=None)
    env.charge(120_000)  # ~45 us of guest compute
    return 0


def policy():
    return BitmaskPolicy(VirtineConfig.allowing(Hypercall.SNAPSHOT))


def run_batch(cores: int) -> int:
    executor = VirtineExecutor(Wasp(), cores=cores)
    image = ImageBuilder().hosted("scale-job", job_entry)
    executor.submit(image, policy=policy()).result()  # warm pool + snapshot
    base = executor.makespan_cycles
    futures = [executor.submit(image, policy=policy()) for _ in range(JOBS)]
    executor.drain()
    assert all(f.done() for f in futures)
    return executor.makespan_cycles - base


@pytest.fixture(scope="module")
def measured(report):
    results = {cores: run_batch(cores) for cores in CORE_COUNTS}
    base = results[1]
    for cores, makespan in results.items():
        report.line(
            f"  {cores} core(s): makespan {cycles_to_us(makespan):10.1f} us"
            f"   speedup {base / makespan:5.2f}x"
        )
    report.row(f"{JOBS} invocations, 8 cores vs 1", "near-linear",
               f"{base / results[8]:.1f}x")
    return results


class TestShape:
    def test_monotonic_speedup(self, measured):
        values = [measured[c] for c in CORE_COUNTS]
        assert values == sorted(values, reverse=True)

    def test_meaningful_parallel_speedup(self, measured):
        assert measured[1] / measured[4] > 2.5

    def test_not_superlinear(self, measured):
        assert measured[1] / measured[8] <= 8.5


def test_benchmark_parallel_batch(benchmark, measured):
    benchmark.pedantic(run_batch, args=(4,), rounds=3, iterations=1)
