"""Figure 4 (E3): echo-server start-up milestones in protected mode.

Paper: reaching the server's C entry point takes ~10K cycles; the full
response completes well under 1 ms (claim C3: 100K-500K cycles to an
HTTP response).
"""

import pytest

from repro.apps.http.server import EchoServer, MS_MAIN, MS_RECV_DONE, MS_SEND_DONE
from repro.units import cycles_to_ms, cycles_to_us
from repro.wasp import Wasp


def run_echo_once():
    wasp = Wasp()
    echo = EchoServer(wasp, port=8080)
    conn = wasp.kernel.sys_connect(8080)
    wasp.kernel.sys_send(conn, b"GET / HTTP/1.0\r\nHost: x\r\n\r\n")
    result = echo.handle_one()
    response = wasp.kernel.sys_recv(conn, 65536)
    assert response.startswith(b"HTTP/1.0 200")
    return result


@pytest.fixture(scope="module")
def measured(report):
    result = run_echo_once()
    stamps = dict(result.milestones)
    # Milestones relative to the first guest timestamp (boot start).
    origin = min(stamps.values())
    main_entry = stamps[MS_MAIN] - origin
    recv_done = stamps[MS_RECV_DONE] - origin
    send_done = stamps[MS_SEND_DONE] - origin
    report.row("reach main entry (C code)", "~10,000 cyc", f"{main_entry:,} cyc")
    report.row("recv() returned", "milestone 2", f"{recv_done:,} cyc")
    report.row("send() complete", "100K-500K cyc", f"{send_done:,} cyc")
    report.row("end-to-end response", "<1 ms (<300 us)",
               f"{cycles_to_us(result.cycles):,.0f} us")
    return {"main": main_entry, "recv": recv_done, "send": send_done, "total": result.cycles}


def run_pure_assembly_echo():
    """The same experiment with a 100%-assembly guest (no hosted code),
    mirroring the paper's hand-written runtime environment."""
    from repro.hw.isa import Assembler
    from repro.runtime.boot import echo_guest_source
    from repro.runtime.image import VirtineImage
    from repro.hw.cpu import Mode
    from repro.wasp import BitmaskPolicy, Hypercall, VirtineConfig

    wasp = Wasp()
    listener = wasp.kernel.sys_listen(9090)
    conn = wasp.kernel.sys_connect(9090)
    wasp.kernel.sys_send(conn, b"GET / HTTP/1.0\r\n\r\n")
    server_sock = wasp.kernel.sys_accept(listener)
    program = Assembler(0x8000).assemble(echo_guest_source())
    image = VirtineImage(name="asm-echo", program=program, mode=Mode.PROT32,
                         size=len(program.image))
    policy = BitmaskPolicy(VirtineConfig.allowing(Hypercall.RECV, Hypercall.SEND))
    result = wasp.launch(image, policy=policy, resources={0: server_sock},
                         use_snapshot=False)
    assert wasp.kernel.sys_recv(conn, 4096) == b"GET / HTTP/1.0\r\n\r\n"
    return result


@pytest.fixture(scope="module")
def assembly_measured(report):
    result = run_pure_assembly_echo()
    report.row("pure-assembly echo end-to-end", "same regime",
               f"{cycles_to_us(result.cycles):,.0f} us")
    return result


def test_benchmark_echo(benchmark, measured):
    benchmark.pedantic(run_echo_once, rounds=3, iterations=1)
    assert measured["main"] < 20_000
    assert measured["main"] < measured["recv"] < measured["send"]
    assert 100_000 < measured["send"] < 1_500_000
    assert cycles_to_ms(measured["total"]) < 1.0


def test_benchmark_pure_assembly_echo(benchmark, measured, assembly_measured):
    benchmark.pedantic(run_pure_assembly_echo, rounds=3, iterations=1)
    assert cycles_to_ms(assembly_measured.cycles) < 1.0
    assert assembly_measured.hypercall_count == 3
