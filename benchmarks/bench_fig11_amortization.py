"""Figure 11 (E5): amortising virtine start-up with computation.

fib(n) via the ``@virtine`` language extension, n in {0..30}: native vs
virtine vs virtine+snapshot.  Claim C5: creation overheads amortise with
~100 us of work, and snapshotting cuts the fixed overhead substantially
(pushing the amortisation point down ~10x).
"""

import os

import pytest

from repro.lang import virtine
from repro.lang.decorator import set_default_wasp
from repro.units import cycles_to_us
from repro.wasp import Wasp

NS = (0, 5, 10, 15, 20, 25, 30)


@virtine
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def _expected(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


@pytest.fixture(scope="module")
def measured(report):
    results = {"native": {}, "virtine": {}, "snapshot": {}}
    wasp = Wasp()
    set_default_wasp(wasp)
    try:
        # Native: the guest work cost model applied to a direct call.
        for n in NS:
            counter = [0]

            def counted_fib(m):
                counter[0] += 1
                if m < 2:
                    return m
                return counted_fib(m - 1) + counted_fib(m - 2)

            assert counted_fib(n) == _expected(n)
            results["native"][n] = (
                wasp.costs.FUNCTION_CALL + counter[0] * wasp.costs.GUEST_CALL
            )

        # Virtine without snapshotting.
        os.environ["VIRTINE_NO_SNAPSHOT"] = "1"
        try:
            fib.invoke(0)  # warm the pool
            for n in NS:
                result = fib.invoke(n)
                assert result.value == _expected(n)
                results["virtine"][n] = result.cycles
        finally:
            del os.environ["VIRTINE_NO_SNAPSHOT"]

        # Virtine with snapshotting (capture once, then measure).
        fib.invoke(0)
        for n in NS:
            result = fib.invoke(n)
            assert result.value == _expected(n)
            results["snapshot"][n] = result.cycles
    finally:
        set_default_wasp(None)

    for n in NS:
        report.line(
            f"  fib({n:2d})  native {cycles_to_us(results['native'][n]):10.1f} us"
            f"   virtine {cycles_to_us(results['virtine'][n]):10.1f} us"
            f"   +snapshot {cycles_to_us(results['snapshot'][n]):10.1f} us"
            f"   slowdown {results['snapshot'][n] / results['native'][n]:8.1f}x"
        )
    speedup0 = results["virtine"][0] / results["snapshot"][0]
    report.row("snapshot speedup at fib(0)", "~2.5x", f"{speedup0:.1f}x")
    slow25 = results["snapshot"][25] / results["native"][25]
    slow30 = results["snapshot"][30] / results["native"][30]
    report.row("slowdown at fib(25)", "1.03x", f"{slow25:.2f}x")
    report.row("slowdown at fib(30)", "1.01x", f"{slow30:.2f}x")
    amortize = next(
        (n for n in NS if results["snapshot"][n] / results["native"][n] < 1.25), None
    )
    work_us = cycles_to_us(results["native"][amortize]) if amortize is not None else None
    report.row("work to amortise (<1.25x)", "~100 us",
               f"fib({amortize}) = {work_us:,.0f} us" if amortize is not None else "not reached")
    return results


class TestShape:
    def test_snapshot_beats_plain_virtine_at_fib0(self, measured):
        assert measured["virtine"][0] > 1.5 * measured["snapshot"][0]

    def test_amortization_by_fib25(self, measured):
        assert measured["snapshot"][25] / measured["native"][25] < 1.25

    def test_near_native_by_fib30(self, measured):
        assert measured["snapshot"][30] / measured["native"][30] < 1.10

    def test_overhead_monotonically_amortises(self, measured):
        ratios = [measured["snapshot"][n] / measured["native"][n] for n in NS if n > 0]
        assert ratios == sorted(ratios, reverse=True)


def test_benchmark_fib20_virtine(benchmark, measured):
    wasp = Wasp()
    set_default_wasp(wasp)
    try:
        fib.invoke(20)  # snapshot capture
        benchmark.pedantic(lambda: fib.invoke(20), rounds=3, iterations=1)
    finally:
        set_default_wasp(None)
