"""Figure 3 (E2): fib(20) latency in the three x86 operating modes.

Paper claim C2: latency varies with the target processor mode -- staying
in 16-bit real mode avoids the protected/long-mode setup costs (~10K
cycles of potential savings for short-lived virtines).
"""

import pytest

from repro.hw.clock import Clock
from repro.hw.cpu import Mode
from repro.hw.isa import Assembler
from repro.hw.vmx import VirtualMachine
from repro.runtime.boot import fib_source
from repro.stats import mean, tukey_filter
from repro.units import cycles_to_us

FIB_N = 20
TRIALS = 3  # the simulation is deterministic; the paper needed 1000


def run_mode(mode: Mode) -> int:
    clock = Clock()
    vm = VirtualMachine(8 * 1024 * 1024, clock)
    vm.load_program(Assembler(0x8000).assemble(fib_source(mode, FIB_N)))
    vm.vmrun()
    assert vm.cpu.regs["ax"] == 6765
    return clock.cycles


@pytest.fixture(scope="module")
def measured(report):
    results = {}
    for mode in (Mode.REAL16, Mode.PROT32, Mode.LONG64):
        samples = tukey_filter([float(run_mode(mode)) for _ in range(TRIALS)])
        results[mode] = mean(samples)
    report.row("16-bit (real) fib(20)", "cheapest", f"{results[Mode.REAL16]:,.0f} cyc")
    report.row("32-bit (protected) fib(20)", "middle", f"{results[Mode.PROT32]:,.0f} cyc")
    report.row("64-bit (long) fib(20)", "most expensive", f"{results[Mode.LONG64]:,.0f} cyc")
    report.row(
        "real-mode saving vs protected",
        "~10,000 cyc",
        f"{results[Mode.PROT32] - results[Mode.REAL16]:,.0f} cyc",
    )
    report.note(
        f"absolute fib cost reflects the mini-ISA interpreter's per-call "
        f"cost model; mode *deltas* are the reproduced quantity "
        f"(long-vs-prot: {results[Mode.LONG64] - results[Mode.PROT32]:,.0f} cyc, "
        f"dominated by the 28K-cycle paging block)"
    )
    return results


def test_benchmark_real_mode(benchmark, measured):
    benchmark.pedantic(run_mode, args=(Mode.REAL16,), rounds=1, iterations=1)
    assert measured[Mode.REAL16] < measured[Mode.PROT32] < measured[Mode.LONG64]


def test_benchmark_long_mode(benchmark, measured):
    benchmark.pedantic(run_mode, args=(Mode.LONG64,), rounds=1, iterations=1)
    saved = measured[Mode.PROT32] - measured[Mode.REAL16]
    assert 5_000 < saved < 15_000
