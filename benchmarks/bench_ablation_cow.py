"""Ablation: eager vs copy-on-write snapshot restore (Section 7.2).

The paper: "Wasp's snapshotting mechanism currently uses memcpy ...
We expect this cost to drop when using copy-on-write mechanisms to
reset a virtine, as in SEUSS."  This ablation re-runs the Figure 12
sweep under both restore modes for a sparse-writing virtine: eager
restore scales with image size; CoW restore scales with the *written*
working set and stays nearly flat.
"""

import pytest

from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us
from repro.wasp import BitmaskPolicy, CleanMode, Hypercall, VirtineConfig, Wasp
from repro.wasp.snapshot import RestoreMode

SIZES = (64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024)


def policy():
    return BitmaskPolicy(VirtineConfig.allowing(Hypercall.SNAPSHOT))


def sparse_entry(env):
    if not env.from_snapshot:
        env.memory.write(0x240000, b"captured")
        env.snapshot(payload=None)
    env.memory.write(0x240000, b"written")  # one page of private state
    return 0


@pytest.fixture(scope="module")
def measured(report):
    wasp = Wasp()
    builder = ImageBuilder()
    results = {}
    for size in SIZES:
        image = builder.hosted(f"cow-{size}", sparse_entry, size=size)
        wasp.launch(image, policy=policy())  # capture
        eager = wasp.launch(image, policy=policy(), clean=CleanMode.ASYNC,
                            restore_mode=RestoreMode.EAGER).cycles
        cow = wasp.launch(image, policy=policy(), clean=CleanMode.ASYNC,
                          restore_mode=RestoreMode.COW).cycles
        results[size] = (eager, cow)
        report.line(
            f"  {size // 1024:6d} KB image: eager {cycles_to_us(eager):10.1f} us"
            f"   cow {cycles_to_us(cow):10.1f} us"
            f"   speedup {eager / cow:6.1f}x"
        )
    big_eager, big_cow = results[SIZES[-1]]
    report.row("CoW speedup at 4 MB", "'drastic' (Section 7.2)", f"{big_eager / big_cow:.1f}x")
    return results


class TestShape:
    def test_cow_always_at_least_as_fast(self, measured):
        for eager, cow in measured.values():
            assert cow <= eager

    def test_cow_wins_grow_with_size(self, measured):
        speedups = [eager / cow for eager, cow in measured.values()]
        assert speedups == sorted(speedups)

    def test_drastic_at_large_images(self, measured):
        eager, cow = measured[SIZES[-1]]
        assert eager / cow > 5.0

    def test_cow_grows_far_slower_than_eager(self, measured):
        """CoW still pays a per-page mapping cost, but it grows far more
        slowly than the eager memcpy (copies track the written set)."""
        small_eager, small_cow = measured[SIZES[0]]
        big_eager, big_cow = measured[SIZES[-1]]
        eager_growth = big_eager / small_eager
        cow_growth = big_cow / small_cow
        assert cow_growth < eager_growth / 3


def test_benchmark_cow_restore(benchmark, measured):
    wasp = Wasp()
    image = ImageBuilder().hosted("cow-bench", sparse_entry, size=1024 * 1024)
    wasp.launch(image, policy=policy())
    benchmark.pedantic(
        lambda: wasp.launch(image, policy=policy(), clean=CleanMode.ASYNC,
                            restore_mode=RestoreMode.COW),
        rounds=5, iterations=1,
    )
