"""Table 1 (E1): boot-time breakdown of the minimal runtime environment.

Paper (tinker, KVM, cycles): paging identity mapping 28,109; protected
transition 3,217; long transition (lgdt) 681; jump to 32-bit 175; jump
to 64-bit 190; load 32-bit GDT 4,118; first instruction 74.
"""

import pytest

from repro.hw.clock import Clock
from repro.hw.cpu import Mode
from repro.hw.isa import Assembler
from repro.hw.vmx import VirtualMachine
from repro.runtime import boot

PAPER = {
    "paging identity mapping": 28109,
    "protected transition": 3217,
    "long transition (lgdt)": 681,
    "jump to 32-bit (ljmp)": 175,
    "jump to 64-bit (ljmp)": 190,
    "load 32-bit gdt (lgdt)": 4118,
    "first instruction": 74,
}


def boot_to_long_mode() -> VirtualMachine:
    vm = VirtualMachine(8 * 1024 * 1024, Clock())
    vm.load_program(Assembler(0x8000).assemble(boot.boot_source(Mode.LONG64)))
    vm.vmrun()
    return vm


@pytest.fixture(scope="module")
def measured(report):
    vm = boot_to_long_mode()
    comp = dict(vm.interp.component_cycles)
    deltas = {}
    prev = None
    for m in vm.milestones:
        if prev is not None:
            deltas[m.marker] = m.cycles - prev.cycles
        prev = m
    # The paper's "paging identity mapping" row covers table construction
    # (stores + EPT construction in KVM) plus the paging-enable controls.
    comp["paging identity mapping"] = (
        deltas[boot.MS_AFTER_IDENT_MAP] + deltas[boot.MS_PAGING_ON]
    )
    for label, paper_value in PAPER.items():
        report.row(label, f"{paper_value:,} cyc", f"{comp[label]:,} cyc")
    total = sum(comp[k] for k in PAPER)
    report.row("total (C1: a few tens of thousands)", "<~100,000 cyc", f"{total:,} cyc")
    return comp


@pytest.mark.parametrize("label", list(PAPER))
def test_component_within_tolerance(measured, label):
    assert measured[label] == pytest.approx(PAPER[label], rel=0.10)


def test_ident_map_dominates(measured):
    others = [v for k, v in measured.items() if k != "paging identity mapping" and k in PAPER]
    assert measured["paging identity mapping"] > max(others)


def test_benchmark_boot(benchmark, measured):
    vm = benchmark.pedantic(boot_to_long_mode, rounds=3, iterations=1)
    assert vm.cpu.mode is Mode.LONG64
    assert measured["paging identity mapping"] == pytest.approx(28_109, rel=0.10)
