"""Ablation: the contribution of each Wasp optimisation.

DESIGN.md calls out three latency-critical design choices: shell
pooling, asynchronous cleaning, and snapshotting.  This ablation runs
one hosted workload across the knob grid and attributes the savings,
confirming each mechanism pays for itself (and how they compose).
"""

import pytest

from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us
from repro.wasp import BitmaskPolicy, CleanMode, Hypercall, VirtineConfig, Wasp


def workload_entry(env):
    if not env.from_snapshot:
        env.charge(env._wasp.costs.GUEST_LIBC_INIT)
        env.snapshot(payload=None)
    env.charge_bytes(4096)
    return 0


def policy():
    return BitmaskPolicy(VirtineConfig.allowing(Hypercall.SNAPSHOT))


@pytest.fixture(scope="module")
def measured(report):
    wasp = Wasp()
    image = ImageBuilder().hosted("ablation", workload_entry)
    # Warm: fill the pool and capture the snapshot.
    wasp.launch(image, policy=policy())
    wasp.launch(image, policy=policy())

    configs = {
        "scratch, sync clean, no snapshot": dict(pooled=False, clean=CleanMode.SYNC, use_snapshot=False),
        "pooled, sync clean, no snapshot": dict(pooled=True, clean=CleanMode.SYNC, use_snapshot=False),
        "pooled, async clean, no snapshot": dict(pooled=True, clean=CleanMode.ASYNC, use_snapshot=False),
        "pooled, sync clean, snapshot": dict(pooled=True, clean=CleanMode.SYNC, use_snapshot=True),
        "pooled, async clean, snapshot": dict(pooled=True, clean=CleanMode.ASYNC, use_snapshot=True),
    }
    results = {}
    for label, kwargs in configs.items():
        results[label] = wasp.launch(image, policy=policy(), **kwargs).cycles
        report.line(f"  {label:38s} {cycles_to_us(results[label]):10.1f} us")

    full = results["pooled, async clean, snapshot"]
    none = results["scratch, sync clean, no snapshot"]
    report.row("all optimisations vs none", "order-of-magnitude", f"{none / full:.1f}x")
    return results


class TestAttribution:
    def test_pooling_dominates(self, measured):
        """Skipping KVM_CREATE_VM is the single biggest win."""
        saving_pool = (
            measured["scratch, sync clean, no snapshot"]
            - measured["pooled, sync clean, no snapshot"]
        )
        saving_async = (
            measured["pooled, sync clean, no snapshot"]
            - measured["pooled, async clean, no snapshot"]
        )
        assert saving_pool > saving_async > 0

    def test_snapshot_helps_on_top_of_pooling(self, measured):
        assert (
            measured["pooled, async clean, snapshot"]
            < measured["pooled, async clean, no snapshot"]
        )

    def test_composition_is_best(self, measured):
        best = measured["pooled, async clean, snapshot"]
        assert best == min(measured.values())

    def test_total_speedup_order_of_magnitude(self, measured):
        ratio = (
            measured["scratch, sync clean, no snapshot"]
            / measured["pooled, async clean, snapshot"]
        )
        assert ratio > 5.0


def test_benchmark_fully_optimised(benchmark, measured):
    wasp = Wasp()
    image = ImageBuilder().hosted("ablation-bench", workload_entry)
    wasp.launch(image, policy=policy())
    benchmark.pedantic(
        lambda: wasp.launch(image, policy=policy(), clean=CleanMode.ASYNC),
        rounds=5,
        iterations=1,
    )
