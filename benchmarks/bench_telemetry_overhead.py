"""Telemetry overhead: zero simulated cycles, bounded host time when off.

The telemetry plane's contract (DESIGN.md section 14) mirrors the
tracer's: a registry only *reads* the simulated clock, so a metered run
and an unmetered run land on the same final cycle count; and with
telemetry disabled every instrumentation site costs only a no-op method
call through ``NO_TELEMETRY``, bounded here at under 2% of host
runtime.  Results are written to
``benchmarks/results/BENCH_telemetry_overhead.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder
from repro.telemetry import NO_TELEMETRY, TelemetryRegistry
from repro.wasp import Wasp

LAUNCHES = 30
RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "BENCH_telemetry_overhead.json")


class CountingRegistry(TelemetryRegistry):
    """A live registry that tallies how many hook calls the run makes.

    Every instrumentation site is a fetch (``counter``/``gauge``/
    ``histogram``) plus one operation (``inc``/``set``/``record``) --
    two method calls on the disabled path -- or one ``record_flight``
    call.  The tally sizes the analytical disabled-path cost below.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hook_calls = 0

    def counter(self, name, **labels):
        self.hook_calls += 2
        return super().counter(name, **labels)

    def gauge(self, name, **labels):
        self.hook_calls += 2
        return super().gauge(name, **labels)

    def histogram(self, name, **labels):
        self.hook_calls += 2
        return super().histogram(name, **labels)

    def record_flight(self, kind, name, **detail):
        self.hook_calls += 1
        return super().record_flight(kind, name, **detail)


def run_workload(telemetry) -> tuple[int, float]:
    """Final simulated cycles and host seconds for one metered run."""
    wasp = Wasp(telemetry=telemetry)
    image = ImageBuilder().minimal(Mode.LONG64)
    start = time.perf_counter()
    for _ in range(LAUNCHES):
        wasp.launch(image, use_snapshot=False)
    host = time.perf_counter() - start
    return wasp.clock.cycles, host


def noop_call_cost(calls: int = 200_000) -> float:
    """Host seconds per NO_TELEMETRY hook call (disabled-path unit cost)."""
    start = time.perf_counter()
    for _ in range(calls // 2):
        NO_TELEMETRY.counter("x", image="bench").inc()
    return (time.perf_counter() - start) / calls


@pytest.fixture(scope="module")
def measured(report):
    report.owns_results_file = True  # this module writes RESULTS_PATH itself
    sim_off, host_off = run_workload(telemetry=None)
    counting = CountingRegistry()
    sim_on, host_on = run_workload(telemetry=counting)
    per_call = noop_call_cost()
    # With telemetry disabled the same sites hit NO_TELEMETRY no-ops
    # instead; their total host cost relative to the unmetered runtime
    # is the disabled-path overhead the <2% acceptance bound is about.
    noop_fraction = counting.hook_calls * per_call / host_off
    enabled_fraction = (host_on - host_off) / host_off
    data = {
        "engine_mode": report.engine_mode,
        "launches": LAUNCHES,
        "simulated_cycles": {"disabled": sim_off, "enabled": sim_on},
        "host_seconds": {"disabled": round(host_off, 6),
                         "enabled": round(host_on, 6)},
        "hook_calls": counting.hook_calls,
        "instruments": len(counting.instruments()),
        "noop_call_seconds": per_call,
        "disabled_overhead_fraction": noop_fraction,
        "enabled_overhead_fraction": round(enabled_fraction, 4),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    report.row("simulated cycles, metered vs not", f"{sim_off:,}",
               f"{sim_on:,}")
    report.row("disabled-telemetry host overhead", "< 2%",
               f"{noop_fraction:.2%}")
    report.note(f"{counting.hook_calls} hook calls across "
                f"{len(counting.instruments())} instruments over "
                f"{LAUNCHES} launches; results in {RESULTS_PATH.name}")
    return data


class TestTelemetryOverhead:
    def test_zero_simulated_overhead(self, measured):
        assert (measured["simulated_cycles"]["enabled"]
                == measured["simulated_cycles"]["disabled"])

    def test_disabled_host_overhead_under_two_percent(self, measured):
        assert measured["disabled_overhead_fraction"] < 0.02

    def test_results_file_seeded(self, measured):
        stored = json.loads(RESULTS_PATH.read_text())
        assert stored["launches"] == LAUNCHES
        assert stored["disabled_overhead_fraction"] < 0.02
