"""Table 2: the cost of crossing isolation boundaries across systems.

Prior systems are cost models calibrated to their published numbers;
the virtine row is measured live from this repo's Wasp stack (pool
provision + KVM_RUN + vmrun + exit, from host userspace).  Paper: 5 us
for virtines, between LwC (2.01 us) and Wedge (~60 us).

Extended to the full five-mechanism spectrum (ROADMAP item 2): the SUD,
container, process, and pthread rows are *measured* through the same
launcher plumbing as the virtine row, so the matrix compares live
mechanisms, not constants.  The committed results file
(``results/BENCH_table2_boundaries.json``) is the conformance baseline
``tests/test_baselines.py`` asserts orderings against.
"""

import pytest

from repro.baselines import ALL_MECHANISMS, VirtineBoundary, spectrum_mechanisms
from repro.hw.clock import Clock
from repro.units import cycles_to_us

#: Display labels + paper expectations for the spectrum rows.
SPECTRUM_HINTS = {
    "kvm": "~5 us",
    "sud": "trap tax per call",
    "container": "> process",
    "process": "~2 ctx switches",
    "thread": "~function call",
}


@pytest.fixture(scope="module")
def spectrum():
    return spectrum_mechanisms()


@pytest.fixture(scope="module")
def measured(report, spectrum):
    clock = Clock()
    rows = {}
    for cls in ALL_MECHANISMS:
        mechanism = cls()
        result = mechanism.cross(clock)
        rows[result.system] = result
        report.row(
            f"{result.system} ({result.mechanism})",
            f"{mechanism.paper_latency_us} us",
            f"{result.latency_us:.2f} us",
        )
    crossings = {}
    creations = {}
    for name, mechanism in spectrum.items():
        result = mechanism.cross()
        rows[result.system] = result
        crossings[name] = result.cycles
        if hasattr(mechanism, "creation_cycles"):
            creations[name] = mechanism.creation_cycles()
        report.row(
            f"{result.system} ({result.mechanism})",
            SPECTRUM_HINTS[name],
            f"{result.latency_us:.2f} us",
        )
    report.record("spectrum_crossings_cycles", crossings)
    report.record("spectrum_creations_cycles", creations)
    return rows


class TestShape:
    def test_virtines_between_lwc_and_wedge(self, measured):
        assert measured["LwC"].latency_us < measured["Virtines"].latency_us
        assert measured["Virtines"].latency_us < measured["Wedge"].latency_us

    def test_virtines_single_digit_us(self, measured):
        assert measured["Virtines"].latency_us < 10.0

    def test_ordering_matches_table(self, measured):
        order = ["Hodor", "SeCage", "Enclosures", "LwC", "Virtines", "Wedge"]
        latencies = [measured[s].latency_us for s in order]
        assert latencies == sorted(latencies)

    def test_spectrum_crossing_ordering(self, measured):
        """The paper's argument across the spectrum: pthread crossings
        are trivial, virtines beat processes, containers pay the seccomp
        + IPC premium on top of a process."""
        assert (
            measured["Linux pthread"].cycles
            < measured["Virtines"].cycles
            < measured["Linux process"].cycles
            < measured["Container"].cycles
        )

    def test_sud_trades_creation_for_crossing_tax(self, spectrum, measured):
        """SUD creation is the cheapest on the spectrum, but each of its
        crossings pays the SIGSYS bounce -- dearer than a pthread's."""
        creations = {name: m.creation_cycles()
                     for name, m in spectrum.items()
                     if hasattr(m, "creation_cycles")}
        assert creations["sud"] == min(creations.values())
        assert measured["SUD virtine"].cycles > measured["Linux pthread"].cycles


def test_cross_cycles(report, measured):
    """Record per-mechanism microseconds for the committed baseline."""
    report.record(
        "spectrum_latency_us",
        {system: round(result.latency_us, 3)
         for system, result in measured.items()},
    )
    assert all(result.cycles >= 0 for result in measured.values())


def test_benchmark_virtine_cross(benchmark, measured):
    virtines = VirtineBoundary()
    benchmark.pedantic(
        lambda: virtines.cross(virtines.wasp.clock), rounds=10, iterations=1
    )


def test_benchmark_sud_cross(benchmark, spectrum, measured):
    sud = spectrum["sud"]
    benchmark.pedantic(lambda: sud.cross(), rounds=10, iterations=1)
