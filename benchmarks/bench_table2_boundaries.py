"""Table 2: the cost of crossing isolation boundaries across systems.

Prior systems are cost models calibrated to their published numbers;
the virtine row is measured live from this repo's Wasp stack (pool
provision + KVM_RUN + vmrun + exit, from host userspace).  Paper: 5 us
for virtines, between LwC (2.01 us) and Wedge (~60 us).
"""

import pytest

from repro.baselines import ALL_MECHANISMS, VirtineBoundary
from repro.hw.clock import Clock


@pytest.fixture(scope="module")
def measured(report):
    clock = Clock()
    rows = {}
    for cls in ALL_MECHANISMS:
        mechanism = cls()
        result = mechanism.cross(clock)
        rows[result.system] = result
        report.row(
            f"{result.system} ({result.mechanism})",
            f"{mechanism.paper_latency_us} us",
            f"{result.latency_us:.2f} us",
        )
    virtines = VirtineBoundary()
    result = virtines.cross(virtines.wasp.clock)
    rows["Virtines"] = result
    report.row(
        f"Virtines ({result.mechanism})",
        f"~{virtines.paper_latency_us} us",
        f"{result.latency_us:.2f} us",
    )
    return rows


class TestShape:
    def test_virtines_between_lwc_and_wedge(self, measured):
        assert measured["LwC"].latency_us < measured["Virtines"].latency_us
        assert measured["Virtines"].latency_us < measured["Wedge"].latency_us

    def test_virtines_single_digit_us(self, measured):
        assert measured["Virtines"].latency_us < 10.0

    def test_ordering_matches_table(self, measured):
        order = ["Hodor", "SeCage", "Enclosures", "LwC", "Virtines", "Wedge"]
        latencies = [measured[s].latency_us for s in order]
        assert latencies == sorted(latencies)


def test_benchmark_virtine_cross(benchmark, measured):
    virtines = VirtineBoundary()
    benchmark.pedantic(
        lambda: virtines.cross(virtines.wasp.clock), rounds=10, iterations=1
    )
