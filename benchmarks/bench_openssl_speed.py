"""Section 6.4: openssl speed -evp aes-128-cbc, native vs virtine.

The paper reports a ~17x slowdown at 16 KB cipher chunks with
snapshotting, dominated by the per-invocation copy of the ~21 KB
OpenSSL virtine image ("virtine creation in this example is memory
bound").
"""

import pytest

from repro.apps.crypto.speed import SPEED_CHUNK_SIZES, SpeedBenchmark

ITERATIONS = 4


@pytest.fixture(scope="module")
def measured(report):
    bench = SpeedBenchmark()
    rows = {}
    for size in SPEED_CHUNK_SIZES:
        native = bench.native_row(size, iterations=ITERATIONS)
        isolated = bench.virtine_row(size, iterations=ITERATIONS)
        rows[size] = (native, isolated)
        report.line(
            f"  {size:6d} B  native {native.bytes_per_second / 1e6:9.1f} MB/s"
            f"   virtine {isolated.bytes_per_second / 1e6:9.1f} MB/s"
            f"   slowdown {native.bytes_per_second / isolated.bytes_per_second:7.1f}x"
        )
    native16k, virtine16k = rows[16384]
    slowdown = native16k.bytes_per_second / virtine16k.bytes_per_second
    report.row("slowdown at 16 KB chunks", "~17x", f"{slowdown:.1f}x")
    report.note("per-invocation cost is dominated by the ~21 KB image/snapshot copy")
    return rows


class TestShape:
    def test_slowdown_regime_at_16k(self, measured):
        native, isolated = measured[16384]
        slowdown = native.bytes_per_second / isolated.bytes_per_second
        assert 5.0 < slowdown < 40.0

    def test_smaller_chunks_amplify_overhead(self, measured):
        def slowdown(size):
            native, isolated = measured[size]
            return native.bytes_per_second / isolated.bytes_per_second

        assert slowdown(16) > slowdown(1024) > slowdown(16384)

    def test_virtine_throughput_improves_with_chunk(self, measured):
        rates = [measured[s][1].bytes_per_second for s in SPEED_CHUNK_SIZES]
        assert rates == sorted(rates)


def test_benchmark_virtine_encrypt_16k(benchmark, measured):
    from repro.apps.crypto.speed import VirtineCipher
    from repro.wasp import Wasp

    cipher = VirtineCipher(Wasp(), b"\x2b" * 16)
    chunk = bytes(16384)
    cipher.encrypt(bytes(16), chunk)
    benchmark.pedantic(
        lambda: cipher.encrypt(bytes(16), chunk), rounds=3, iterations=1
    )
