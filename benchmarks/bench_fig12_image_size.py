"""Figure 12 (E6): impact of image size on start-up latency.

A minimal halting virtine padded from 16 KB to 16 MB.  Claim C6: once
the image outgrows the fixed provisioning costs, start-up is memory-
bandwidth bound (the paper measures 2.3 ms at 16 MB ~= 6.8 GB/s, against
tinker's 6.7 GB/s memcpy bandwidth).
"""

import pytest

from repro.units import cycles_to_ms, cycles_to_us
from repro.runtime.image import ImageBuilder
from repro.wasp import CleanMode, Wasp

SIZES = (
    16 * 1024, 64 * 1024, 256 * 1024,
    1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024,
    8 * 1024 * 1024, 16 * 1024 * 1024,
)


def launch_padded(wasp, image):
    return wasp.launch(image, use_snapshot=False, clean=CleanMode.ASYNC).cycles


@pytest.fixture(scope="module")
def measured(report):
    wasp = Wasp()
    builder = ImageBuilder()
    results = {}
    for size in SIZES:
        image = builder.hlt_only(size=size)
        launch_padded(wasp, image)  # warm this pool bucket
        results[size] = launch_padded(wasp, image)

    for size, cycles in results.items():
        label = f"{size // 1024:>6d} KB image"
        report.line(f"  {label}: {cycles_to_us(cycles):12,.1f} us")
    report.row("16 MB start-up", "~2.3 ms", f"{cycles_to_ms(results[SIZES[-1]]):.2f} ms")
    floor = results[SIZES[0]]
    knee = next((s for s in SIZES if results[s] > 2 * floor), None)
    report.row("knee (latency > 2x floor)", "~1-2 MB (paper fig.)",
               f"{knee // 1024} KB" if knee else "none")
    implied_bw = (16 * 1024 * 1024) / (results[SIZES[-1]] / 2_690_000_000) / 1e9
    report.row("implied copy bandwidth at 16 MB", "6.8 GB/s", f"{implied_bw:.1f} GB/s")
    return results


class TestShape:
    def test_monotonic(self, measured):
        values = [measured[s] for s in SIZES]
        assert values == sorted(values)

    def test_sixteen_mb_matches_paper(self, measured):
        assert cycles_to_ms(measured[SIZES[-1]]) == pytest.approx(2.3, abs=0.5)

    def test_linear_regime_past_knee(self, measured):
        """Doubling a large image roughly doubles the latency."""
        ratio = measured[16 * 1024 * 1024] / measured[8 * 1024 * 1024]
        assert 1.7 < ratio < 2.3

    def test_floor_regime_below_knee(self, measured):
        """Small images are dominated by fixed provisioning costs."""
        ratio = measured[64 * 1024] / measured[16 * 1024]
        assert ratio < 3.0


def test_benchmark_small_image(benchmark, measured):
    wasp = Wasp()
    image = ImageBuilder().hlt_only(size=16 * 1024)
    launch_padded(wasp, image)
    benchmark.pedantic(launch_padded, args=(wasp, image), rounds=5, iterations=1)


def test_benchmark_large_image(benchmark, measured):
    wasp = Wasp()
    image = ImageBuilder().hlt_only(size=16 * 1024 * 1024)
    launch_padded(wasp, image)
    benchmark.pedantic(launch_padded, args=(wasp, image), rounds=3, iterations=1)
