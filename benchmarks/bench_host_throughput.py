"""Host throughput of the simulator's fast-path engine and superblock JIT.

This benchmark measures *host* wall-clock time, not simulated cycles:
how fast the interpreter chews through guest work in each of its three
engine modes.  Simulated cycles are asserted bit-identical across all
modes -- the fast paths and the JIT change how quickly the simulation
runs, never what it computes.

Engine modes (the ablation axis, recorded in the results file):

* ``reference``  -- plain interpreter, every layer on the slow path.
* ``fast``       -- PR 4 fast-path engine (software TLB, predecoded
                    dispatch, bulk-memory paths), superblock JIT off.
* ``fast+jit``   -- trace-driven superblock JIT on top of the fast
                    paths (the library default).

Three workloads cover the engine's distinct hot paths:

* ``fib``           -- instruction-dense: recursive fib(22) in LONG64,
                       ~460K guest instructions through paged memory.
* ``boot_storm``    -- transition-heavy: repeated cold boots to 64-bit
                       (GDT loads, CR writes, 514 page-table stores, TLB
                       flushes) via the raw KVM interface.
* ``http_snapshot`` -- runtime-heavy: the static HTTP server with
                       snapshot isolation, exercising pool recycling and
                       bulk snapshot restores.

Results land in ``results/BENCH_host_throughput.json``.  If a committed
baseline is present it is read *before* being overwritten and each
workload's speedups must stay within 30% of it (the ratios are
host-independent to first order: all sides run on the same machine in
the same process).
"""

import json
import pathlib
from functools import partial

import pytest

from repro.hw.clock import Clock
from repro.hw.cpu import Mode
from repro.hw.vmx import ExitReason, VirtualMachine
from repro.kvm.device import KVM
from repro.runtime.image import ImageBuilder

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_host_throughput.json"

FIB_N = 22
BOOT_LAUNCHES = 30
HTTP_REQUESTS = 80
#: Host wall-clock repeats per (workload, mode); best-of is reported.
REPEATS = 3
#: A fresh run must keep each workload's speedups within 30% of the
#: committed baseline's (satellite: CI regression gate).
BASELINE_RATIO_FLOOR = 0.7

#: The ablation axis.  JSON keys use ``slow`` / ``fast`` / ``fast_jit``
#: (``slow``/``fast`` predate the JIT and keep old baselines readable).
ENGINE_MODES = ("reference", "fast", "fast+jit")
_MODE_KEY = {"reference": "slow", "fast": "fast", "fast+jit": "fast_jit"}


def _engine_kwargs(mode: str) -> dict:
    return {"fast_paths": mode != "reference", "jit": mode == "fast+jit"}


def run_fib(mode: str):
    """Instruction-dense: boot to LONG64, compute fib(22) recursively."""
    image = ImageBuilder().fib(Mode.LONG64, FIB_N)
    clock = Clock()
    vm = VirtualMachine(4 * 1024 * 1024, clock, **_engine_kwargs(mode))
    vm.load_program(image.program)
    info = vm.vmrun()
    assert info.reason is ExitReason.HLT, info
    assert vm.cpu.regs["ax"] == 17_711  # fib(22)
    return clock.cycles, vm.interp.instructions_retired


def run_boot_storm(mode: str):
    """Transition-heavy: repeated cold boots through the raw KVM path."""
    image = ImageBuilder().minimal(Mode.LONG64)
    clock = Clock()
    kvm = KVM(clock, **_engine_kwargs(mode))
    instructions = 0
    for _ in range(BOOT_LAUNCHES):
        handle = kvm.create_vm()
        handle.set_user_memory_region(4 * 1024 * 1024)
        vcpu = handle.create_vcpu()
        handle.load_program(image.program)
        info = vcpu.run()
        assert info.reason is ExitReason.HLT, info
        instructions += handle.vm.interp.instructions_retired
    return clock.cycles, instructions


def run_http_snapshot(mode: str):
    """Runtime-heavy: snapshot-isolated HTTP serving on the Wasp stack."""
    from repro.apps.http.client import RequestGenerator
    from repro.apps.http.server import StaticHttpServer
    from repro.wasp import Wasp

    wasp = Wasp(**_engine_kwargs(mode))
    wasp.kernel.fs.add_file("/srv/index.html", b"<html>bench</html>")
    server = StaticHttpServer(wasp, port=8080, isolation="snapshot")
    generator = RequestGenerator(wasp.kernel, server, "/index.html")
    for _ in range(HTTP_REQUESTS):
        outcome = generator.one_request()
        assert outcome.response.status == 200
    return wasp.clock.cycles, None


WORKLOADS = {
    "fib": run_fib,
    "boot_storm": run_boot_storm,
    "http_snapshot": run_http_snapshot,
}


@pytest.fixture(scope="module")
def measured(report, host_timer):
    report.owns_results_file = True
    report.engine_mode = "ablation:" + "/".join(ENGINE_MODES)

    baseline = None
    if RESULTS_PATH.exists():
        try:
            baseline = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            baseline = None

    workloads = {}
    for name, fn in WORKLOADS.items():
        cycles = {}
        seconds = {}
        insns = {}
        for mode in ENGINE_MODES:
            key = _MODE_KEY[mode]
            (cycles[key], insns[key]), seconds[key] = host_timer.best_of(
                partial(fn, mode), REPEATS)
        entry = {
            "simulated_cycles": cycles,
            "host_seconds": {k: round(s, 6) for k, s in seconds.items()},
            # slow/fast: the PR 4 fast-path payoff.  fast/fast_jit: the
            # additional superblock-JIT payoff on top of it (the >= 3x
            # fib target).  slow/fast_jit: end-to-end.
            "speedup": round(seconds["slow"] / seconds["fast"], 3),
            "jit_speedup": round(seconds["fast"] / seconds["fast_jit"], 3),
            "total_speedup": round(seconds["slow"] / seconds["fast_jit"], 3),
            "cycles_per_host_second": {
                k: int(cycles[k] / seconds[k]) for k in seconds
            },
        }
        if insns["fast"] is not None:
            entry["guest_instructions"] = insns["fast"]
            entry["insns_per_host_second"] = {
                k: int(insns[k] / seconds[k]) for k in seconds
            }
        workloads[name] = entry
        report.row(f"{name}: fast-path speedup",
                   ">= 3x (fib)" if name == "fib" else "n/a",
                   f"{entry['speedup']:.2f}x")
        report.row(f"{name}: jit speedup over fast",
                   ">= 3x (fib)" if name == "fib" else "n/a",
                   f"{entry['jit_speedup']:.2f}x")
        report.row(f"{name}: Mcycles / host s", "n/a",
                   f"{entry['cycles_per_host_second']['fast_jit'] / 1e6:,.1f}")
    report.note(f"best of {REPEATS} host timings per mode; simulated cycles "
                f"are asserted identical across all engine modes")

    data = {
        "engine_modes": list(ENGINE_MODES),
        "repeats": REPEATS,
        "workload_params": {
            "fib_n": FIB_N,
            "boot_launches": BOOT_LAUNCHES,
            "http_requests": HTTP_REQUESTS,
        },
        "workloads": workloads,
    }
    if baseline is not None:
        data["previous_speedups"] = {
            name: {k: entry.get(k) for k in ("speedup", "jit_speedup")
                   if entry.get(k) is not None}
            for name, entry in baseline.get("workloads", {}).items()
        }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    data["_baseline"] = baseline
    return data


class TestHostThroughput:
    def test_simulated_cycles_identical(self, measured):
        """Fast paths and JIT change host time only; the virtual clock is
        bit-exact across all three engine modes."""
        for name, entry in measured["workloads"].items():
            cycles = entry["simulated_cycles"]
            assert cycles["fast"] == cycles["slow"] == cycles["fast_jit"], name

    def test_instruction_dense_speedup(self, measured):
        """The predecode+TLB engine must pay off where instructions dominate.

        The committed baseline records >= 3x; the in-test floor is looser
        because shared CI runners time noisily even under best-of.
        """
        assert measured["workloads"]["fib"]["speedup"] >= 2.0

    def test_jit_speedup_over_fast_path(self, measured):
        """The superblock JIT must deliver its own >= 3x on fib *on top of*
        the fast-path engine (committed baseline; looser in-test floor
        for runner noise)."""
        assert measured["workloads"]["fib"]["jit_speedup"] >= 2.0

    def test_jit_no_pathological_slowdown(self, measured):
        """Compilation cost must never eat its winnings on any workload."""
        for name, entry in measured["workloads"].items():
            assert entry["jit_speedup"] >= 0.7, (name, entry["jit_speedup"])

    def test_no_pathological_slowdown(self, measured):
        for name, entry in measured["workloads"].items():
            assert entry["speedup"] >= 0.7, (name, entry["speedup"])

    def test_no_regression_vs_baseline(self, measured):
        baseline = measured["_baseline"]
        if baseline is None:
            pytest.skip("no committed baseline to compare against")
        for name, entry in baseline.get("workloads", {}).items():
            if name not in measured["workloads"]:
                continue
            fresh = measured["workloads"][name]
            for metric in ("speedup", "jit_speedup"):
                if metric not in entry or metric not in fresh:
                    continue
                assert fresh[metric] >= BASELINE_RATIO_FLOOR * entry[metric], (
                    f"{name}: {metric} fell to {fresh[metric]:.2f}x from "
                    f"baseline {entry[metric]:.2f}x "
                    f"(floor {BASELINE_RATIO_FLOOR:.0%})")

    def test_results_file_written(self, measured):
        stored = json.loads(RESULTS_PATH.read_text())
        assert len(stored["workloads"]) >= 3
        assert stored["engine_modes"] == list(ENGINE_MODES)
