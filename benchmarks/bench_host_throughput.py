"""Host throughput of the simulator's fast-path engine.

This benchmark measures *host* wall-clock time, not simulated cycles:
how fast the interpreter chews through guest work with the fast-path
engine (software TLB, predecoded dispatch, bulk-memory paths) on versus
off.  Simulated cycles are asserted bit-identical in both modes -- the
fast paths change how quickly the simulation runs, never what it
computes.

Three workloads cover the engine's distinct hot paths:

* ``fib``           -- instruction-dense: recursive fib(22) in LONG64,
                       ~460K guest instructions through paged memory.
* ``boot_storm``    -- transition-heavy: repeated cold boots to 64-bit
                       (GDT loads, CR writes, 514 page-table stores, TLB
                       flushes) via the raw KVM interface.
* ``http_snapshot`` -- runtime-heavy: the static HTTP server with
                       snapshot isolation, exercising pool recycling and
                       bulk snapshot restores.

Results land in ``results/BENCH_host_throughput.json``.  If a committed
baseline is present it is read *before* being overwritten and each
workload's fast/slow speedup must stay within 30% of it (the ratio is
host-independent to first order: both sides run on the same machine in
the same process).
"""

import json
import pathlib
from functools import partial

import pytest

from repro.hw.clock import Clock
from repro.hw.cpu import Mode
from repro.hw.vmx import ExitReason, VirtualMachine
from repro.kvm.device import KVM
from repro.runtime.image import ImageBuilder

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_host_throughput.json"

FIB_N = 22
BOOT_LAUNCHES = 30
HTTP_REQUESTS = 80
#: Host wall-clock repeats per (workload, mode); best-of is reported.
REPEATS = 3
#: A fresh run must keep each workload's speedup within 30% of the
#: committed baseline's (satellite: CI regression gate).
BASELINE_RATIO_FLOOR = 0.7


def run_fib(fast_paths: bool):
    """Instruction-dense: boot to LONG64, compute fib(22) recursively."""
    image = ImageBuilder().fib(Mode.LONG64, FIB_N)
    clock = Clock()
    vm = VirtualMachine(4 * 1024 * 1024, clock, fast_paths=fast_paths)
    vm.load_program(image.program)
    info = vm.vmrun()
    assert info.reason is ExitReason.HLT, info
    assert vm.cpu.regs["ax"] == 17_711  # fib(22)
    return clock.cycles, vm.interp.instructions_retired


def run_boot_storm(fast_paths: bool):
    """Transition-heavy: repeated cold boots through the raw KVM path."""
    image = ImageBuilder().minimal(Mode.LONG64)
    clock = Clock()
    kvm = KVM(clock, fast_paths=fast_paths)
    instructions = 0
    for _ in range(BOOT_LAUNCHES):
        handle = kvm.create_vm()
        handle.set_user_memory_region(4 * 1024 * 1024)
        vcpu = handle.create_vcpu()
        handle.load_program(image.program)
        info = vcpu.run()
        assert info.reason is ExitReason.HLT, info
        instructions += handle.vm.interp.instructions_retired
    return clock.cycles, instructions


def run_http_snapshot(fast_paths: bool):
    """Runtime-heavy: snapshot-isolated HTTP serving on the Wasp stack."""
    from repro.apps.http.client import RequestGenerator
    from repro.apps.http.server import StaticHttpServer
    from repro.wasp import Wasp

    wasp = Wasp(fast_paths=fast_paths)
    wasp.kernel.fs.add_file("/srv/index.html", b"<html>bench</html>")
    server = StaticHttpServer(wasp, port=8080, isolation="snapshot")
    generator = RequestGenerator(wasp.kernel, server, "/index.html")
    for _ in range(HTTP_REQUESTS):
        outcome = generator.one_request()
        assert outcome.response.status == 200
    return wasp.clock.cycles, None


WORKLOADS = {
    "fib": run_fib,
    "boot_storm": run_boot_storm,
    "http_snapshot": run_http_snapshot,
}


@pytest.fixture(scope="module")
def measured(report, host_timer):
    report.owns_results_file = True

    baseline = None
    if RESULTS_PATH.exists():
        try:
            baseline = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            baseline = None

    workloads = {}
    for name, fn in WORKLOADS.items():
        (cycles_fast, insns_fast), fast_s = host_timer.best_of(
            partial(fn, True), REPEATS)
        (cycles_slow, insns_slow), slow_s = host_timer.best_of(
            partial(fn, False), REPEATS)
        entry = {
            "simulated_cycles": {"fast": cycles_fast, "slow": cycles_slow},
            "host_seconds": {"fast": round(fast_s, 6), "slow": round(slow_s, 6)},
            "speedup": round(slow_s / fast_s, 3),
            "cycles_per_host_second": {
                "fast": int(cycles_fast / fast_s),
                "slow": int(cycles_slow / slow_s),
            },
        }
        if insns_fast is not None:
            entry["guest_instructions"] = insns_fast
            entry["insns_per_host_second"] = {
                "fast": int(insns_fast / fast_s),
                "slow": int(insns_slow / slow_s),
            }
        workloads[name] = entry
        report.row(f"{name}: fast-path speedup",
                   ">= 3x (fib)" if name == "fib" else "n/a",
                   f"{entry['speedup']:.2f}x")
        report.row(f"{name}: Mcycles / host s", "n/a",
                   f"{entry['cycles_per_host_second']['fast'] / 1e6:,.1f}")
    report.note(f"best of {REPEATS} host timings per mode; simulated cycles "
                f"are asserted identical fast vs slow")

    data = {
        "repeats": REPEATS,
        "workload_params": {
            "fib_n": FIB_N,
            "boot_launches": BOOT_LAUNCHES,
            "http_requests": HTTP_REQUESTS,
        },
        "workloads": workloads,
    }
    if baseline is not None:
        data["previous_speedups"] = {
            name: entry.get("speedup")
            for name, entry in baseline.get("workloads", {}).items()
        }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    data["_baseline"] = baseline
    return data


class TestHostThroughput:
    def test_simulated_cycles_identical(self, measured):
        """Fast paths change host time only; the virtual clock is bit-exact."""
        for name, entry in measured["workloads"].items():
            assert (entry["simulated_cycles"]["fast"]
                    == entry["simulated_cycles"]["slow"]), name

    def test_instruction_dense_speedup(self, measured):
        """The predecode+TLB engine must pay off where instructions dominate.

        The committed baseline records >= 3x; the in-test floor is looser
        because shared CI runners time noisily even under best-of.
        """
        assert measured["workloads"]["fib"]["speedup"] >= 2.0

    def test_no_pathological_slowdown(self, measured):
        for name, entry in measured["workloads"].items():
            assert entry["speedup"] >= 0.7, (name, entry["speedup"])

    def test_no_regression_vs_baseline(self, measured):
        baseline = measured["_baseline"]
        if baseline is None:
            pytest.skip("no committed baseline to compare against")
        for name, entry in baseline.get("workloads", {}).items():
            if name not in measured["workloads"] or "speedup" not in entry:
                continue
            fresh = measured["workloads"][name]["speedup"]
            assert fresh >= BASELINE_RATIO_FLOOR * entry["speedup"], (
                f"{name}: speedup fell to {fresh:.2f}x from baseline "
                f"{entry['speedup']:.2f}x (floor {BASELINE_RATIO_FLOOR:.0%})")

    def test_results_file_written(self, measured):
        stored = json.loads(RESULTS_PATH.read_text())
        assert len(stored["workloads"]) >= 3
