"""Legacy setup shim so editable installs work without the ``wheel``
package (the declarative configuration lives in ``pyproject.toml``)."""

from setuptools import setup

setup()
