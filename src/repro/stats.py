"""Statistics helpers used by the benchmark harnesses.

The paper removes outliers from latency distributions using Tukey's method
(Section 4.2, footnote 3): a sample is kept only if it lies on the interval
``[q1 - 1.5 * IQR, q3 + 1.5 * IQR]``.  The helpers here mirror that, plus
the summary statistics the figures report (mean, standard deviation,
percentiles, harmonic mean for throughput as in Figure 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    if not samples:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} out of range [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def tukey_filter(samples: Sequence[float], k: float = 1.5) -> list[float]:
    """Drop outliers outside ``[q1 - k*IQR, q3 + k*IQR]`` (Tukey's method).

    This is the filtering the paper applies to the processor-mode latency
    experiment (Figure 3) to remove host-scheduling noise.
    """
    if len(samples) < 4:
        return list(samples)
    q1 = percentile(samples, 25.0)
    q3 = percentile(samples, 75.0)
    iqr = q3 - q1
    lo = q1 - k * iqr
    hi = q3 + k * iqr
    return [s for s in samples if lo <= s <= hi]


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean."""
    values = list(samples)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def stddev(samples: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((s - mu) ** 2 for s in samples) / len(samples))


def harmonic_mean(samples: Sequence[float]) -> float:
    """Harmonic mean, as used for throughput aggregation in Figure 13."""
    values = list(samples)
    if not values:
        raise ValueError("harmonic_mean() of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean() requires positive samples")
    return len(values) / sum(1.0 / v for v in values)


@dataclass(frozen=True)
class Summary:
    """Summary statistics for one measured distribution."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        """Summarize ``samples`` (must be non-empty)."""
        if not samples:
            raise ValueError("Summary.of() of empty sequence")
        return cls(
            count=len(samples),
            mean=mean(samples),
            std=stddev(samples),
            minimum=min(samples),
            maximum=max(samples),
            p50=percentile(samples, 50.0),
            p99=percentile(samples, 99.0),
        )
