"""AES-128 (FIPS-197), implemented from scratch.

This is the "deeply buried, heavily optimized function in a large
codebase" the paper isolates in Section 6.4 (OpenSSL's 128-bit AES block
cipher).  The implementation is a straightforward table-based FIPS-197
cipher -- correct output (validated against the FIPS-197 appendix
vectors in the tests), while *timing* comes from the simulated cost
model in :mod:`repro.apps.crypto.speed`.
"""

from __future__ import annotations

BLOCK_SIZE = 16
KEY_SIZE = 16
ROUNDS = 10


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the S-box from the multiplicative inverse in GF(2^8)
    followed by the affine transform (FIPS-197 Section 5.1.1)."""
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: bitwise matrix multiply + constant 0x63.
        result = 0
        for bit in range(8):
            parity = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= parity << bit
        sbox[value] = result
    inv_sbox = [0] * 256
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook; only small b used)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES128:
    """AES with a 128-bit key: key schedule + block encrypt/decrypt."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)}")
        self.round_keys = self._expand_key(key)

    # -- key schedule (FIPS-197 Section 5.2) ------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys.
        round_keys = []
        for round_index in range(ROUNDS + 1):
            rk: list[int] = []
            for w in words[4 * round_index : 4 * round_index + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- round primitives (state is a flat 16-byte column-major list) -----------
    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: list[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # state[r + 4c]: row r is rotated left by r.
        for row in range(1, 4):
            rotated = [state[row + 4 * ((col + row) % 4)] for col in range(4)]
            for col in range(4):
                state[row + 4 * col] = rotated[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            rotated = [state[row + 4 * ((col - row) % 4)] for col in range(4)]
            for col in range(4):
                state[row + 4 * col] = rotated[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            state[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
            state[4 * col + 1] = _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
            state[4 * col + 2] = _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
            state[4 * col + 3] = _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)

    # -- block operations ---------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self.round_keys[0])
        for round_index in range(1, ROUNDS):
            self._sub_bytes(state, SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self.round_keys[round_index])
        self._sub_bytes(state, SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self.round_keys[ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self.round_keys[ROUNDS])
        for round_index in range(ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, self.round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, self.round_keys[0])
        return bytes(state)
