"""The ``openssl speed``-style benchmark harness (Section 6.4).

Measures AES-128-CBC throughput at several chunk sizes, native vs.
virtine-isolated.  The paper reports that with snapshotting and a 16 KB
cipher chunk, the virtine version incurs a ~17x slowdown -- dominated by
the per-invocation snapshot copy of the ~21 KB OpenSSL virtine image
("virtine creation in this example is memory bound").

Cost model notes: the *output bytes* are computed by the real cipher in
:mod:`repro.apps.crypto.aes`; the *cycle* cost uses the calibrated
per-byte constant below (OpenSSL's AES-NI CBC path on the paper-era
hardware), because counting Python bytecodes would measure CPython, not
AES.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.crypto.aes import AES128
from repro.apps.crypto.modes import cbc_encrypt
from repro.hw.costs import COSTS
from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_seconds
from repro.wasp.guestenv import GuestEnv
from repro.wasp.hypervisor import Wasp
from repro.wasp.hypercall import Hypercall
from repro.wasp.policy import BitmaskPolicy, VirtineConfig

#: AES-128-CBC cost on the host: OpenSSL's AES-NI assembly path
#: (cycles/byte).  This is the "heavily optimized" baseline.
AES_CYCLES_PER_BYTE = 0.70

#: AES-128-CBC cost *inside the virtine image*: the statically-linked
#: portable C implementation (the minimal runtime environment has no
#: OPENSSL_cpuid dispatch, so the AES-NI path is not selected).
AES_CYCLES_PER_BYTE_GUEST = 4.0

#: The OpenSSL virtine image is "roughly 21KB" (Section 6.4): boot layer,
#: newlib, and the block-cipher slice of libcrypto.
OPENSSL_IMAGE_SIZE = 21 * 1024

#: Chunk sizes openssl speed sweeps (bytes).
SPEED_CHUNK_SIZES = (16, 64, 256, 1024, 8192, 16384)


class VirtineCipher:
    """AES-128-CBC whose block-cipher work runs in virtine context.

    One virtine is created per ``encrypt`` call (per cipher chunk), as in
    the paper's modified OpenSSL: "its 128-bit AES block cipher
    encryption is carried out in virtine context."
    """

    def __init__(self, wasp: Wasp, key: bytes, use_snapshot: bool = True) -> None:
        self.wasp = wasp
        self.key = key
        self.use_snapshot = use_snapshot
        self._aes = AES128(key)
        self.image = ImageBuilder().hosted(
            name="openssl-aes128",
            entry=self._entry,
            size=OPENSSL_IMAGE_SIZE,
            metadata={"cipher": "aes-128-cbc"},
        )
        self._policy_config = VirtineConfig.allowing(Hypercall.SNAPSHOT)

    def _entry(self, env: GuestEnv) -> bytes:
        import repro.lang.marshal as marshal_mod

        costs = env._wasp.costs
        if not env.from_snapshot:
            env.charge(costs.GUEST_LIBC_INIT)
            env.snapshot(payload={"key_schedule": "expanded"})
        iv, chunk = env.args
        # Copy-restore: the chunk is marshalled into the virtine's address
        # space, encrypted there, and the ciphertext marshalled back out.
        env.charge(costs.memcpy(len(chunk)))
        marshal_mod.marshal(env.memory, (iv, chunk), marshal_mod.ARG_AREA)
        guest_iv, guest_chunk = marshal_mod.unmarshal(env.memory, marshal_mod.ARG_AREA)
        # The actual cipher runs here, inside the isolated context, using
        # the portable C path (no AES-NI dispatch in the static image).
        ciphertext = cbc_encrypt(self.key, guest_iv, guest_chunk, self._aes.encrypt_block)
        env.charge(AES_CYCLES_PER_BYTE_GUEST * len(guest_chunk))
        env.charge(costs.memcpy(len(ciphertext)))
        marshal_mod.marshal(env.memory, ciphertext, marshal_mod.RET_AREA)
        return marshal_mod.unmarshal(env.memory, marshal_mod.RET_AREA)

    def encrypt(self, iv: bytes, chunk: bytes) -> bytes:
        """Encrypt one chunk in a fresh virtine."""
        result = self.wasp.launch(
            self.image,
            policy=BitmaskPolicy(self._policy_config),
            args=(iv, chunk),
            use_snapshot=self.use_snapshot,
        )
        return result.value


@dataclass
class SpeedRow:
    """One row of ``openssl speed`` output for one configuration."""

    label: str
    chunk_size: int
    bytes_per_second: float
    cycles_per_op: float


class SpeedBenchmark:
    """Runs the native-vs-virtine speed comparison."""

    def __init__(self, wasp: Wasp | None = None, key: bytes = b"\x2b" * 16) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        self.key = key

    def native_row(self, chunk_size: int, iterations: int = 20) -> SpeedRow:
        """Throughput of the in-process cipher (the baseline)."""
        clock = self.wasp.clock
        aes = AES128(self.key)
        iv = b"\x00" * 16
        chunk = bytes(chunk_size)
        start = clock.cycles
        for _ in range(iterations):
            cbc_encrypt(self.key, iv, chunk, aes.encrypt_block)
            clock.advance(AES_CYCLES_PER_BYTE * chunk_size + COSTS.FUNCTION_CALL)
        elapsed = clock.cycles - start
        return self._row("native", chunk_size, elapsed, iterations)

    def virtine_row(
        self, chunk_size: int, iterations: int = 20, use_snapshot: bool = True
    ) -> SpeedRow:
        """Throughput with each chunk encrypted in its own virtine."""
        cipher = VirtineCipher(self.wasp, self.key, use_snapshot=use_snapshot)
        iv = b"\x00" * 16
        chunk = bytes(chunk_size)
        cipher.encrypt(iv, chunk)  # warm: capture the snapshot
        start = self.wasp.clock.cycles
        for _ in range(iterations):
            cipher.encrypt(iv, chunk)
        elapsed = self.wasp.clock.cycles - start
        label = "virtine+snapshot" if use_snapshot else "virtine"
        return self._row(label, chunk_size, elapsed, iterations)

    @staticmethod
    def _row(label: str, chunk_size: int, elapsed_cycles: int, iterations: int) -> SpeedRow:
        seconds = cycles_to_seconds(elapsed_cycles)
        return SpeedRow(
            label=label,
            chunk_size=chunk_size,
            bytes_per_second=(chunk_size * iterations) / seconds if seconds else 0.0,
            cycles_per_op=elapsed_cycles / iterations,
        )

    def run(self, chunk_sizes: tuple[int, ...] = SPEED_CHUNK_SIZES) -> list[SpeedRow]:
        """The full sweep: native and virtine rows for every chunk size."""
        rows: list[SpeedRow] = []
        for size in chunk_sizes:
            rows.append(self.native_row(size))
            rows.append(self.virtine_row(size))
        return rows
