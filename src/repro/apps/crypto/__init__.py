"""The OpenSSL case study (Section 6.4): AES-128-CBC from scratch.

:mod:`repro.apps.crypto.aes` is a FIPS-197 implementation;
:mod:`repro.apps.crypto.modes` adds CBC with PKCS#7 padding;
:mod:`repro.apps.crypto.speed` is the ``openssl speed -evp aes-128-cbc``
analogue comparing native execution to virtine-isolated encryption.
"""

from repro.apps.crypto.aes import AES128
from repro.apps.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.apps.crypto.speed import SpeedBenchmark, VirtineCipher

__all__ = ["AES128", "cbc_encrypt", "cbc_decrypt", "SpeedBenchmark", "VirtineCipher"]
