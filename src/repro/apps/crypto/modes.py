"""CBC mode with PKCS#7 padding on top of :class:`AES128`.

``openssl speed -evp aes-128-cbc`` exercises the CBC path; the virtine
integration of Section 6.4 wraps the block cipher underneath it.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.crypto.aes import AES128, BLOCK_SIZE

BlockFn = Callable[[bytes], bytes]


class PaddingError(Exception):
    """Invalid PKCS#7 padding on decryption."""


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a whole number of blocks (always adds at least one byte)."""
    pad_len = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, validating it."""
    if not data or len(data) % BLOCK_SIZE != 0:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= BLOCK_SIZE:
        raise PaddingError(f"bad pad length {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad_len]


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(
    key: bytes, iv: bytes, plaintext: bytes, encrypt_block: BlockFn | None = None
) -> bytes:
    """AES-128-CBC encrypt (PKCS#7 padded).

    ``encrypt_block`` lets the caller substitute the block-cipher
    primitive -- this is the seam where Section 6.4 swaps in the
    virtine-isolated cipher without touching the mode layer.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be 16 bytes")
    if encrypt_block is None:
        encrypt_block = AES128(key).encrypt_block
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor_block(padded[offset : offset + BLOCK_SIZE], previous)
        previous = encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(
    key: bytes, iv: bytes, ciphertext: bytes, decrypt_block: BlockFn | None = None
) -> bytes:
    """AES-128-CBC decrypt (PKCS#7 unpadded)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be 16 bytes")
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    if decrypt_block is None:
        decrypt_block = AES128(key).decrypt_block
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        out.extend(_xor_block(decrypt_block(block), previous))
        previous = block
    return pkcs7_unpad(bytes(out))
