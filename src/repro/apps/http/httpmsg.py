"""Minimal HTTP/1.0 message handling (request parse, response build)."""

from __future__ import annotations

from dataclasses import dataclass, field


class HttpError(Exception):
    """A malformed HTTP message."""


@dataclass
class HttpRequest:
    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


def parse_request(raw: bytes) -> HttpRequest:
    """Parse a raw HTTP/1.0 or 1.1 request."""
    try:
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        method, path, version = lines[0].split(" ", 2)
    except (ValueError, IndexError) as error:
        raise HttpError(f"malformed request line: {raw[:64]!r}") from error
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, path=path, version=version, headers=headers, body=body)


def build_response(
    status: int = 200,
    reason: str = "OK",
    body: bytes = b"",
    content_type: str = "application/octet-stream",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialise an HTTP/1.0 response."""
    headers = {
        "Content-Length": str(len(body)),
        "Content-Type": content_type,
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = f"HTTP/1.0 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + body


def parse_response(raw: bytes) -> HttpResponse:
    """Parse a raw HTTP response (for the request generator)."""
    try:
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        _, status, reason = lines[0].split(" ", 2)
    except (ValueError, IndexError) as error:
        raise HttpError(f"malformed status line: {raw[:64]!r}") from error
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return HttpResponse(status=int(status), reason=reason, headers=headers, body=body)
