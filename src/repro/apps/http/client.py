"""A localhost request generator.

"Requests are generated from localhost using a custom request generator
(which always requests a single static file)" (Section 6.3).  The
generator connects over the loopback model, sends a GET, drives the
server's accept/serve loop (the simulation is cooperative), and reads
the response, timing the whole round trip on the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.http.httpmsg import HttpResponse, parse_response
from repro.apps.http.server import StaticHttpServer
from repro.host.kernel import HostKernel
from repro.stats import Summary, harmonic_mean
from repro.units import cycles_to_seconds, cycles_to_us


@dataclass
class RequestOutcome:
    """One request's end-to-end result."""

    response: HttpResponse
    latency_cycles: int


class RequestGenerator:
    """Drives a :class:`StaticHttpServer` with single-file GETs."""

    def __init__(self, kernel: HostKernel, server: StaticHttpServer, path: str = "/index.html") -> None:
        self.kernel = kernel
        self.server = server
        self.path = path

    def one_request(self) -> RequestOutcome:
        """Issue one GET and wait for the response."""
        clock = self.kernel.clock
        start = clock.cycles
        conn = self.kernel.sys_connect(self.server.port)
        request = f"GET {self.path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode("latin-1")
        self.kernel.sys_send(conn, request)
        # Cooperative scheduling: the server runs now.
        self.server.serve_one()
        raw = bytearray()
        while True:
            chunk = self.kernel.sys_recv(conn, 65536)
            if not chunk:
                break
            raw.extend(chunk)
            if not conn.pending():
                break
        self.kernel.sys_sock_close(conn)
        return RequestOutcome(
            response=parse_response(bytes(raw)),
            latency_cycles=clock.cycles - start,
        )

    def run(self, count: int) -> "LoadReport":
        """Issue ``count`` sequential requests and aggregate."""
        latencies: list[float] = []
        errors = 0
        start = self.kernel.clock.cycles
        for _ in range(count):
            outcome = self.one_request()
            latencies.append(float(outcome.latency_cycles))
            if outcome.response.status != 200:
                errors += 1
        elapsed = self.kernel.clock.cycles - start
        return LoadReport(latencies_cycles=latencies, elapsed_cycles=elapsed, errors=errors)


@dataclass
class LoadReport:
    """Aggregated latency/throughput for one load run."""

    latencies_cycles: list[float]
    elapsed_cycles: int
    errors: int

    @property
    def mean_latency_us(self) -> float:
        return cycles_to_us(sum(self.latencies_cycles) / len(self.latencies_cycles))

    @property
    def throughput_rps(self) -> float:
        """Overall requests/second over the run."""
        seconds = cycles_to_seconds(self.elapsed_cycles)
        return len(self.latencies_cycles) / seconds if seconds else 0.0

    @property
    def harmonic_mean_rps(self) -> float:
        """Harmonic mean of per-request rates (Figure 13's throughput)."""
        rates = [1.0 / cycles_to_seconds(lat) for lat in self.latencies_cycles if lat > 0]
        return harmonic_mean(rates)

    def latency_summary(self) -> Summary:
        return Summary.of(self.latencies_cycles)
