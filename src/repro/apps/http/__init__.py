"""HTTP case studies: the Figure 4 echo server and the Figure 13
static-content server (native vs. per-request virtines)."""

from repro.apps.http.httpmsg import HttpRequest, HttpResponse, build_response, parse_request
from repro.apps.http.server import EchoServer, StaticHttpServer
from repro.apps.http.client import RequestGenerator

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_request",
    "build_response",
    "EchoServer",
    "StaticHttpServer",
    "RequestGenerator",
]
