"""HTTP servers: the Figure 4 echo server and the Figure 13 static server.

Echo server (Section 4.2): "a simple HTTP echo server where each request
is handled in a new virtual context employing our minimal environment
... uses hypercall-based I/O to echo HTTP requests back to the sender."
It runs in protected mode without paging ("this example does not
actually require 64-bit mode") and records the paper's three milestones:
reaching main, the return from ``recv()``, and the completion of
``send()``.

Static server (Section 6.3): single-threaded, serves one file per
connection.  The virtine-per-connection variant performs exactly the
paper's seven host interactions: (1) ``recv`` the request, (2) ``stat``
the file, (3) ``open``, (4) ``read``, (5) ``send`` the response,
(6) ``close``, (7) ``exit``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.apps.http.httpmsg import HttpError, build_response, parse_request
from repro.host.filesystem import FsError, O_RDONLY
from repro.host.network import Listener, NetError, Socket
from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_seconds
from repro.wasp.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRejected,
    AdmissionTicket,
    BrownoutLevel,
    Deadline,
)
from repro.wasp.guestenv import GuestEnv
from repro.wasp.hypercall import Hypercall, HypercallError
from repro.wasp.hypervisor import Wasp
from repro.wasp.policy import BitmaskPolicy, VirtineConfig
from repro.wasp.pool import CleanMode
from repro.wasp.supervisor import BreakerOpen, Supervisor
from repro.wasp.virtine import VirtineCrash, VirtineResult, VirtineTimeout

#: Cycles to parse a request line + headers in guest/native code.
HTTP_PARSE_COST = 900
#: Cycles to format a response head.
HTTP_BUILD_COST = 500

# Milestone markers for the echo server (Figure 4).
MS_MAIN = 100
MS_RECV_DONE = 101
MS_SEND_DONE = 102

#: Guest handle under which the connection socket is granted.
CONN_HANDLE = 0


class EchoServer:
    """The Figure 4 echo server: one protected-mode virtine per request."""

    def __init__(self, wasp: Wasp, port: int = 8080) -> None:
        self.wasp = wasp
        self.port = port
        self.listener: Listener = wasp.kernel.sys_listen(port)
        self.image = ImageBuilder().hosted(
            name="echo-server",
            entry=self._entry,
            mode=Mode.PROT32,  # no paging: the echo handler never needs it
            metadata={"milestones": (MS_MAIN, MS_RECV_DONE, MS_SEND_DONE)},
        )

    @staticmethod
    def _policy() -> BitmaskPolicy:
        return BitmaskPolicy(VirtineConfig.allowing(Hypercall.RECV, Hypercall.SEND))

    def _entry(self, env: GuestEnv) -> None:
        env.milestone(MS_MAIN)
        request = env.hypercall(Hypercall.RECV, CONN_HANDLE, 4096)
        env.milestone(MS_RECV_DONE)
        env.charge_bytes(len(request))
        response = build_response(body=request, content_type="text/plain")
        env.charge(HTTP_BUILD_COST)
        env.hypercall(Hypercall.SEND, CONN_HANDLE, response)
        env.milestone(MS_SEND_DONE)

    def handle_one(self) -> VirtineResult:
        """Accept one pending connection and echo it from a virtine."""
        conn = self.wasp.kernel.sys_accept(self.listener)
        try:
            return self.wasp.launch(
                self.image,
                policy=self._policy(),
                resources={CONN_HANDLE: conn},
                use_snapshot=False,
            )
        finally:
            self.wasp.kernel.sys_sock_close(conn)


@dataclass
class ServedRequest:
    """Bookkeeping for one connection served by the static server."""

    path: str
    status: int
    cycles: int
    hypercalls: int


class StaticHttpServer:
    """Single-threaded static-content server (Figure 13).

    ``isolation`` selects the connection-handling strategy:

    * ``"native"``   -- handled in the server process,
    * ``"virtine"``  -- one virtine per connection, no snapshotting,
    * ``"snapshot"`` -- one virtine per connection with snapshotting.
    """

    ISOLATION_MODES = ("native", "virtine", "snapshot")

    def __init__(
        self,
        wasp: Wasp,
        port: int = 8000,
        isolation: str = "native",
        docroot: str = "/srv",
        supervisor: Supervisor | None = None,
        admission: AdmissionController | None = None,
        deadline_cycles: int | None = None,
    ) -> None:
        if isolation not in self.ISOLATION_MODES:
            raise ValueError(f"unknown isolation mode {isolation!r}")
        self.wasp = wasp
        self.kernel = wasp.kernel
        self.port = port
        self.isolation = isolation
        self.docroot = docroot.rstrip("/")
        #: Optional supervision: virtine crashes become 503 responses
        #: (with retries/breaker per the supervisor's policy) instead of
        #: propagating out of :meth:`serve_one` and killing the server.
        self.supervisor = supervisor
        #: Optional overload gate: shed connections are answered 429
        #: (rate-limited -- the client should back off) or 503 (the
        #: server is saturated), both with a Retry-After header, before
        #: any virtine work is provisioned for them.  Attach the
        #: controller here *or* on the supervisor, not both -- double
        #: gating would record every request twice.
        self.admission = admission
        #: Per-request cycle budget minted at accept time when admission
        #: is enabled (time on the backlog counts against it).
        self.deadline_cycles = deadline_cycles
        #: Connections answered 503 because the handler virtine could
        #: not be run to completion.
        self.unavailable = 0
        #: Connections shed with 429 (rate limit) / 503 (overload).
        self.rejected_429 = 0
        self.rejected_503 = 0
        self._last_request_id = 0
        self.listener: Listener = self.kernel.sys_listen(port)
        self.served: list[ServedRequest] = []
        self.image = ImageBuilder().hosted(
            name=f"http-conn-{isolation}",
            entry=self._entry,
            metadata={"hypercalls": 7},
        )

    def _policy(self) -> BitmaskPolicy:
        return BitmaskPolicy(
            VirtineConfig.allowing(
                Hypercall.RECV,
                Hypercall.STAT,
                Hypercall.OPEN,
                Hypercall.READ,
                Hypercall.SEND,
                Hypercall.CLOSE,
                Hypercall.SNAPSHOT,
            )
        )

    def _resolve(self, url_path: str) -> str:
        path = url_path.split("?", 1)[0]
        if not path.startswith("/"):
            path = "/" + path
        if path.endswith("/"):
            path += "index.html"
        return self.docroot + path

    # -- native handling -----------------------------------------------------
    def _handle_native(self, conn: Socket) -> ServedRequest:
        clock = self.kernel.clock
        start = clock.cycles
        raw = self.kernel.sys_recv(conn, 4096)
        clock.advance(HTTP_PARSE_COST)
        try:
            request = parse_request(raw)
            file_path = self._resolve(request.path)
            size = self.kernel.sys_stat(file_path).size
            fd = self.kernel.sys_open(file_path, O_RDONLY)
            body = self.kernel.sys_read(fd, size)
            clock.advance(HTTP_BUILD_COST)
            response = build_response(body=body, content_type="text/html")
            status = 200
            self.kernel.sys_send(conn, response)
            self.kernel.sys_close(fd)
        except (FsError, HttpError):
            clock.advance(HTTP_BUILD_COST)
            self.kernel.sys_send(conn, build_response(404, "Not Found", b"not found"))
            status = 404
        return ServedRequest(
            path=getattr(request, "path", "?") if "request" in locals() else "?",
            status=status,
            cycles=clock.cycles - start,
            hypercalls=0,
        )

    # -- virtine handling -----------------------------------------------------------
    def _entry(self, env: GuestEnv) -> int:
        """The annotated connection-handler: seven host interactions."""
        raw = env.hypercall(Hypercall.RECV, CONN_HANDLE, 4096)  # (1)
        env.charge(HTTP_PARSE_COST)
        request = parse_request(raw)
        file_path = self._resolve(request.path)
        try:
            size = env.hypercall(Hypercall.STAT, file_path)  # (2)
            fd = env.hypercall(Hypercall.OPEN, file_path, O_RDONLY)  # (3)
            body = env.hypercall(Hypercall.READ, fd, size)  # (4)
            env.charge(HTTP_BUILD_COST)
            response = build_response(body=body, content_type="text/html")
            env.hypercall(Hypercall.SEND, CONN_HANDLE, response)  # (5)
            env.hypercall(Hypercall.CLOSE, fd)  # (6)
            status = 200
        except HypercallError:
            env.charge(HTTP_BUILD_COST)
            env.hypercall(Hypercall.SEND, CONN_HANDLE, build_response(404, "Not Found", b"not found"))
            status = 404
        env.exit(status)  # (7)
        return status

    def _handle_virtine(self, conn: Socket, use_snapshot: bool,
                        deadline: Deadline | None = None) -> ServedRequest:
        launch_kwargs = dict(
            policy=self._policy(),
            handlers=None,
            resources={CONN_HANDLE: conn},
            allowed_paths=(self.docroot + "/",),
            use_snapshot=use_snapshot,
            clean=CleanMode.ASYNC,
            deadline=deadline,
        )
        if self.supervisor is None:
            start = self.kernel.clock.cycles
            try:
                result = self.wasp.launch(self.image, **launch_kwargs)
            except VirtineTimeout:
                # Cancelled at its deadline: record the overload outcome
                # and degrade, exactly like a supervised crash would.
                if self.admission is not None:
                    self.admission.record_timeout(
                        self.image.name, self.kernel.clock.cycles,
                        request_id=self._last_request_id,
                    )
                return self._serve_unavailable(conn, start)
        else:
            start = self.kernel.clock.cycles
            try:
                result = self.supervisor.launch(self.image, **launch_kwargs)
            except VirtineTimeout:
                if self.admission is not None:
                    # This server's gate admitted the request, so the
                    # supervisor (gate-less) did not record the timeout.
                    self.admission.record_timeout(
                        self.image.name, self.kernel.clock.cycles,
                        request_id=self._last_request_id,
                    )
                return self._serve_unavailable(conn, start)
            except (AdmissionRejected, BreakerOpen, VirtineCrash):
                return self._serve_unavailable(conn, start)
        return ServedRequest(
            path="?",
            status=result.exit_code,
            cycles=result.cycles,
            hypercalls=result.hypercall_count,
        )

    def _serve_unavailable(self, conn: Socket, start: int) -> ServedRequest:
        """Degrade gracefully: answer 503 instead of dropping the server.

        The crashed virtine is already quarantined and accounted; the
        client gets a well-formed response from the host side.  The send
        is best-effort -- the connection may be the thing that failed.
        """
        self.unavailable += 1
        self.kernel.clock.advance(HTTP_BUILD_COST)
        response = build_response(503, "Service Unavailable", b"try again later")
        try:
            self.kernel.sys_send(conn, response)
        except NetError:
            pass
        return ServedRequest(
            path="?",
            status=503,
            cycles=self.kernel.clock.cycles - start,
            hypercalls=0,
        )

    # -- overload plane -----------------------------------------------------------------
    def _retry_after_header(self, retry_after_cycles: float) -> dict:
        """Retry-After in whole seconds (floor 1; unknown horizon -> 60)."""
        if not math.isfinite(retry_after_cycles):
            return {"Retry-After": "60"}
        seconds = max(1, math.ceil(cycles_to_seconds(retry_after_cycles)))
        return {"Retry-After": str(seconds)}

    def _serve_shed(self, conn: Socket, ticket: AdmissionTicket,
                    start: int) -> ServedRequest:
        """Answer a shed connection without provisioning any virtine.

        Rate-limited clients get 429 (their fault: back off); everything
        else (queue full, dead-on-arrival deadline) gets 503 (our fault:
        the server is saturated).  Both carry Retry-After.
        """
        if ticket.decision is AdmissionDecision.SHED_RATE_LIMIT:
            status, reason = 429, "Too Many Requests"
            self.rejected_429 += 1
        else:
            status, reason = 503, "Service Unavailable"
            self.rejected_503 += 1
        self.kernel.clock.advance(HTTP_BUILD_COST)
        response = build_response(
            status, reason, b"overloaded, try again later",
            extra_headers=self._retry_after_header(ticket.retry_after),
        )
        try:
            self.kernel.sys_send(conn, response)
        except NetError:
            pass
        return ServedRequest(
            path="?",
            status=status,
            cycles=self.kernel.clock.cycles - start,
            hypercalls=0,
        )

    def brownout_level(self) -> BrownoutLevel:
        """The gate's current posture (NORMAL without a controller)."""
        if self.admission is None:
            return BrownoutLevel.NORMAL
        return self.admission.brownout_level(queue_depth=self.pending_connections())

    # -- serving loop -------------------------------------------------------------------
    def serve_one(self) -> ServedRequest:
        """Accept and fully serve one pending connection.

        With an admission controller attached, the accepted connection
        passes the overload gate first: the listener backlog is the
        bounded queue, and shed connections are answered 429/503 with
        Retry-After *before* any virtine is provisioned.  Admitted
        connections carry a request-scoped deadline into the launch.
        """
        conn = self.kernel.sys_accept(self.listener)
        try:
            deadline = None
            if self.admission is not None:
                now = self.kernel.clock.cycles
                if self.deadline_cycles is not None:
                    deadline = Deadline.after(now, self.deadline_cycles)
                ticket = self.admission.admit(
                    self.image.name, now,
                    deadline=deadline,
                    queue_depth=self.pending_connections(),
                )
                self._last_request_id = ticket.request_id
                if not ticket.admitted:
                    served = self._serve_shed(conn, ticket, now)
                    self.served.append(served)
                    return served
            if self.isolation == "native":
                served = self._handle_native(conn)
            else:
                served = self._handle_virtine(
                    conn, use_snapshot=self.isolation == "snapshot",
                    deadline=deadline,
                )
        finally:
            self.kernel.sys_sock_close(conn)
        self.served.append(served)
        return served

    def pending_connections(self) -> int:
        return len(self.listener.backlog)
