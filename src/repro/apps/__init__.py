"""Case-study applications (Section 6): HTTP serving, OpenSSL-style
crypto, a managed-language (JavaScript) runtime, and serverless
platforms."""
