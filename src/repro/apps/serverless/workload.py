"""The Locust-style workload generator.

"We produce a series of concurrent function requests (from multiple
clients) against both platforms ... This invocation pattern involves an
initial ramp-up period that leads to two bursts, which then ramp down"
(Section 7.1).  Arrivals are generated deterministically (seeded
exponential inter-arrivals within each phase) so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadPhase:
    """A constant-rate segment of the load pattern."""

    duration_s: float
    rate_rps: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if self.rate_rps < 0:
            raise ValueError("phase rate cannot be negative")


class BurstyWorkload:
    """Ramp-up, two bursts, ramp-down -- Figure 15's invocation pattern."""

    def __init__(self, phases: tuple[WorkloadPhase, ...], seed: int = 42) -> None:
        if not phases:
            raise ValueError("workload needs at least one phase")
        self.phases = phases
        self.seed = seed

    @classmethod
    def paper_pattern(cls, scale: float = 1.0, seed: int = 42) -> "BurstyWorkload":
        """The default Figure 15-style pattern.

        ``scale`` multiplies every phase's rate (for quick test runs).
        """
        return cls(
            phases=(
                WorkloadPhase(duration_s=5.0, rate_rps=20 * scale),   # ramp-up
                WorkloadPhase(duration_s=5.0, rate_rps=60 * scale),
                WorkloadPhase(duration_s=5.0, rate_rps=400 * scale),  # burst 1
                WorkloadPhase(duration_s=5.0, rate_rps=60 * scale),   # dip
                WorkloadPhase(duration_s=5.0, rate_rps=400 * scale),  # burst 2
                WorkloadPhase(duration_s=5.0, rate_rps=40 * scale),   # ramp-down
                WorkloadPhase(duration_s=5.0, rate_rps=10 * scale),
            ),
            seed=seed,
        )

    def arrivals(self) -> list[float]:
        """Absolute arrival times (seconds), sorted ascending."""
        rng = random.Random(self.seed)
        times: list[float] = []
        phase_start = 0.0
        for phase in self.phases:
            if phase.rate_rps > 0:
                t = phase_start
                while True:
                    t += rng.expovariate(phase.rate_rps)
                    if t >= phase_start + phase.duration_s:
                        break
                    times.append(t)
            phase_start += phase.duration_s
        return times

    @property
    def total_duration_s(self) -> float:
        return sum(phase.duration_s for phase in self.phases)
