"""The shared serverless scheduling simulator.

Both platforms (Vespid and the OpenWhisk-like baseline) schedule
arrivals onto a bounded pool of workers; what differs is the cost of
provisioning a worker cold, dispatching to a warm one, and executing the
function -- the numbers each concrete platform *measures from its own
execution stack* (Vespid launches real virtines to calibrate itself).

The simulation is a simple earliest-free-worker queueing model with a
keep-alive policy: a worker reused within ``keepalive_s`` of its last
completion is warm; otherwise it must be provisioned cold again.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.stats import percentile
from repro.wasp.hypervisor import Wasp
from repro.wasp.supervisor import (
    BreakerConfig,
    BreakerOpen,
    RetryPolicy,
    Supervisor,
)
from repro.wasp.virtine import VirtineCrash, VirtineResult


@dataclass
class InvocationRecord:
    """One function invocation's life cycle (times in seconds)."""

    arrival_s: float
    start_s: float
    finish_s: float
    cold: bool

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1000.0


class ServerlessPlatform:
    """Base platform: subclasses provide the three cost hooks."""

    name = "abstract"

    def __init__(self, max_workers: int = 16, keepalive_s: float = 60.0) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.keepalive_s = keepalive_s

    # -- cost hooks (seconds) ---------------------------------------------------
    def cold_start_s(self) -> float:
        """Provision a worker from nothing (includes first execution)."""
        raise NotImplementedError

    def warm_invoke_s(self) -> float:
        """Dispatch + execute on an existing warm worker."""
        raise NotImplementedError

    # -- simulation ------------------------------------------------------------------
    def run(self, arrivals: list[float]) -> list[InvocationRecord]:
        """Schedule ``arrivals`` and return per-invocation records."""
        # Worker state: (free_at, last_finish) heaps keyed by free time.
        workers: list[list[float]] = []  # [free_at, last_finish]
        records: list[InvocationRecord] = []
        for arrival in sorted(arrivals):
            candidate = None
            # Prefer an idle warm worker.
            for worker in workers:
                if worker[0] <= arrival and arrival - worker[1] <= self.keepalive_s:
                    if candidate is None or worker[1] > candidate[1]:
                        candidate = worker  # most recently used idles warmest
            if candidate is not None:
                start = arrival
                service = self.warm_invoke_s()
                cold = False
                worker = candidate
            elif len(workers) < self.max_workers:
                start = arrival
                service = self.cold_start_s()
                cold = True
                worker = [0.0, 0.0]
                workers.append(worker)
            else:
                # Queue on the earliest-free worker.
                worker = min(workers, key=lambda w: w[0])
                start = max(arrival, worker[0])
                if start - worker[1] <= self.keepalive_s:
                    service = self.warm_invoke_s()
                    cold = False
                else:
                    service = self.cold_start_s()
                    cold = True
            finish = start + service
            worker[0] = finish
            worker[1] = finish
            records.append(
                InvocationRecord(arrival_s=arrival, start_s=start, finish_s=finish, cold=cold)
            )
        return records


@dataclass
class PlatformReport:
    """Aggregated Figure 15-style results for one platform run."""

    platform: str
    records: list[InvocationRecord]
    bucket_s: float = 1.0

    @property
    def cold_count(self) -> int:
        return sum(1 for r in self.records if r.cold)

    def latency_percentile_ms(self, q: float) -> float:
        return percentile([r.latency_ms for r in self.records], q)

    def mean_latency_ms(self) -> float:
        latencies = [r.latency_ms for r in self.records]
        return sum(latencies) / len(latencies)

    def time_series(self) -> list[tuple[float, float, float, float]]:
        """Per-bucket rows: (time_s, p50_ms, p99_ms, achieved_rps)."""
        if not self.records:
            return []
        end = max(r.finish_s for r in self.records)
        rows: list[tuple[float, float, float, float]] = []
        bucket_start = 0.0
        while bucket_start < end:
            bucket_end = bucket_start + self.bucket_s
            in_bucket = [r for r in self.records if bucket_start <= r.arrival_s < bucket_end]
            completed = sum(1 for r in self.records if bucket_start <= r.finish_s < bucket_end)
            if in_bucket:
                lats = [r.latency_ms for r in in_bucket]
                rows.append(
                    (
                        bucket_start,
                        percentile(lats, 50.0),
                        percentile(lats, 99.0),
                        completed / self.bucket_s,
                    )
                )
            else:
                rows.append((bucket_start, 0.0, 0.0, completed / self.bucket_s))
            bucket_start = bucket_end
        return rows


# ---------------------------------------------------------------------------
# Supervised execution: graceful degradation under faults
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisedRequest:
    """How one client request was ultimately served."""

    request_id: int
    #: "primary" or "fallback" -- which Wasp node produced the result.
    served_by: str
    #: True if the primary failed (crash or open breaker) first.
    degraded: bool
    #: Simulated end-to-end cycles on the serving node's clock.
    cycles: int
    value: Any


@dataclass
class SupervisedReport:
    """Outcome of a supervised workload run."""

    requests: list[SupervisedRequest]
    #: Requests that no node could serve (exceptions surfaced to the
    #: client).  The robustness acceptance bar is zero.
    client_visible_failures: int

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.requests if r.degraded)

    @property
    def served(self) -> int:
        return len(self.requests)


class SupervisedPlatform:
    """A serverless front end that degrades gracefully under faults.

    Every request is a *real* virtine launch driven through a
    :class:`~repro.wasp.supervisor.Supervisor` on the primary node:
    transient crashes are retried there, deterministic ones trip the
    image's circuit breaker.  When the primary cannot serve (breaker
    open, retries exhausted), the request is re-routed to an optional
    fallback node -- a different Wasp whose host plane does not share
    the primary's failures -- so the client sees a slower answer, never
    an error.
    """

    def __init__(
        self,
        primary: Wasp,
        fallback: Wasp | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
    ) -> None:
        self.primary = Supervisor(primary, retry=retry, breaker=breaker)
        self.fallback = (
            Supervisor(fallback, retry=retry, breaker=breaker)
            if fallback is not None else None
        )
        #: Requests the primary could not serve.
        self.degraded_requests = 0
        #: Requests no node could serve.
        self.client_failures = 0

    def invoke(self, image: Any, args: Any = None, **launch_kwargs: Any) -> VirtineResult:
        """Serve one request; raises only when every route is exhausted."""
        try:
            return self.primary.launch(image, args=args, **launch_kwargs)
        except (BreakerOpen, VirtineCrash):
            if self.fallback is None:
                self.client_failures += 1
                raise
            self.degraded_requests += 1
            try:
                return self.fallback.launch(image, args=args, **launch_kwargs)
            except (BreakerOpen, VirtineCrash):
                self.client_failures += 1
                raise

    def run_workload(
        self, image: Any, request_args: list[Any], **launch_kwargs: Any
    ) -> SupervisedReport:
        """Serve a whole request stream, recording how each was routed."""
        requests: list[SupervisedRequest] = []
        failures = 0
        for request_id, args in enumerate(request_args):
            degraded_before = self.degraded_requests
            try:
                result = self.invoke(image, args=args, **launch_kwargs)
            except (BreakerOpen, VirtineCrash):
                failures += 1
                continue
            degraded = self.degraded_requests > degraded_before
            requests.append(SupervisedRequest(
                request_id=request_id,
                served_by="fallback" if degraded else "primary",
                degraded=degraded,
                cycles=result.cycles,
                value=result.value,
            ))
        return SupervisedReport(
            requests=requests, client_visible_failures=failures,
        )
