"""The shared serverless scheduling simulator.

Both platforms (Vespid and the OpenWhisk-like baseline) schedule
arrivals onto a bounded pool of workers; what differs is the cost of
provisioning a worker cold, dispatching to a warm one, and executing the
function -- the numbers each concrete platform *measures from its own
execution stack* (Vespid launches real virtines to calibrate itself).

The simulation is a simple earliest-free-worker queueing model with a
keep-alive policy: a worker reused within ``keepalive_s`` of its last
completion is warm; otherwise it must be provisioned cold again.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.stats import percentile
from repro.wasp.admission import (
    AdmissionController,
    AdmissionRejected,
    BrownoutLevel,
    Deadline,
)
from repro.wasp.hypervisor import Wasp
from repro.wasp.supervisor import (
    BreakerConfig,
    BreakerOpen,
    RetryPolicy,
    Supervisor,
)
from repro.wasp.virtine import VirtineCrash, VirtineResult


@dataclass
class InvocationRecord:
    """One function invocation's life cycle (times in seconds)."""

    arrival_s: float
    start_s: float
    finish_s: float
    cold: bool

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1000.0


class ServerlessPlatform:
    """Base platform: subclasses provide the three cost hooks."""

    name = "abstract"

    def __init__(
        self,
        max_workers: int = 16,
        keepalive_s: float = 60.0,
        admission: AdmissionController | None = None,
        deadline_s: float | None = None,
        cores: int | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if keepalive_s < 0:
            # A negative keep-alive would silently make every worker
            # cold (now - last_finish is always > keepalive).
            raise ValueError("keepalive_s cannot be negative")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if cores is not None and cores <= 0:
            raise ValueError("cores must be positive")
        self.max_workers = max_workers
        self.keepalive_s = keepalive_s
        #: Optional overload gate (seconds clock): arrivals pass it
        #: before any worker is considered, and waiting happens in its
        #: bounded queue instead of an unbounded earliest-free backlog.
        self.admission = admission
        #: Per-request latency budget (seconds from arrival, spanning
        #: queueing *and* execution) when admission is enabled.
        self.deadline_s = deadline_s
        #: Physical-core cap on *simultaneously executing* workers
        #: (Figure 9/10's x-axis): workers are software capacity, cores
        #: are hardware capacity.  ``None`` models unbounded parallelism
        #: (every worker has a core), the historical behaviour.
        self.cores = cores

    def _new_core_plan(self) -> list[float] | None:
        return [0.0] * self.cores if self.cores is not None else None

    @staticmethod
    def _core_start(core_free: list[float] | None, t: float) -> float:
        """Earliest a hardware core is available at-or-after ``t``."""
        if core_free is None:
            return t
        return max(t, min(core_free))

    @staticmethod
    def _occupy_core(core_free: list[float] | None, until: float) -> None:
        if core_free is None:
            return
        core_free[core_free.index(min(core_free))] = until

    # -- cost hooks (seconds) ---------------------------------------------------
    def cold_start_s(self) -> float:
        """Provision a worker from nothing (includes first execution)."""
        raise NotImplementedError

    def warm_invoke_s(self) -> float:
        """Dispatch + execute on an existing warm worker."""
        raise NotImplementedError

    # -- simulation ------------------------------------------------------------------
    def run(self, arrivals: list[float]) -> list[InvocationRecord]:
        """Schedule ``arrivals`` and return per-invocation records.

        With an admission controller attached the overload-protected
        scheduler runs instead (bounded queue, shedding, deadlines) and
        only *completed* invocations are returned; shed/cancelled
        requests are accounted on the controller.
        """
        if self.admission is not None:
            return self.run_with_admission(arrivals).records
        # Worker state: (free_at, last_finish) heaps keyed by free time.
        workers: list[list[float]] = []  # [free_at, last_finish]
        core_free = self._new_core_plan()
        records: list[InvocationRecord] = []
        for arrival in sorted(arrivals):
            candidate = None
            # Prefer an idle warm worker.
            for worker in workers:
                if worker[0] <= arrival and arrival - worker[1] <= self.keepalive_s:
                    if candidate is None or worker[1] > candidate[1]:
                        candidate = worker  # most recently used idles warmest
            if candidate is not None:
                worker = candidate
                start = self._core_start(core_free, arrival)
                # Waiting for a hardware core can outlast the keep-alive.
                if start - worker[1] <= self.keepalive_s:
                    service = self.warm_invoke_s()
                    cold = False
                else:
                    service = self.cold_start_s()
                    cold = True
            elif len(workers) < self.max_workers:
                start = self._core_start(core_free, arrival)
                service = self.cold_start_s()
                cold = True
                worker = [0.0, 0.0]
                workers.append(worker)
            else:
                # Queue on the earliest-free worker (and a free core).
                worker = min(workers, key=lambda w: w[0])
                start = self._core_start(core_free, max(arrival, worker[0]))
                if start - worker[1] <= self.keepalive_s:
                    service = self.warm_invoke_s()
                    cold = False
                else:
                    service = self.cold_start_s()
                    cold = True
            finish = start + service
            worker[0] = finish
            worker[1] = finish
            self._occupy_core(core_free, finish)
            records.append(
                InvocationRecord(arrival_s=arrival, start_s=start, finish_s=finish, cold=cold)
            )
        return records

    # -- overload-protected simulation -------------------------------------------
    def run_with_admission(self, arrivals: list[float]) -> "OverloadReport":
        """Schedule ``arrivals`` through the admission controller.

        Differences from the unprotected :meth:`run`:

        * every arrival passes the gate first (rate limit, dead-on-
          arrival deadline) -- shed arrivals never touch a worker;
        * when all workers are busy the request waits in the
          controller's *bounded* queue (the shed policy decides who is
          sacrificed on overflow) instead of an unbounded backlog;
        * a queued request whose deadline expires before a worker frees
          up is dropped unstarted (``EXPIRED_IN_QUEUE``), and a running
          request whose projected finish overruns is *cancelled at* its
          deadline (``TIMEOUT``) -- the worker is released at the
          deadline, not at the would-be completion.

        Deterministic: the same arrivals (and controller seed) replay
        the identical decision trace.
        """
        ctrl = self.admission
        if ctrl is None:
            raise ValueError("run_with_admission requires an admission controller")
        workers: list[list[float]] = []  # [free_at, last_finish]
        core_free = self._new_core_plan()
        records: list[InvocationRecord] = []

        def find_worker(now: float) -> tuple[list[float] | None, bool]:
            """An idle worker usable at ``now`` (warm preferred), or a
            new one if capacity allows; ``(None, False)`` means queue."""
            candidate = None
            for worker in workers:
                if worker[0] <= now and now - worker[1] <= self.keepalive_s:
                    if candidate is None or worker[1] > candidate[1]:
                        candidate = worker  # most recently used idles warmest
            if candidate is not None:
                return candidate, False
            if len(workers) < self.max_workers:
                worker = [0.0, 0.0]
                workers.append(worker)
                return worker, True
            for worker in workers:  # idle but stale: cold restart
                if worker[0] <= now:
                    return worker, True
            return None, False

        def execute(worker: list[float], cold: bool, arrival: float,
                    start: float, deadline: Deadline | None,
                    request_id: int) -> None:
            start = self._core_start(core_free, start)
            service = self.cold_start_s() if cold else self.warm_invoke_s()
            finish = start + service
            if deadline is not None and finish > deadline.expires_at:
                # Cancelled mid-run: the worker frees at the deadline
                # and the invocation never completes.
                cutoff = max(start, deadline.expires_at)
                worker[0] = cutoff
                worker[1] = cutoff
                self._occupy_core(core_free, cutoff)
                ctrl.record_timeout(self.name, cutoff, request_id=request_id)
                return
            worker[0] = finish
            worker[1] = finish
            self._occupy_core(core_free, finish)
            records.append(InvocationRecord(
                arrival_s=arrival, start_s=start, finish_s=finish, cold=cold,
            ))

        def drain(until: float | None) -> None:
            """Serve queued requests that can start by ``until``."""
            while len(ctrl.queue):
                now = min(worker[0] for worker in workers) if workers else 0.0
                if until is not None and now > until:
                    return
                entry = ctrl.pop_ready(now)
                if entry is None:
                    return  # everything left had expired
                start = max(now, entry.enqueued_at)
                worker, cold = find_worker(start)
                assert worker is not None  # some worker is free at `now`
                execute(worker, cold, entry.enqueued_at, start,
                        entry.deadline, entry.request_id)

        for arrival in sorted(arrivals):
            drain(until=arrival)
            deadline = (Deadline.after(arrival, self.deadline_s)
                        if self.deadline_s is not None else None)
            ticket = ctrl.admit(self.name, arrival, deadline=deadline)
            if not ticket.admitted:
                continue
            worker, cold = find_worker(arrival)
            if worker is not None:
                execute(worker, cold, arrival, arrival, deadline,
                        ticket.request_id)
            else:
                ctrl.enqueue(self.name, arrival,
                             request_id=ticket.request_id, deadline=deadline)
        drain(until=None)
        return OverloadReport(platform=self.name, records=records, admission=ctrl)


@dataclass
class PlatformReport:
    """Aggregated Figure 15-style results for one platform run."""

    platform: str
    records: list[InvocationRecord]
    bucket_s: float = 1.0

    @property
    def cold_count(self) -> int:
        return sum(1 for r in self.records if r.cold)

    def latency_percentile_ms(self, q: float) -> float:
        return percentile([r.latency_ms for r in self.records], q)

    def mean_latency_ms(self) -> float:
        latencies = [r.latency_ms for r in self.records]
        return sum(latencies) / len(latencies)

    def time_series(self) -> list[tuple[float, float, float, float]]:
        """Per-bucket rows: (time_s, p50_ms, p99_ms, achieved_rps)."""
        if not self.records:
            return []
        end = max(r.finish_s for r in self.records)
        rows: list[tuple[float, float, float, float]] = []
        bucket_start = 0.0
        while bucket_start < end:
            bucket_end = bucket_start + self.bucket_s
            in_bucket = [r for r in self.records if bucket_start <= r.arrival_s < bucket_end]
            completed = sum(1 for r in self.records if bucket_start <= r.finish_s < bucket_end)
            if in_bucket:
                lats = [r.latency_ms for r in in_bucket]
                rows.append(
                    (
                        bucket_start,
                        percentile(lats, 50.0),
                        percentile(lats, 99.0),
                        completed / self.bucket_s,
                    )
                )
            else:
                rows.append((bucket_start, 0.0, 0.0, completed / self.bucket_s))
            bucket_start = bucket_end
        return rows


@dataclass
class OverloadReport:
    """Outcome of an overload-protected platform run.

    Completed invocations live in ``records``; everything the platform
    *chose not to complete* (sheds, evictions, queue expiries, deadline
    cancellations) is accounted on the attached controller, whose trace
    signature is the determinism check for replay.
    """

    platform: str
    records: list[InvocationRecord]
    admission: AdmissionController

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def admitted(self) -> int:
        return self.admission.admitted

    @property
    def shed(self) -> int:
        return self.admission.shed_total

    @property
    def timeouts(self) -> int:
        return self.admission.timeouts

    @property
    def queue_high_water(self) -> int:
        return self.admission.queue_depth_high_water

    def latency_percentile_ms(self, q: float) -> float:
        if not self.records:
            return 0.0
        return percentile([r.latency_ms for r in self.records], q)

    def signature(self) -> tuple:
        """The replayable shed/timeout decision sequence."""
        return self.admission.signature()


# ---------------------------------------------------------------------------
# Supervised execution: graceful degradation under faults
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisedRequest:
    """How one client request was ultimately served."""

    request_id: int
    #: "primary" or "fallback" -- which Wasp node produced the result.
    served_by: str
    #: True if the primary failed (crash or open breaker) first.
    degraded: bool
    #: Simulated end-to-end cycles on the serving node's clock.
    cycles: int
    value: Any


@dataclass
class SupervisedReport:
    """Outcome of a supervised workload run."""

    requests: list[SupervisedRequest]
    #: Requests that no node could serve (exceptions surfaced to the
    #: client).  The robustness acceptance bar is zero.
    client_visible_failures: int
    #: Requests shed by the admission gate (deliberate, not failures:
    #: the client got a clean back-off signal, not an error).
    shed_requests: int = 0

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.requests if r.degraded)

    @property
    def served(self) -> int:
        return len(self.requests)


class SupervisedPlatform:
    """A serverless front end that degrades gracefully under faults.

    Every request is a *real* virtine launch driven through a
    :class:`~repro.wasp.supervisor.Supervisor` on the primary node:
    transient crashes are retried there, deterministic ones trip the
    image's circuit breaker.  When the primary cannot serve (breaker
    open, retries exhausted), the request is re-routed to an optional
    fallback node -- a different Wasp whose host plane does not share
    the primary's failures -- so the client sees a slower answer, never
    an error.

    ``primary`` may be a list of Wasps -- one per simulated core (each
    with its own clock, e.g. from a
    :class:`~repro.cluster.VirtineCluster`) -- in which case requests
    round-robin across the cores; ``cores``, if given, must match.  The
    admission gate and request accounting are shared across every core.
    """

    def __init__(
        self,
        primary: Wasp | list[Wasp],
        fallback: Wasp | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        admission: AdmissionController | None = None,
        deadline_cycles: int | None = None,
        cores: int | None = None,
    ) -> None:
        primaries = list(primary) if isinstance(primary, (list, tuple)) else [primary]
        if not primaries:
            raise ValueError("need at least one primary Wasp")
        if cores is not None and cores != len(primaries):
            raise ValueError(
                f"cores={cores} but {len(primaries)} primary Wasp(s) given; "
                "each core needs its own Wasp (clocks are per-core)"
            )
        #: The admission gate guards the *primaries* only: the fallback
        #: is the pressure-relief valve, not another queue to fill.
        self.admission = admission
        #: One supervisor per core, sharing the gate and breaker config.
        self.primaries = [
            Supervisor(wasp, retry=retry, breaker=breaker, admission=admission)
            for wasp in primaries
        ]
        #: Back-compat alias: core 0's supervisor.
        self.primary = self.primaries[0]
        self.fallback = (
            Supervisor(fallback, retry=retry, breaker=breaker)
            if fallback is not None else None
        )
        #: Per-request cycle budget (minted on the serving node's clock).
        self.deadline_cycles = deadline_cycles
        #: Round-robin pointer for multi-core routing.
        self._next_core = 0
        #: Requests the primary could not serve.
        self.degraded_requests = 0
        #: Requests no node could serve.
        self.client_failures = 0
        #: Requests shed by the admission gate.
        self.shed_requests = 0

    @property
    def cores(self) -> int:
        return len(self.primaries)

    def _pick_primary(self) -> Supervisor:
        """Round-robin over the per-core supervisors."""
        supervisor = self.primaries[self._next_core]
        self._next_core = (self._next_core + 1) % len(self.primaries)
        return supervisor

    def _launch_on(self, supervisor: Supervisor, image: Any, args: Any,
                   launch_kwargs: dict) -> VirtineResult:
        """Launch on one node, minting its deadline on *that* node's
        clock (the two Wasps do not share a clock)."""
        if self.deadline_cycles is not None and "deadline" not in launch_kwargs:
            launch_kwargs = dict(
                launch_kwargs,
                deadline=Deadline.after(
                    supervisor.wasp.clock.cycles, self.deadline_cycles,
                ),
            )
        return supervisor.launch(image, args=args, **launch_kwargs)

    def invoke(self, image: Any, args: Any = None, **launch_kwargs: Any) -> VirtineResult:
        """Serve one request; raises only when every route is exhausted.

        Raises :class:`~repro.wasp.admission.AdmissionRejected` when the
        gate sheds the request -- deliberately *not* routed to the
        fallback (shedding exists to cut work, and a fallback stampede
        would just move the overload).  In DEGRADED posture the primary
        is bypassed entirely and requests fail over directly.
        """
        if (
            self.admission is not None
            and self.fallback is not None
            and self.admission.brownout_level() is BrownoutLevel.DEGRADED
        ):
            self.degraded_requests += 1
            try:
                return self._launch_on(self.fallback, image, args, launch_kwargs)
            except (BreakerOpen, VirtineCrash):
                self.client_failures += 1
                raise
        try:
            return self._launch_on(self._pick_primary(), image, args, launch_kwargs)
        except AdmissionRejected:
            self.shed_requests += 1
            raise
        except (BreakerOpen, VirtineCrash):
            if self.fallback is None:
                self.client_failures += 1
                raise
            self.degraded_requests += 1
            try:
                return self._launch_on(self.fallback, image, args, launch_kwargs)
            except (BreakerOpen, VirtineCrash):
                self.client_failures += 1
                raise

    def run_workload(
        self, image: Any, request_args: list[Any], **launch_kwargs: Any
    ) -> SupervisedReport:
        """Serve a whole request stream, recording how each was routed."""
        requests: list[SupervisedRequest] = []
        failures = 0
        shed = 0
        for request_id, args in enumerate(request_args):
            degraded_before = self.degraded_requests
            try:
                result = self.invoke(image, args=args, **launch_kwargs)
            except AdmissionRejected:
                # A clean back-off signal, not a failure: the client was
                # told to retry later before any work was provisioned.
                shed += 1
                continue
            except (BreakerOpen, VirtineCrash):
                failures += 1
                continue
            degraded = self.degraded_requests > degraded_before
            requests.append(SupervisedRequest(
                request_id=request_id,
                served_by="fallback" if degraded else "primary",
                degraded=degraded,
                cycles=result.cycles,
                value=result.value,
            ))
        return SupervisedReport(
            requests=requests, client_visible_failures=failures,
            shed_requests=shed,
        )
