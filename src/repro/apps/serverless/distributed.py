"""Multi-node Vespid: serverless virtines over a cluster (§7.1 + §7.3).

Combines the Vespid platform with virtine migration: function images
(and their snapshots) are replicated to worker nodes on first use, and
arrivals are load-balanced across nodes.  Because a virtine image
carries its whole runtime environment, adding a node to the serving set
is one migration -- the paper's location-transparency argument applied
to scale-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.js.virtine_js import DEFAULT_DATA_SIZE, JsVirtineClient
from repro.apps.serverless.platform import InvocationRecord, ServerlessPlatform
from repro.units import cycles_to_seconds
from repro.wasp.migration import Cluster, MigrationLink


@dataclass(frozen=True)
class NodeShare:
    """How one node participates in a distributed run."""

    name: str
    workers: int


class DistributedVespid:
    """Vespid sharded over cluster nodes.

    Scheduling: arrivals are split across nodes proportionally to their
    worker counts (front-end round robin), then each node runs its share
    through the standard per-node scheduler.  Every node first receives
    the function image + snapshot over the cluster link.
    """

    name = "vespid-distributed"

    def __init__(
        self,
        shares: list[NodeShare],
        link: MigrationLink | None = None,
        keepalive_s: float = 60.0,
        payload_size: int = DEFAULT_DATA_SIZE,
    ) -> None:
        if not shares:
            raise ValueError("need at least one node")
        self.cluster = Cluster(link=link)
        self.shares = list(shares)
        self.keepalive_s = keepalive_s

        # The "registry" node holds the registered function + snapshot.
        registry = self.cluster.add_node("registry", capabilities={"cpu"})
        self._client = JsVirtineClient(registry.wasp, use_snapshot=True)
        payload = bytes(i & 0xFF for i in range(payload_size))
        cold = self._client.run(payload)   # capture the snapshot
        warm = self._client.run(payload)
        self._cold_s = cycles_to_seconds(cold.cycles)
        self._warm_s = cycles_to_seconds(warm.cycles)

        self._nodes = []
        for share in shares:
            node = self.cluster.add_node(share.name, capabilities={"cpu"})
            # Ship the image + snapshot to the worker node up front.
            self.cluster.migrate(self._client.image, registry, node)
            self._nodes.append((node, share.workers))

    @property
    def deploy_bytes(self) -> int:
        """Bytes shipped per node at deployment (image + snapshot)."""
        snapshot = self.cluster.node("registry").wasp.snapshots.get(self._client.image.name)
        extra = snapshot.copy_size if snapshot is not None else 0
        return self._client.image.size + extra

    def run(self, arrivals: list[float]) -> list[InvocationRecord]:
        """Distribute arrivals round-robin (weighted) and merge records."""
        total_workers = sum(workers for _, workers in self._nodes)
        buckets: list[list[float]] = [[] for _ in self._nodes]
        weights = [workers / total_workers for _, workers in self._nodes]
        credit = [0.0] * len(self._nodes)
        for arrival in sorted(arrivals):
            for index, weight in enumerate(weights):
                credit[index] += weight
            target = max(range(len(self._nodes)), key=lambda i: credit[i])
            credit[target] -= 1.0
            buckets[target].append(arrival)

        records: list[InvocationRecord] = []
        for (node, workers), share_arrivals in zip(self._nodes, buckets):
            platform = _NodeVespid(
                cold_s=self._cold_s, warm_s=self._warm_s,
                max_workers=workers, keepalive_s=self.keepalive_s,
            )
            records.extend(platform.run(share_arrivals))
        records.sort(key=lambda r: r.arrival_s)
        return records


class _NodeVespid(ServerlessPlatform):
    """One node's share of the distributed platform."""

    name = "vespid-node"

    def __init__(self, cold_s: float, warm_s: float, **kwargs) -> None:
        super().__init__(**kwargs)
        self._cold_s = cold_s
        self._warm_s = warm_s

    def cold_start_s(self) -> float:
        return self._cold_s

    def warm_invoke_s(self) -> float:
        return self._warm_s
