"""The OpenWhisk-like container baseline (Figure 15's comparator).

"vanilla OpenWhisk (which uses V8 via Node.js)": each worker is a
container running a Node.js action runtime.  Cold starts pay container
creation plus Node/V8 runtime initialisation; warm invocations pay an
IPC dispatch plus the (fast, JIT-compiled) function execution.  As the
paper notes, this baseline does *not* employ container reuse
optimisations from the literature (SOCK/SEUSS/Catalyzer), matching the
vanilla deployment measured in Figure 15.
"""

from __future__ import annotations

from repro.apps.serverless.platform import ServerlessPlatform
from repro.host.kernel import HostKernel
from repro.host.process import ContainerRuntime
from repro.units import cycles_to_seconds, us_to_cycles
from repro.wasp.admission import AdmissionController

#: Node.js + V8 initialisation inside a fresh container.
NODE_V8_INIT_CYCLES = us_to_cycles(180_000.0)  # ~180 ms

#: Executing the base64 action on V8 (JIT-compiled: much faster than the
#: Duktape-analog interpreter).
V8_EXEC_CYCLES = us_to_cycles(95.0)

#: The OpenWhisk control path per invocation: nginx -> controller ->
#: Kafka -> invoker -> docker exec bridge.  Vanilla OpenWhisk spends
#: ~10-20 ms here even on warm invocations.
CONTROL_PATH_CYCLES = us_to_cycles(14_000.0)


class OpenWhiskLikePlatform(ServerlessPlatform):
    """Container-per-worker serverless platform."""

    name = "openwhisk"

    def __init__(
        self,
        kernel: HostKernel | None = None,
        max_workers: int = 16,
        keepalive_s: float = 60.0,
        admission: AdmissionController | None = None,
        deadline_s: float | None = None,
        cores: int | None = None,
    ) -> None:
        super().__init__(max_workers=max_workers, keepalive_s=keepalive_s,
                         admission=admission, deadline_s=deadline_s,
                         cores=cores)
        self.kernel = kernel if kernel is not None else HostKernel()
        self.containers = ContainerRuntime(self.kernel)
        # Calibrate by exercising the container runtime once each way.
        cold_cycles = (
            self.containers.cold_create()
            + NODE_V8_INIT_CYCLES
            + CONTROL_PATH_CYCLES
            + V8_EXEC_CYCLES
        )
        warm_cycles = self.containers.warm_invoke() + CONTROL_PATH_CYCLES + V8_EXEC_CYCLES
        self._cold_s = cycles_to_seconds(cold_cycles)
        self._warm_s = cycles_to_seconds(warm_cycles)

    def cold_start_s(self) -> float:
        return self._cold_s

    def warm_invoke_s(self) -> float:
        return self._warm_s
