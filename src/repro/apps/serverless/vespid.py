"""Vespid: the virtine-based serverless platform (Section 7.1).

"Users register JavaScript functions via a web application ... These
requests are handled by a concurrent server which runs each serverless
function in a distinct virtine (rather than a container) by leveraging
the Wasp runtime API."

Vespid calibrates itself by *measuring its own stack*: at construction
it runs the registered function once cold (full boot + engine init +
snapshot capture) and once warm (snapshot restore) through the real
Wasp/JS machinery, and uses those simulated-cycle latencies as the
scheduling costs.  The platform therefore inherits every optimisation in
the stack (pooling, snapshotting) rather than assuming numbers.
"""

from __future__ import annotations

from repro.apps.js.virtine_js import DEFAULT_DATA_SIZE, JsVirtineClient
from repro.apps.serverless.platform import ServerlessPlatform
from repro.units import cycles_to_seconds
from repro.wasp.admission import AdmissionController
from repro.wasp.hypervisor import Wasp


class VespidPlatform(ServerlessPlatform):
    """Virtine-per-invocation serverless platform."""

    name = "vespid"

    def __init__(
        self,
        wasp: Wasp | None = None,
        max_workers: int = 16,
        keepalive_s: float = 60.0,
        payload_size: int = DEFAULT_DATA_SIZE,
        admission: AdmissionController | None = None,
        deadline_s: float | None = None,
        cores: int | None = None,
    ) -> None:
        super().__init__(max_workers=max_workers, keepalive_s=keepalive_s,
                         admission=admission, deadline_s=deadline_s,
                         cores=cores)
        self.wasp = wasp if wasp is not None else Wasp()
        self.client = JsVirtineClient(self.wasp, use_snapshot=True)
        payload = bytes(i & 0xFF for i in range(payload_size))
        # Calibrate from the real stack: cold (boot + engine init +
        # snapshot capture) then warm (snapshot restore).
        cold = self.client.run(payload)
        warm = self.client.run(payload)
        self._cold_s = cycles_to_seconds(cold.cycles)
        self._warm_s = cycles_to_seconds(warm.cycles)
        self.last_encoded = warm.encoded

    def cold_start_s(self) -> float:
        return self._cold_s

    def warm_invoke_s(self) -> float:
        return self._warm_s
