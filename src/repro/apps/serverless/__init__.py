"""Serverless platforms (Section 7.1, Figure 15).

* :mod:`repro.apps.serverless.workload`  -- the Locust-style bursty load
* :mod:`repro.apps.serverless.platform`  -- the shared scheduling simulator
* :mod:`repro.apps.serverless.vespid`    -- the virtine-based platform
* :mod:`repro.apps.serverless.openwhisk` -- the container-based baseline
"""

from repro.apps.serverless.openwhisk import OpenWhiskLikePlatform
from repro.apps.serverless.platform import InvocationRecord, PlatformReport, ServerlessPlatform
from repro.apps.serverless.vespid import VespidPlatform
from repro.apps.serverless.workload import BurstyWorkload, WorkloadPhase

__all__ = [
    "BurstyWorkload",
    "WorkloadPhase",
    "ServerlessPlatform",
    "InvocationRecord",
    "PlatformReport",
    "VespidPlatform",
    "OpenWhiskLikePlatform",
]
