"""AST node definitions for the JavaScript subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Node:
    """Base AST node."""

    __slots__ = ()


# -- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit(Node):
    value: float


@dataclass(frozen=True)
class StringLit(Node):
    value: str


@dataclass(frozen=True)
class BoolLit(Node):
    value: bool


@dataclass(frozen=True)
class NullLit(Node):
    pass


@dataclass(frozen=True)
class UndefinedLit(Node):
    pass


@dataclass(frozen=True)
class Identifier(Node):
    name: str


@dataclass(frozen=True)
class ThisExpr(Node):
    pass


@dataclass(frozen=True)
class ArrayLit(Node):
    elements: tuple[Node, ...]


@dataclass(frozen=True)
class ObjectLit(Node):
    entries: tuple[tuple[str, Node], ...]


@dataclass(frozen=True)
class Unary(Node):
    op: str
    operand: Node


@dataclass(frozen=True)
class Update(Node):
    """Prefix/postfix ++ and --."""

    op: str
    target: Node
    prefix: bool


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class Logical(Node):
    op: str  # && or ||
    left: Node
    right: Node


@dataclass(frozen=True)
class Conditional(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass(frozen=True)
class Assign(Node):
    op: str  # =, +=, -=, ...
    target: Node
    value: Node


@dataclass(frozen=True)
class Call(Node):
    callee: Node
    args: tuple[Node, ...]


@dataclass(frozen=True)
class New(Node):
    callee: Node
    args: tuple[Node, ...]


@dataclass(frozen=True)
class Member(Node):
    """``obj.name`` (computed=False) or ``obj[expr]`` (computed=True)."""

    obj: Node
    prop: Any  # str when not computed, Node when computed
    computed: bool


@dataclass(frozen=True)
class FunctionExpr(Node):
    name: str | None
    params: tuple[str, ...]
    body: tuple[Node, ...]


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Node


@dataclass(frozen=True)
class VarDecl(Node):
    kind: str  # var / let / const
    declarations: tuple[tuple[str, Node | None], ...]


@dataclass(frozen=True)
class FunctionDecl(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Node, ...]


@dataclass(frozen=True)
class Return(Node):
    value: Node | None


@dataclass(frozen=True)
class If(Node):
    test: Node
    consequent: Node
    alternate: Node | None


@dataclass(frozen=True)
class While(Node):
    test: Node
    body: Node


@dataclass(frozen=True)
class DoWhile(Node):
    body: Node
    test: Node


@dataclass(frozen=True)
class For(Node):
    init: Node | None
    test: Node | None
    update: Node | None
    body: Node


@dataclass(frozen=True)
class ForIn(Node):
    """``for (var k in obj) body`` -- iterates object keys / array indices."""

    var_name: str
    declares: bool
    obj: Node
    body: Node


@dataclass(frozen=True)
class Block(Node):
    statements: tuple[Node, ...]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class Throw(Node):
    value: Node


@dataclass(frozen=True)
class Try(Node):
    block: Block
    param: str | None
    handler: Block | None
    finalizer: Block | None


@dataclass(frozen=True)
class SwitchCase(Node):
    test: Node | None  # None for `default:`
    body: tuple[Node, ...]


@dataclass(frozen=True)
class Switch(Node):
    discriminant: Node
    cases: tuple[SwitchCase, ...]


@dataclass(frozen=True)
class Program(Node):
    body: tuple[Node, ...]
