"""The embeddable JavaScript engine (Duktape-analog API).

Mirrors the lifecycle the paper's baseline measures (Section 6.5):
"allocate a Duktape context, populate several native function bindings,
execute a function ..., and return the encoding to the caller after
tearing down (freeing) the JS engine."  Each lifecycle phase charges its
calibrated cost, so snapshotting (skip allocation) and no-teardown (skip
freeing) have real work to elide.

The engine is deep-copyable *except* for its charge callback and native
bindings -- exactly the state a memory snapshot could not meaningfully
capture (host-side function pointers must be re-bound after a restore,
as the virtine client does).
"""

from __future__ import annotations

import copy
import math
from typing import Any, Callable

from repro.apps.js.interpreter import (
    Interpreter,
    JsError,
    Scope,
    UNDEFINED,
    number_to_string,
)
from repro.apps.js.lexer import JsSyntaxError
from repro.apps.js.parser import parse, token_count
from repro.units import us_to_cycles

__all__ = ["Engine", "JsError", "JsSyntaxError", "UNDEFINED"]

#: Context allocation: heap arenas, the global object, built-in objects.
CTX_ALLOC_COST = us_to_cycles(70.0)
#: Populating the client's native function bindings.
BINDINGS_COST = us_to_cycles(28.0)
#: Tearing down (freeing) the engine: heap walk + free.
CTX_FREE_COST = us_to_cycles(150.0)
#: Parse cost per token (lexer + parser work).
PARSE_PER_TOKEN = 26


class EngineDestroyed(Exception):
    """Use of an engine after :meth:`Engine.destroy`."""


def _build_globals() -> Scope:
    """The default global object: Math, String, Number, console-lite."""
    scope = Scope()
    scope.declare("Math", {
        "floor": lambda x: float(math.floor(x)),
        "ceil": lambda x: float(math.ceil(x)),
        "abs": lambda x: abs(x),
        "min": lambda *a: min(a) if a else math.inf,
        "max": lambda *a: max(a) if a else -math.inf,
        "pow": lambda a, b: float(a) ** float(b),
        "sqrt": lambda x: math.sqrt(x),
        "round": lambda x: float(math.floor(x + 0.5)),
        "PI": math.pi,
        "E": math.e,
    })
    scope.declare("String", {
        "fromCharCode": lambda *codes: "".join(chr(int(c)) for c in codes),
    })
    scope.declare("Number", {
        "MAX_SAFE_INTEGER": float(2**53 - 1),
        "isInteger": lambda x: isinstance(x, float) and x == int(x),
    })
    scope.declare("Object", {
        "keys": lambda o: list(o.keys()) if isinstance(o, dict) else [],
    })
    scope.declare("Array", {
        "isArray": lambda v: isinstance(v, list),
    })
    scope.declare("JSON", {
        "stringify": _json_stringify,
    })
    scope.declare("parseInt", _parse_int)
    scope.declare("parseFloat", _parse_float)
    scope.declare("isNaN", lambda x: isinstance(x, float) and math.isnan(x))
    scope.declare("NaN", math.nan)
    scope.declare("Infinity", math.inf)
    return scope


def _json_stringify(value: Any, *_ignored: Any) -> Any:
    """A JSON.stringify subset (no replacer/indent arguments)."""
    from repro.apps.js.interpreter import UNDEFINED as _UNDEF

    def encode(v: Any) -> str | None:
        if v is None:
            return "null"
        if v is _UNDEF or callable(v):
            return None
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, float):
            if math.isnan(v) or math.isinf(v):
                return "null"
            return number_to_string(v)
        if isinstance(v, str):
            escaped = v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            return f'"{escaped}"'
        if isinstance(v, list):
            return "[" + ",".join(encode(item) or "null" for item in v) + "]"
        if isinstance(v, dict):
            parts = []
            for key, item in v.items():
                encoded = encode(item)
                if encoded is not None:
                    parts.append(f'"{key}":{encoded}')
            return "{" + ",".join(parts) + "}"
        return None

    result = encode(value)
    if result is None:
        from repro.apps.js.interpreter import UNDEFINED

        return UNDEFINED
    return result


def _parse_int(text: Any, radix: Any = 10.0) -> float:
    try:
        return float(int(str(text).strip(), int(radix)))
    except (ValueError, TypeError):
        return math.nan


def _parse_float(text: Any) -> float:
    try:
        return float(str(text).strip())
    except (ValueError, TypeError):
        return math.nan


class Engine:
    """One JavaScript heap/context (the ``duk_context`` analogue)."""

    def __init__(self, charge: Callable[[int], None] | None = None) -> None:
        self._charge_cb = charge
        self._charge(CTX_ALLOC_COST)
        self.globals = _build_globals()
        self.interp = Interpreter(self.globals, charge=self._charge)
        self.destroyed = False
        self.bindings_populated = False

    # -- cost plumbing ---------------------------------------------------------
    def _charge(self, cycles: int) -> None:
        if self._charge_cb is not None:
            self._charge_cb(cycles)

    def set_charge_callback(self, charge: Callable[[int], None] | None) -> None:
        """(Re)attach the cost sink -- required after a deep copy/restore."""
        self._charge_cb = charge
        self.interp.charge = self._charge if charge is not None else None

    def __deepcopy__(self, memo: dict) -> "Engine":
        """Deep-copy the JS heap but drop host-side callbacks/bindings.

        This is what makes an Engine snapshot-safe: the heap state
        travels with the snapshot; charge callbacks and native bindings
        must be re-attached by the restoring client.
        """
        clone = object.__new__(Engine)
        clone._charge_cb = None
        clone.destroyed = self.destroyed
        clone.bindings_populated = False
        placeholder = Scope()
        # Any closure reaching the original global scope must land on the
        # clone's global scope, so register the mapping before copying.
        memo[id(self.globals)] = placeholder
        stripped = {
            name: value
            for name, value in self.globals.vars.items()
            if not (callable(value) and getattr(value, "__is_native_binding__", False))
        }
        placeholder.vars = copy.deepcopy(stripped, memo)
        clone.globals = placeholder
        clone.interp = Interpreter(clone.globals, charge=None)
        return clone

    # -- lifecycle ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.destroyed:
            raise EngineDestroyed("engine used after destroy()")

    def bind(self, name: str, fn: Callable, charge_bindings: bool = False) -> None:
        """Register a native function binding on the global object."""
        self._check_alive()
        fn.__is_native_binding__ = True  # type: ignore[attr-defined]
        self.globals.declare(name, fn)
        if charge_bindings and not self.bindings_populated:
            self._charge(BINDINGS_COST)
            self.bindings_populated = True

    def eval(self, source: str) -> Any:
        """Parse and execute ``source``; returns the completion value."""
        self._check_alive()
        self._charge(PARSE_PER_TOKEN * token_count(source))
        program = parse(source)
        return self.interp.run_program(program)

    def call(self, name: str, *args: Any) -> Any:
        """Call a global JS function by name."""
        self._check_alive()
        fn = self.globals.lookup(name)
        return self.interp.call_function(fn, list(args))

    def destroy(self) -> None:
        """Tear down (free) the engine; further use raises."""
        self._check_alive()
        self._charge(CTX_FREE_COST)
        self.destroyed = True

    @staticmethod
    def to_js_string(value: Any) -> str:
        """Format a JS value the way the engine would print it."""
        if isinstance(value, float):
            return number_to_string(value)
        if value is UNDEFINED:
            return "undefined"
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)


