"""A from-scratch JavaScript engine (the Duktape analogue, Section 6.5).

Implements an ES5-flavoured subset sufficient for the paper's managed-
language case study: functions, closures, control flow, strings, arrays,
objects, and native function bindings.  The engine has an explicit,
Duktape-like lifecycle (context allocation, binding population, eval,
teardown) whose costs are what the virtine snapshot/no-teardown
optimisations elide.

Layers:

* :mod:`repro.apps.js.lexer`        -- tokeniser
* :mod:`repro.apps.js.parser`       -- Pratt parser producing an AST
* :mod:`repro.apps.js.interpreter`  -- tree-walking evaluator
* :mod:`repro.apps.js.engine`       -- the embeddable engine API
* :mod:`repro.apps.js.virtine_js`   -- the JS-in-a-virtine client
"""

from repro.apps.js.engine import Engine, JsError
from repro.apps.js.virtine_js import BASE64_JS, JsVirtineClient, NativeJsBaseline

__all__ = ["Engine", "JsError", "JsVirtineClient", "NativeJsBaseline", "BASE64_JS"]
