"""JavaScript-in-a-virtine: the managed-language case study (Section 6.5).

The workload: a JS function that base64-encodes a buffer.  The baseline
allocates an engine, populates native bindings, parses + executes the
function, and tears the engine down -- per request.  The virtine version
runs the same engine inside a virtine using exactly three hypercalls
(``snapshot()``, ``get_data()``, ``return_data()``) and layers on the
paper's optimisations:

* **snapshot** -- capture the engine right after context allocation +
  program parse; later invocations skip both,
* **no teardown (NT)** -- retain the engine (and its virtine) across
  invocations instead of freeing it, skipping ``destroy()``.

The co-designed security property: ``snapshot`` and ``get_data`` are
one-shot, so once the data is fetched "the only permitted hypercall
would terminate the virtine".
"""

from __future__ import annotations

import base64 as _pybase64
from dataclasses import dataclass
from typing import Any

from repro.apps.js.engine import BINDINGS_COST, Engine
from repro.runtime.image import ImageBuilder
from repro.units import us_to_cycles
from repro.wasp.guestenv import GuestEnv
from repro.wasp.hypercall import Hypercall, HypercallRequest
from repro.wasp.hypervisor import VirtineSession, Wasp
from repro.wasp.policy import BitmaskPolicy, OneShotPolicy, VirtineConfig

#: Duktape "compil[es] into a small (~578KB) image" (Section 7.2).
DUKTAPE_IMAGE_SIZE = 578 * 1024

#: Default payload size for the base64 workload.
DEFAULT_DATA_SIZE = 2048

#: Cycles per byte to surface the host buffer as a JS array (get_data's
#: guest-side conversion loop).
DATA_CONVERT_CYCLES_PER_BYTE = 14.0

#: The JavaScript program under test: plain ES5 base64.
BASE64_JS = """
var B64_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

function b64_chunk(b0, b1, b2, have) {
    var out = "";
    out += B64_ALPHABET.charAt((b0 >> 2) & 63);
    out += B64_ALPHABET.charAt(((b0 & 3) << 4) | ((b1 >> 4) & 15));
    if (have > 1) {
        out += B64_ALPHABET.charAt(((b1 & 15) << 2) | ((b2 >> 6) & 3));
    } else {
        out += "=";
    }
    if (have > 2) {
        out += B64_ALPHABET.charAt(b2 & 63);
    } else {
        out += "=";
    }
    return out;
}

function encode(data) {
    var pieces = [];
    var i;
    var n = data.length;
    for (i = 0; i + 2 < n; i += 3) {
        pieces.push(b64_chunk(data[i], data[i + 1], data[i + 2], 3));
    }
    var rem = n - i;
    if (rem === 1) {
        pieces.push(b64_chunk(data[i], 0, 0, 1));
    } else if (rem === 2) {
        pieces.push(b64_chunk(data[i], data[i + 1], 0, 2));
    }
    return pieces.join("");
}

function run_request() {
    var data = get_data();
    return_data(encode(data));
}
"""


def python_base64(data: bytes) -> str:
    """Reference encoding (for validating the JS engine's output)."""
    return _pybase64.b64encode(data).decode("ascii")


@dataclass
class JsRunResult:
    """One base64 request's outcome."""

    encoded: str
    cycles: int


class NativeJsBaseline:
    """The no-virtine baseline: full engine lifecycle per request."""

    def __init__(self, wasp: Wasp) -> None:
        self.wasp = wasp

    def run(self, data: bytes) -> JsRunResult:
        clock = self.wasp.clock
        start = clock.cycles
        out: dict[str, str] = {}

        engine = Engine(charge=lambda c: clock.advance(c))

        def get_data() -> list[float]:
            clock.advance(DATA_CONVERT_CYCLES_PER_BYTE * len(data))
            return [float(b) for b in data]

        def return_data(text: str) -> None:
            out["encoded"] = text

        engine.bind("get_data", get_data, charge_bindings=True)
        engine.bind("return_data", return_data)
        engine.eval(BASE64_JS)
        engine.call("run_request")
        engine.destroy()
        return JsRunResult(encoded=out["encoded"], cycles=clock.cycles - start)


class JsVirtineClient:
    """The virtine client embedding the JS engine (Figure 14's system).

    Configuration axes match the figure's bars:

    * ``use_snapshot`` -- skip boot + context allocation + parse,
    * ``no_teardown`` -- retain the engine across invocations (requires
      invoking through a session; see :meth:`run_many`).
    """

    def __init__(
        self,
        wasp: Wasp,
        use_snapshot: bool = True,
        no_teardown: bool = False,
    ) -> None:
        self.wasp = wasp
        self.use_snapshot = use_snapshot
        self.no_teardown = no_teardown
        suffix = f"snap={int(use_snapshot)}-nt={int(no_teardown)}"
        self.image = ImageBuilder().hosted(
            name=f"duktape-base64-{suffix}",
            entry=self._entry,
            size=DUKTAPE_IMAGE_SIZE,
            metadata={"engine": "duktape-analog"},
        )
        self._pending: dict[str, Any] = {}

    # -- hypercall handlers (the co-designed client side) -----------------------
    def _hc_get_data(self, request: HypercallRequest) -> bytes:
        return self._pending["data"]

    def _hc_return_data(self, request: HypercallRequest) -> int:
        payload = request.args[0]
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("return_data payload must be bytes")
        self._pending["encoded"] = bytes(payload).decode("ascii")
        return 0

    def _policy(self) -> OneShotPolicy:
        inner = BitmaskPolicy(
            VirtineConfig.allowing(
                Hypercall.SNAPSHOT, Hypercall.GET_DATA, Hypercall.RETURN_DATA
            )
        )
        return OneShotPolicy(inner, once=(Hypercall.SNAPSHOT, Hypercall.GET_DATA))

    def _handlers(self) -> dict:
        return {
            Hypercall.GET_DATA: self._hc_get_data,
            Hypercall.RETURN_DATA: self._hc_return_data,
        }

    # -- the guest side -------------------------------------------------------------
    def _entry(self, env: GuestEnv) -> None:
        engine: Engine | None = None
        if self.no_teardown:
            engine = env.persistent.get("engine")
        if engine is None and env.restored is not None:
            engine = env.restored["engine"]
        if engine is not None:
            engine.set_charge_callback(env.charge)
        else:
            engine = Engine(charge=env.charge)
            engine.eval(BASE64_JS)
            if self.use_snapshot:
                env.snapshot(payload={"engine": engine})

        # Native bindings are host-side pointers: re-populated every
        # invocation (they cannot travel in a snapshot).
        def get_data() -> list[float]:
            raw = env.hypercall(Hypercall.GET_DATA)
            env.charge(DATA_CONVERT_CYCLES_PER_BYTE * len(raw))
            return [float(b) for b in raw]

        def return_data(text: str) -> None:
            env.hypercall(Hypercall.RETURN_DATA, str(text).encode("ascii"))

        engine.bind("get_data", get_data, charge_bindings=True)
        engine.bind("return_data", return_data)
        engine.bindings_populated = False  # next invocation charges again

        engine.call("run_request")

        if self.no_teardown:
            engine.set_charge_callback(None)
            env.persistent["engine"] = engine
        else:
            engine.destroy()

    # -- invocation -----------------------------------------------------------------------
    def run(self, data: bytes) -> JsRunResult:
        """One request, one virtine (cleared afterwards)."""
        self._pending = {"data": data}
        result = self.wasp.launch(
            self.image,
            policy=self._policy(),
            handlers=self._handlers(),
            use_snapshot=self.use_snapshot,
        )
        return JsRunResult(encoded=self._pending["encoded"], cycles=result.cycles)

    def open_session(self) -> VirtineSession:
        """A retained-context session for the no-teardown configurations."""
        if not self.no_teardown:
            raise ValueError("sessions are only used with no_teardown=True")
        return self.wasp.session(
            self.image,
            policy=self._policy(),
            handlers=self._handlers(),
            use_snapshot=self.use_snapshot,
        )

    def run_in_session(self, session: VirtineSession, data: bytes) -> JsRunResult:
        """One request on a retained virtine (the NT configurations)."""
        self._pending = {"data": data}
        result = session.invoke()
        return JsRunResult(encoded=self._pending["encoded"], cycles=result.cycles)
