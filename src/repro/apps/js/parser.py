"""Pratt parser for the JavaScript subset."""

from __future__ import annotations

from repro.apps.js import ast_nodes as ast
from repro.apps.js.lexer import JsSyntaxError, Token, TokenType, tokenize

# Binding powers for binary operators (higher binds tighter).
_BINARY_BP = {
    "||": 4, "&&": 5,
    "|": 6, "^": 7, "&": 8,
    "==": 9, "!=": 9, "===": 9, "!==": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10, "in": 10,
    "<<": 11, ">>": 11, ">>>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`~ast_nodes.Program`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self.current
        if not token.is_punct(text):
            raise JsSyntaxError(f"expected {text!r}, got {token.value!r}", token.line, token.col)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self.current
        if not token.is_keyword(word):
            raise JsSyntaxError(f"expected {word!r}, got {token.value!r}", token.line, token.col)
        return self._advance()

    def _expect_ident(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENT:
            raise JsSyntaxError(f"expected identifier, got {token.value!r}", token.line, token.col)
        self._advance()
        return str(token.value)

    def _eat_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self._advance()
            return True
        return False

    def _eat_semicolon(self) -> None:
        # Permissive automatic-semicolon handling: a semicolon is consumed
        # if present; otherwise statement boundaries are inferred.
        self._eat_punct(";")

    # -- entry point ------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body: list[ast.Node] = []
        while self.current.type is not TokenType.EOF:
            body.append(self.parse_statement())
        return ast.Program(body=tuple(body))

    # -- statements ----------------------------------------------------------------
    def parse_statement(self) -> ast.Node:
        token = self.current
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self._advance()
            return ast.Block(statements=())
        if token.type is TokenType.KEYWORD:
            word = str(token.value)
            if word in ("var", "let", "const"):
                decl = self.parse_var_decl()
                self._eat_semicolon()
                return decl
            if word == "function":
                return self.parse_function_decl()
            if word == "return":
                self._advance()
                if self.current.is_punct(";") or self.current.is_punct("}") or self.current.type is TokenType.EOF:
                    self._eat_semicolon()
                    return ast.Return(value=None)
                value = self.parse_expression()
                self._eat_semicolon()
                return ast.Return(value=value)
            if word == "if":
                return self.parse_if()
            if word == "while":
                return self.parse_while()
            if word == "do":
                return self.parse_do_while()
            if word == "for":
                return self.parse_for()
            if word == "break":
                self._advance()
                self._eat_semicolon()
                return ast.Break()
            if word == "continue":
                self._advance()
                self._eat_semicolon()
                return ast.Continue()
            if word == "throw":
                self._advance()
                value = self.parse_expression()
                self._eat_semicolon()
                return ast.Throw(value=value)
            if word == "try":
                return self.parse_try()
            if word == "switch":
                return self.parse_switch()
        expr = self.parse_expression()
        self._eat_semicolon()
        return ast.ExprStmt(expr=expr)

    def parse_block(self) -> ast.Block:
        self._expect_punct("{")
        statements: list[ast.Node] = []
        while not self.current.is_punct("}"):
            if self.current.type is TokenType.EOF:
                raise JsSyntaxError("unterminated block", self.current.line, self.current.col)
            statements.append(self.parse_statement())
        self._expect_punct("}")
        return ast.Block(statements=tuple(statements))

    def parse_var_decl(self) -> ast.VarDecl:
        kind = str(self._advance().value)
        declarations: list[tuple[str, ast.Node | None]] = []
        while True:
            name = self._expect_ident()
            init: ast.Node | None = None
            if self._eat_punct("="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self._eat_punct(","):
                break
        return ast.VarDecl(kind=kind, declarations=tuple(declarations))

    def parse_function_decl(self) -> ast.FunctionDecl:
        self._expect_keyword("function")
        name = self._expect_ident()
        params, body = self._parse_function_rest()
        return ast.FunctionDecl(name=name, params=params, body=body)

    def _parse_function_rest(self) -> tuple[tuple[str, ...], tuple[ast.Node, ...]]:
        self._expect_punct("(")
        params: list[str] = []
        while not self.current.is_punct(")"):
            params.append(self._expect_ident())
            if not self._eat_punct(","):
                break
        self._expect_punct(")")
        block = self.parse_block()
        return tuple(params), block.statements

    def parse_if(self) -> ast.If:
        self._expect_keyword("if")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        consequent = self.parse_statement()
        alternate: ast.Node | None = None
        if self.current.is_keyword("else"):
            self._advance()
            alternate = self.parse_statement()
        return ast.If(test=test, consequent=consequent, alternate=alternate)

    def parse_while(self) -> ast.While:
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        return ast.While(test=test, body=self.parse_statement())

    def parse_do_while(self) -> ast.DoWhile:
        self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        self._eat_semicolon()
        return ast.DoWhile(body=body, test=test)

    def parse_try(self) -> ast.Try:
        self._expect_keyword("try")
        block = self.parse_block()
        param: str | None = None
        handler: ast.Block | None = None
        finalizer: ast.Block | None = None
        if self.current.is_keyword("catch"):
            self._advance()
            if self._eat_punct("("):
                param = self._expect_ident()
                self._expect_punct(")")
            handler = self.parse_block()
        if self.current.is_keyword("finally"):
            self._advance()
            finalizer = self.parse_block()
        if handler is None and finalizer is None:
            token = self.current
            raise JsSyntaxError("try without catch or finally", token.line, token.col)
        return ast.Try(block=block, param=param, handler=handler, finalizer=finalizer)

    def parse_switch(self) -> ast.Switch:
        self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[ast.SwitchCase] = []
        seen_default = False
        while not self.current.is_punct("}"):
            if self.current.is_keyword("case"):
                self._advance()
                test: ast.Node | None = self.parse_expression()
            elif self.current.is_keyword("default"):
                if seen_default:
                    token = self.current
                    raise JsSyntaxError("duplicate default clause", token.line, token.col)
                seen_default = True
                self._advance()
                test = None
            else:
                token = self.current
                raise JsSyntaxError("expected case or default", token.line, token.col)
            self._expect_punct(":")
            body: list[ast.Node] = []
            while not (
                self.current.is_keyword("case")
                or self.current.is_keyword("default")
                or self.current.is_punct("}")
            ):
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(test=test, body=tuple(body)))
        self._expect_punct("}")
        return ast.Switch(discriminant=discriminant, cases=tuple(cases))

    def parse_for(self) -> "ast.For | ast.ForIn":
        self._expect_keyword("for")
        self._expect_punct("(")
        # Disambiguate `for (x in obj)` / `for (var x in obj)` first.
        saved = self.pos
        declares = False
        if self.current.type is TokenType.KEYWORD and self.current.value in ("var", "let", "const"):
            self._advance()
            declares = True
        if self.current.type is TokenType.IDENT:
            name = str(self.current.value)
            self._advance()
            if self.current.is_keyword("in"):
                self._advance()
                obj = self.parse_expression()
                self._expect_punct(")")
                return ast.ForIn(var_name=name, declares=declares, obj=obj,
                                 body=self.parse_statement())
        self.pos = saved  # not a for-in: reparse as a classic for

        init: ast.Node | None = None
        if not self.current.is_punct(";"):
            if self.current.type is TokenType.KEYWORD and self.current.value in ("var", "let", "const"):
                init = self.parse_var_decl()
            else:
                init = ast.ExprStmt(expr=self.parse_expression())
        self._expect_punct(";")
        test: ast.Node | None = None
        if not self.current.is_punct(";"):
            test = self.parse_expression()
        self._expect_punct(";")
        update: ast.Node | None = None
        if not self.current.is_punct(")"):
            update = self.parse_expression()
        self._expect_punct(")")
        return ast.For(init=init, test=test, update=update, body=self.parse_statement())

    # -- expressions -------------------------------------------------------------------
    def parse_expression(self) -> ast.Node:
        expr = self.parse_assignment()
        while self._eat_punct(","):
            right = self.parse_assignment()
            expr = ast.Binary(op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.Node:
        left = self.parse_conditional()
        token = self.current
        if token.type is TokenType.PUNCT and token.value in _ASSIGN_OPS:
            if not isinstance(left, (ast.Identifier, ast.Member)):
                raise JsSyntaxError("invalid assignment target", token.line, token.col)
            self._advance()
            value = self.parse_assignment()
            return ast.Assign(op=str(token.value), target=left, value=value)
        return left

    def parse_conditional(self) -> ast.Node:
        test = self.parse_binary(0)
        if self._eat_punct("?"):
            consequent = self.parse_assignment()
            self._expect_punct(":")
            alternate = self.parse_assignment()
            return ast.Conditional(test=test, consequent=consequent, alternate=alternate)
        return test

    def parse_binary(self, min_bp: int) -> ast.Node:
        left = self.parse_unary()
        while True:
            token = self.current
            op = str(token.value)
            if token.is_keyword("in"):
                op = "in"
            elif token.type is not TokenType.PUNCT:
                break
            bp = _BINARY_BP.get(op)
            if bp is None or bp < min_bp:
                break
            self._advance()
            right = self.parse_binary(bp + 1)
            if op in ("&&", "||"):
                left = ast.Logical(op=op, left=left, right=right)
            else:
                left = ast.Binary(op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.PUNCT and token.value in ("!", "-", "+", "~"):
            self._advance()
            return ast.Unary(op=str(token.value), operand=self.parse_unary())
        if token.is_keyword("typeof"):
            self._advance()
            return ast.Unary(op="typeof", operand=self.parse_unary())
        if token.is_keyword("delete"):
            self._advance()
            operand = self.parse_unary()
            if not isinstance(operand, ast.Member):
                raise JsSyntaxError("delete requires a property reference",
                                    token.line, token.col)
            return ast.Unary(op="delete", operand=operand)
        if token.type is TokenType.PUNCT and token.value in ("++", "--"):
            self._advance()
            target = self.parse_unary()
            if not isinstance(target, (ast.Identifier, ast.Member)):
                raise JsSyntaxError("invalid update target", token.line, token.col)
            return ast.Update(op=str(token.value), target=target, prefix=True)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        expr = self.parse_call_member()
        token = self.current
        if token.type is TokenType.PUNCT and token.value in ("++", "--"):
            if not isinstance(expr, (ast.Identifier, ast.Member)):
                raise JsSyntaxError("invalid update target", token.line, token.col)
            self._advance()
            return ast.Update(op=str(token.value), target=expr, prefix=False)
        return expr

    def parse_call_member(self) -> ast.Node:
        if self.current.is_keyword("new"):
            self._advance()
            callee = self.parse_call_member()
            if isinstance(callee, ast.Call):
                return ast.New(callee=callee.callee, args=callee.args)
            return ast.New(callee=callee, args=())
        expr = self.parse_primary()
        while True:
            if self._eat_punct("."):
                name = self.current
                if name.type not in (TokenType.IDENT, TokenType.KEYWORD):
                    raise JsSyntaxError("expected property name", name.line, name.col)
                self._advance()
                expr = ast.Member(obj=expr, prop=str(name.value), computed=False)
            elif self.current.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.Member(obj=expr, prop=index, computed=True)
            elif self.current.is_punct("("):
                self._advance()
                args: list[ast.Node] = []
                while not self.current.is_punct(")"):
                    args.append(self.parse_assignment())
                    if not self._eat_punct(","):
                        break
                self._expect_punct(")")
                expr = ast.Call(callee=expr, args=tuple(args))
            else:
                return expr

    def parse_primary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLit(value=float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(value=str(token.value))
        if token.type is TokenType.IDENT:
            self._advance()
            return ast.Identifier(name=str(token.value))
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLit(value=True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(value=False)
        if token.is_keyword("null"):
            self._advance()
            return ast.NullLit()
        if token.is_keyword("undefined"):
            self._advance()
            return ast.UndefinedLit()
        if token.is_keyword("this"):
            self._advance()
            return ast.ThisExpr()
        if token.is_keyword("function"):
            self._advance()
            name: str | None = None
            if self.current.type is TokenType.IDENT:
                name = self._expect_ident()
            params, body = self._parse_function_rest()
            return ast.FunctionExpr(name=name, params=params, body=body)
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("["):
            self._advance()
            elements: list[ast.Node] = []
            while not self.current.is_punct("]"):
                elements.append(self.parse_assignment())
                if not self._eat_punct(","):
                    break
            self._expect_punct("]")
            return ast.ArrayLit(elements=tuple(elements))
        if token.is_punct("{"):
            self._advance()
            entries: list[tuple[str, ast.Node]] = []
            while not self.current.is_punct("}"):
                key_token = self.current
                if key_token.type in (TokenType.IDENT, TokenType.KEYWORD, TokenType.STRING):
                    key = str(key_token.value)
                elif key_token.type is TokenType.NUMBER:
                    key = _number_to_key(float(key_token.value))
                else:
                    raise JsSyntaxError("bad object key", key_token.line, key_token.col)
                self._advance()
                self._expect_punct(":")
                entries.append((key, self.parse_assignment()))
                if not self._eat_punct(","):
                    break
            self._expect_punct("}")
            return ast.ObjectLit(entries=tuple(entries))
        raise JsSyntaxError(f"unexpected token {token.value!r}", token.line, token.col)


def _number_to_key(value: float) -> str:
    return str(int(value)) if value == int(value) else str(value)


def parse(source: str) -> ast.Program:
    """Parse ``source`` into a program AST."""
    return Parser(source).parse_program()


def token_count(source: str) -> int:
    """Number of tokens in ``source`` (drives the parse cost model)."""
    return len(tokenize(source)) - 1  # exclude EOF
