"""Tokeniser for the JavaScript subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class JsSyntaxError(Exception):
    """A lexing or parsing error, with source position."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class TokenType(enum.Enum):
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "var", "let", "const", "function", "return", "if", "else", "while",
        "for", "do", "break", "continue", "true", "false", "null",
        "undefined", "typeof", "new", "this", "delete", "in",
        "throw", "try", "catch", "finally", "switch", "case", "default",
    }
)

# Longest-first so multi-char operators win.
PUNCTUATORS = (
    "===", "!==", ">>>", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "<<", ">>", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":", ";", ",",
    ".", "(", ")", "[", "]", "{", "}", "&", "|", "^", "~",
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "0": "\0", "'": "'", '"': '"', "\\": "\\", "/": "/",
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str | float
    line: int
    col: int

    def is_punct(self, text: str) -> bool:
        return self.type is TokenType.PUNCT and self.value == text

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(source: str) -> list[Token]:
    """Tokenise ``source`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < length and source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = source[pos]
        # Whitespace.
        if ch in " \t\r\n":
            advance(1)
            continue
        # Comments.
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            advance((end - pos) if end != -1 else (length - pos))
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise JsSyntaxError("unterminated block comment", line, col)
            advance(end + 2 - pos)
            continue
        # Numbers.
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            start = pos
            start_line, start_col = line, col
            if source.startswith(("0x", "0X"), pos):
                advance(2)
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    advance(1)
                value = float(int(source[start:pos], 16))
            else:
                while pos < length and (source[pos].isdigit() or source[pos] == "."):
                    advance(1)
                if pos < length and source[pos] in "eE":
                    advance(1)
                    if pos < length and source[pos] in "+-":
                        advance(1)
                    while pos < length and source[pos].isdigit():
                        advance(1)
                try:
                    value = float(source[start:pos])
                except ValueError:
                    raise JsSyntaxError(
                        f"bad number literal {source[start:pos]!r}", start_line, start_col
                    ) from None
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_col))
            continue
        # Strings.
        if ch in "'\"":
            quote = ch
            start_line, start_col = line, col
            advance(1)
            chars: list[str] = []
            while True:
                if pos >= length:
                    raise JsSyntaxError("unterminated string", start_line, start_col)
                current = source[pos]
                if current == quote:
                    advance(1)
                    break
                if current == "\\":
                    advance(1)
                    if pos >= length:
                        raise JsSyntaxError("bad escape at end of input", line, col)
                    escape = source[pos]
                    if escape == "u":
                        hex_digits = source[pos + 1 : pos + 5]
                        if len(hex_digits) != 4:
                            raise JsSyntaxError("bad \\u escape", line, col)
                        chars.append(chr(int(hex_digits, 16)))
                        advance(5)
                        continue
                    if escape == "x":
                        hex_digits = source[pos + 1 : pos + 3]
                        if len(hex_digits) != 2:
                            raise JsSyntaxError("bad \\x escape", line, col)
                        chars.append(chr(int(hex_digits, 16)))
                        advance(3)
                        continue
                    chars.append(_ESCAPES.get(escape, escape))
                    advance(1)
                    continue
                if current == "\n":
                    raise JsSyntaxError("newline in string literal", line, col)
                chars.append(current)
                advance(1)
            tokens.append(Token(TokenType.STRING, "".join(chars), start_line, start_col))
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch in "_$":
            start = pos
            start_line, start_col = line, col
            while pos < length and (source[pos].isalnum() or source[pos] in "_$"):
                advance(1)
            word = source[start:pos]
            token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, word, start_line, start_col))
            continue
        # Punctuators.
        for punct in PUNCTUATORS:
            if source.startswith(punct, pos):
                tokens.append(Token(TokenType.PUNCT, punct, line, col))
                advance(len(punct))
                break
        else:
            raise JsSyntaxError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
