"""Tree-walking evaluator for the JavaScript subset.

Values map onto Python as: number -> float, string -> str, boolean ->
bool, null -> None, undefined -> :data:`UNDEFINED`, array -> list,
object -> dict, functions -> :class:`JSFunction` / Python callables
(native bindings).

The evaluator accepts a ``charge`` callback invoked once per evaluated
node with a small cycle cost -- this is how JS execution time lands on
the simulated clock for both the native baseline and the virtine runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.apps.js import ast_nodes as ast


class JsError(Exception):
    """A JavaScript runtime error (TypeError, ReferenceError, ...)."""


class _Undefined:
    """The singleton ``undefined`` value."""

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False

    def __deepcopy__(self, memo: dict) -> "_Undefined":
        return self


UNDEFINED = _Undefined()

#: Cycles charged per evaluated AST node (calibrated so the Section 6.5
#: base64 workload executes in ~137 us, the paper's parse+execute floor).
JS_OP_COST = 6


class JsThrow(Exception):
    """A JavaScript ``throw`` in flight (carries the thrown JS value)."""

    def __init__(self, value: Any) -> None:
        super().__init__(_to_display(value) if not isinstance(value, str) else value)
        self.value = value


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Scope:
    """A lexical scope in the environment chain."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Scope | None" = None) -> None:
        self.vars: dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        raise JsError(f"ReferenceError: {name} is not defined")

    def assign(self, name: str, value: Any) -> None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.vars:
                scope.vars[name] = value
                return
            scope = scope.parent
        # Assignment to an undeclared name creates a global (sloppy mode).
        root: Scope = self
        while root.parent is not None:
            root = root.parent
        root.vars[name] = value

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value


@dataclass
class JSFunction:
    """A user-defined function with its closure."""

    name: str | None
    params: tuple[str, ...]
    body: tuple[ast.Node, ...]
    closure: Scope

    def __repr__(self) -> str:
        return f"function {self.name or '(anonymous)'}"


class Interpreter:
    """Evaluates an AST against a global scope."""

    def __init__(self, global_scope: Scope, charge: Callable[[int], None] | None = None) -> None:
        self.global_scope = global_scope
        self.charge = charge
        self.ops_evaluated = 0

    # -- helpers ------------------------------------------------------------
    def _tick(self) -> None:
        self.ops_evaluated += 1
        if self.charge is not None:
            self.charge(JS_OP_COST)

    # -- program / statements ---------------------------------------------------
    def run_program(self, program: ast.Program) -> Any:
        self._hoist(program.body, self.global_scope)
        result: Any = UNDEFINED
        for statement in program.body:
            result = self.exec_statement(statement, self.global_scope)
        return result

    def _hoist(self, body: tuple[ast.Node, ...], scope: Scope) -> None:
        """Function declarations are hoisted to the top of their scope."""
        for statement in body:
            if isinstance(statement, ast.FunctionDecl):
                scope.declare(
                    statement.name,
                    JSFunction(statement.name, statement.params, statement.body, scope),
                )

    def exec_statement(self, node: ast.Node, scope: Scope) -> Any:
        self._tick()
        if isinstance(node, ast.ExprStmt):
            return self.eval(node.expr, scope)
        if isinstance(node, ast.VarDecl):
            for name, init in node.declarations:
                value = self.eval(init, scope) if init is not None else UNDEFINED
                scope.declare(name, value)
            return UNDEFINED
        if isinstance(node, ast.FunctionDecl):
            # Already hoisted; re-declare for nested blocks executed late.
            scope.declare(node.name, JSFunction(node.name, node.params, node.body, scope))
            return UNDEFINED
        if isinstance(node, ast.Return):
            value = self.eval(node.value, scope) if node.value is not None else UNDEFINED
            raise _ReturnSignal(value)
        if isinstance(node, ast.If):
            if _truthy(self.eval(node.test, scope)):
                return self.exec_statement(node.consequent, scope)
            if node.alternate is not None:
                return self.exec_statement(node.alternate, scope)
            return UNDEFINED
        if isinstance(node, ast.While):
            while _truthy(self.eval(node.test, scope)):
                try:
                    self.exec_statement(node.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return UNDEFINED
        if isinstance(node, ast.DoWhile):
            while True:
                try:
                    self.exec_statement(node.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not _truthy(self.eval(node.test, scope)):
                    break
            return UNDEFINED
        if isinstance(node, ast.For):
            loop_scope = Scope(scope)
            if node.init is not None:
                # `var` is function-scoped in JS: declare in the enclosing
                # scope so the variable survives the loop.
                target = scope if (
                    isinstance(node.init, ast.VarDecl) and node.init.kind == "var"
                ) else loop_scope
                self.exec_statement(node.init, target)
            while node.test is None or _truthy(self.eval(node.test, loop_scope)):
                try:
                    self.exec_statement(node.body, loop_scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if node.update is not None:
                    self.eval(node.update, loop_scope)
            return UNDEFINED
        if isinstance(node, ast.ForIn):
            loop_scope = Scope(scope)
            target = self.eval(node.obj, loop_scope)
            if isinstance(target, dict):
                keys = list(target.keys())
            elif isinstance(target, list):
                keys = [number_to_string(float(i)) for i in range(len(target))]
            elif isinstance(target, str):
                keys = [number_to_string(float(i)) for i in range(len(target))]
            else:
                keys = []
            if node.declares:
                scope.declare(node.var_name, UNDEFINED)  # var-like scoping
            for key in keys:
                loop_scope.assign(node.var_name, key)
                try:
                    self.exec_statement(node.body, loop_scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return UNDEFINED
        if isinstance(node, ast.Block):
            block_scope = Scope(scope)
            self._hoist(node.statements, block_scope)
            result: Any = UNDEFINED
            for statement in node.statements:
                result = self.exec_statement(statement, block_scope)
            return result
        if isinstance(node, ast.Break):
            raise _BreakSignal()
        if isinstance(node, ast.Continue):
            raise _ContinueSignal()
        if isinstance(node, ast.Throw):
            raise JsThrow(self.eval(node.value, scope))
        if isinstance(node, ast.Try):
            return self._exec_try(node, scope)
        if isinstance(node, ast.Switch):
            return self._exec_switch(node, scope)
        # Expression used in statement position.
        return self.eval(node, scope)

    def _exec_try(self, node: ast.Try, scope: Scope) -> Any:
        result: Any = UNDEFINED
        try:
            try:
                result = self.exec_statement(node.block, scope)
            except (JsThrow, JsError) as error:
                if node.handler is None:
                    raise  # finally-only form: finalizer runs, then propagate
                catch_scope = Scope(scope)
                if node.param is not None:
                    thrown = error.value if isinstance(error, JsThrow) else str(error)
                    catch_scope.declare(node.param, thrown)
                result = self.exec_statement(node.handler, catch_scope)
        finally:
            if node.finalizer is not None:
                self.exec_statement(node.finalizer, Scope(scope))
        return result

    def _exec_switch(self, node: ast.Switch, scope: Scope) -> Any:
        discriminant = self.eval(node.discriminant, scope)
        switch_scope = Scope(scope)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if _strict_eq(discriminant, self.eval(case.test, switch_scope)):
                        matched = True
                if matched:
                    for statement in case.body:
                        self.exec_statement(statement, switch_scope)
            if not matched:
                # Fall through from `default:` onward.
                in_default = False
                for case in node.cases:
                    if case.test is None:
                        in_default = True
                    if in_default:
                        for statement in case.body:
                            self.exec_statement(statement, switch_scope)
        except _BreakSignal:
            pass
        return UNDEFINED

    # -- expressions ------------------------------------------------------------------
    def eval(self, node: ast.Node, scope: Scope) -> Any:
        self._tick()
        if isinstance(node, ast.NumberLit):
            return node.value
        if isinstance(node, ast.StringLit):
            return node.value
        if isinstance(node, ast.BoolLit):
            return node.value
        if isinstance(node, ast.NullLit):
            return None
        if isinstance(node, ast.UndefinedLit):
            return UNDEFINED
        if isinstance(node, ast.Identifier):
            return scope.lookup(node.name)
        if isinstance(node, ast.ThisExpr):
            try:
                return scope.lookup("this")
            except JsError:
                return UNDEFINED
        if isinstance(node, ast.ArrayLit):
            return [self.eval(e, scope) for e in node.elements]
        if isinstance(node, ast.ObjectLit):
            return {key: self.eval(value, scope) for key, value in node.entries}
        if isinstance(node, ast.FunctionExpr):
            return JSFunction(node.name, node.params, node.body, scope)
        if isinstance(node, ast.Unary):
            return self._unary(node, scope)
        if isinstance(node, ast.Update):
            return self._update(node, scope)
        if isinstance(node, ast.Binary):
            if node.op == ",":
                self.eval(node.left, scope)
                return self.eval(node.right, scope)
            return _binary(node.op, self.eval(node.left, scope), self.eval(node.right, scope))
        if isinstance(node, ast.Logical):
            left = self.eval(node.left, scope)
            if node.op == "&&":
                return self.eval(node.right, scope) if _truthy(left) else left
            return left if _truthy(left) else self.eval(node.right, scope)
        if isinstance(node, ast.Conditional):
            if _truthy(self.eval(node.test, scope)):
                return self.eval(node.consequent, scope)
            return self.eval(node.alternate, scope)
        if isinstance(node, ast.Assign):
            return self._assign(node, scope)
        if isinstance(node, ast.Call):
            return self._call(node, scope)
        if isinstance(node, ast.New):
            return self._new(node, scope)
        if isinstance(node, ast.Member):
            obj = self.eval(node.obj, scope)
            prop = self.eval(node.prop, scope) if node.computed else node.prop
            return self._get_member(obj, prop)
        raise JsError(f"cannot evaluate {type(node).__name__}")

    # -- operators ----------------------------------------------------------------------
    def _unary(self, node: ast.Unary, scope: Scope) -> Any:
        if node.op == "typeof":
            try:
                value = self.eval(node.operand, scope)
            except JsError:
                return "undefined"
            return _typeof(value)
        if node.op == "delete":
            member = node.operand
            obj = self.eval(member.obj, scope)
            prop = self.eval(member.prop, scope) if member.computed else member.prop
            if isinstance(prop, float):
                prop = int(prop)
            if isinstance(obj, dict):
                obj.pop(str(prop) if isinstance(prop, int) else prop, None)
                return True
            if isinstance(obj, list) and isinstance(prop, int):
                if 0 <= prop < len(obj):
                    obj[prop] = UNDEFINED  # JS leaves a hole, not a shift
                return True
            return True
        value = self.eval(node.operand, scope)
        if node.op == "!":
            return not _truthy(value)
        if node.op == "-":
            return -_to_number(value)
        if node.op == "+":
            return _to_number(value)
        if node.op == "~":
            return float(~_to_int32(value))
        raise JsError(f"bad unary operator {node.op}")

    def _update(self, node: ast.Update, scope: Scope) -> Any:
        old = _to_number(self._read_target(node.target, scope))
        new = old + 1 if node.op == "++" else old - 1
        self._write_target(node.target, new, scope)
        return new if node.prefix else old

    def _assign(self, node: ast.Assign, scope: Scope) -> Any:
        if node.op == "=":
            value = self.eval(node.value, scope)
        else:
            current = self._read_target(node.target, scope)
            operand = self.eval(node.value, scope)
            value = _binary(node.op[:-1], current, operand)
        self._write_target(node.target, value, scope)
        return value

    def _read_target(self, target: ast.Node, scope: Scope) -> Any:
        if isinstance(target, ast.Identifier):
            return scope.lookup(target.name)
        if isinstance(target, ast.Member):
            obj = self.eval(target.obj, scope)
            prop = self.eval(target.prop, scope) if target.computed else target.prop
            return self._get_member(obj, prop)
        raise JsError("invalid assignment target")

    def _write_target(self, target: ast.Node, value: Any, scope: Scope) -> None:
        if isinstance(target, ast.Identifier):
            scope.assign(target.name, value)
            return
        if isinstance(target, ast.Member):
            obj = self.eval(target.obj, scope)
            prop = self.eval(target.prop, scope) if target.computed else target.prop
            _set_member(obj, prop, value)
            return
        raise JsError("invalid assignment target")

    # -- calls --------------------------------------------------------------------------------
    def _call(self, node: ast.Call, scope: Scope) -> Any:
        this_value: Any = UNDEFINED
        if isinstance(node.callee, ast.Member):
            obj = self.eval(node.callee.obj, scope)
            prop = (
                self.eval(node.callee.prop, scope) if node.callee.computed else node.callee.prop
            )
            fn = self._get_member(obj, prop)
            this_value = obj
        else:
            fn = self.eval(node.callee, scope)
        args = [self.eval(arg, scope) for arg in node.args]
        return self.call_function(fn, args, this_value)

    def _new(self, node: ast.New, scope: Scope) -> Any:
        fn = self.eval(node.callee, scope)
        args = [self.eval(arg, scope) for arg in node.args]
        instance: dict[str, Any] = {}
        result = self.call_function(fn, args, instance)
        return result if isinstance(result, (dict, list)) else instance

    def call_function(self, fn: Any, args: list[Any], this_value: Any = UNDEFINED) -> Any:
        if isinstance(fn, JSFunction):
            call_scope = Scope(fn.closure)
            call_scope.declare("this", this_value)
            for index, param in enumerate(fn.params):
                call_scope.declare(param, args[index] if index < len(args) else UNDEFINED)
            call_scope.declare("arguments", list(args))
            self._hoist(fn.body, call_scope)
            try:
                for statement in fn.body:
                    self.exec_statement(statement, call_scope)
            except _ReturnSignal as signal:
                return signal.value
            return UNDEFINED
        if isinstance(fn, _BoundMethod):
            return fn(args)
        if callable(fn):
            return fn(*args)
        raise JsError(f"TypeError: {_to_display(fn)} is not a function")

    # -- member access ----------------------------------------------------------------------------
    def _get_member(self, obj: Any, prop: Any) -> Any:
        if isinstance(prop, float):
            prop = int(prop)
        if obj is None or obj is UNDEFINED:
            raise JsError(f"TypeError: cannot read property {prop!r} of {_to_display(obj)}")
        if isinstance(obj, str):
            return _string_member(obj, prop)
        if isinstance(obj, list):
            return _array_member(self, obj, prop)
        if isinstance(obj, dict):
            if isinstance(prop, int):
                prop = str(prop)
            return obj.get(prop, UNDEFINED)
        raise JsError(f"TypeError: cannot read property {prop!r} of {_to_display(obj)}")


# -- value semantics ----------------------------------------------------------


def _truthy(value: Any) -> bool:
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return True


def _to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return math.nan
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            return 0.0
        try:
            return float(int(stripped, 16)) if stripped.lower().startswith("0x") else float(stripped)
        except ValueError:
            return math.nan
    return math.nan


def _to_int32(value: Any) -> int:
    number = _to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    unsigned = int(number) & 0xFFFFFFFF
    return unsigned - (1 << 32) if unsigned & 0x80000000 else unsigned


def number_to_string(value: float) -> str:
    """JS-style number formatting (integers print without a decimal)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def _to_display(value: Any) -> str:
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return number_to_string(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return ",".join(_to_display(v) for v in value)
    if isinstance(value, dict):
        return "[object Object]"
    return str(value)


def _typeof(value: Any) -> str:
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, _BoundMethod)) or callable(value):
        return "function"
    return "object"


def _loose_eq(a: Any, b: Any) -> bool:
    if (a is None or a is UNDEFINED) and (b is None or b is UNDEFINED):
        return True
    if a is None or a is UNDEFINED or b is None or b is UNDEFINED:
        return False
    if isinstance(a, bool):
        a = 1.0 if a else 0.0
    if isinstance(b, bool):
        b = 1.0 if b else 0.0
    if isinstance(a, float) and isinstance(b, str):
        b = _to_number(b)
    if isinstance(a, str) and isinstance(b, float):
        a = _to_number(a)
    if isinstance(a, float) and isinstance(b, float):
        return a == b
    if type(a) is type(b):
        return a == b
    return a is b


def _strict_eq(a: Any, b: Any) -> bool:
    if a is UNDEFINED or b is UNDEFINED:
        return a is b
    if a is None or b is None:
        return a is b
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, dict)):
        return a is b
    return a == b


def _binary(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        if isinstance(left, str) or isinstance(right, str) or \
           isinstance(left, (list, dict)) or isinstance(right, (list, dict)):
            return _to_display(left) + _to_display(right)
        return _to_number(left) + _to_number(right)
    if op == "-":
        return _to_number(left) - _to_number(right)
    if op == "*":
        return _to_number(left) * _to_number(right)
    if op == "/":
        right_num = _to_number(right)
        left_num = _to_number(left)
        if right_num == 0.0:
            if left_num == 0.0 or math.isnan(left_num):
                return math.nan
            return math.inf if left_num > 0 else -math.inf
        return left_num / right_num
    if op == "%":
        right_num = _to_number(right)
        left_num = _to_number(left)
        if right_num == 0.0:
            return math.nan
        return math.fmod(left_num, right_num)
    if op in ("<", ">", "<=", ">="):
        if isinstance(left, str) and isinstance(right, str):
            pairs = {"<": left < right, ">": left > right,
                     "<=": left <= right, ">=": left >= right}
            return pairs[op]
        left_num, right_num = _to_number(left), _to_number(right)
        if math.isnan(left_num) or math.isnan(right_num):
            return False
        pairs = {"<": left_num < right_num, ">": left_num > right_num,
                 "<=": left_num <= right_num, ">=": left_num >= right_num}
        return pairs[op]
    if op == "==":
        return _loose_eq(left, right)
    if op == "!=":
        return not _loose_eq(left, right)
    if op == "===":
        return _strict_eq(left, right)
    if op == "!==":
        return not _strict_eq(left, right)
    if op == "&":
        return float(_to_int32(left) & _to_int32(right))
    if op == "|":
        return float(_to_int32(left) | _to_int32(right))
    if op == "^":
        return float(_to_int32(left) ^ _to_int32(right))
    if op == "<<":
        return float(_to_int32(_to_int32(left) << (_to_int32(right) & 31)))
    if op == ">>":
        return float(_to_int32(left) >> (_to_int32(right) & 31))
    if op == ">>>":
        return float((_to_int32(left) & 0xFFFFFFFF) >> (_to_int32(right) & 31))
    if op == "in":
        if isinstance(right, dict):
            return _to_display(left) in right
        if isinstance(right, list):
            index = _to_number(left)
            return 0 <= index < len(right)
        raise JsError("TypeError: 'in' on non-object")
    raise JsError(f"bad binary operator {op}")


# -- string/array members ---------------------------------------------------------


class _BoundMethod:
    """A builtin method bound to its receiver."""

    __slots__ = ("fn", "receiver")

    def __init__(self, fn: Callable, receiver: Any) -> None:
        self.fn = fn
        self.receiver = receiver

    def __call__(self, args: list[Any]) -> Any:
        return self.fn(self.receiver, args)


def _js_index(value: Any) -> int:
    return int(_to_number(value))


def _string_member(s: str, prop: Any) -> Any:
    index = _numeric_key(prop)
    if index is not None and prop != "length":
        return s[index] if 0 <= index < len(s) else UNDEFINED
    if prop == "length":
        return float(len(s))
    methods: dict[str, Callable[[str, list[Any]], Any]] = {
        "charAt": lambda recv, a: recv[_js_index(a[0])] if 0 <= _js_index(a[0]) < len(recv) else "",
        "charCodeAt": lambda recv, a: float(ord(recv[_js_index(a[0]) if a else 0]))
        if 0 <= (_js_index(a[0]) if a else 0) < len(recv)
        else math.nan,
        "indexOf": lambda recv, a: float(recv.find(_to_display(a[0]))),
        "lastIndexOf": lambda recv, a: float(recv.rfind(_to_display(a[0]))),
        "slice": lambda recv, a: _slice(recv, a),
        "substring": lambda recv, a: _substring(recv, a),
        "toUpperCase": lambda recv, a: recv.upper(),
        "toLowerCase": lambda recv, a: recv.lower(),
        "split": lambda recv, a: (list(recv) if not a or a[0] == "" else recv.split(_to_display(a[0]))),
        "trim": lambda recv, a: recv.strip(),
        "concat": lambda recv, a: recv + "".join(_to_display(x) for x in a),
        "repeat": lambda recv, a: recv * _js_index(a[0]),
        "startsWith": lambda recv, a: recv.startswith(_to_display(a[0])),
        "endsWith": lambda recv, a: recv.endswith(_to_display(a[0])),
        "replace": lambda recv, a: recv.replace(_to_display(a[0]), _to_display(a[1]), 1),
    }
    if prop in methods:
        return _BoundMethod(methods[prop], s)
    return UNDEFINED


def _slice(seq: Any, args: list[Any]) -> Any:
    start = _js_index(args[0]) if args else 0
    end = _js_index(args[1]) if len(args) > 1 else len(seq)
    return seq[start:end] if start >= 0 or end >= 0 else seq[start:end]


def _substring(s: str, args: list[Any]) -> str:
    start = max(0, _js_index(args[0])) if args else 0
    end = max(0, _js_index(args[1])) if len(args) > 1 else len(s)
    if start > end:
        start, end = end, start
    return s[start:end]


def _numeric_key(prop: Any) -> int | None:
    """JS array indexing accepts numeric strings ('0', '1', ...)."""
    if isinstance(prop, int):
        return prop
    if isinstance(prop, str) and prop.isdigit():
        return int(prop)
    return None


def _array_member(interp: Interpreter, arr: list, prop: Any) -> Any:
    index = _numeric_key(prop)
    if index is not None:
        return arr[index] if 0 <= index < len(arr) else UNDEFINED
    if prop == "length":
        return float(len(arr))
    def _push(recv: list, a: list[Any]) -> float:
        recv.extend(a)
        return float(len(recv))

    def _pop(recv: list, a: list[Any]) -> Any:
        return recv.pop() if recv else UNDEFINED

    def _map(recv: list, a: list[Any]) -> list:
        return [interp.call_function(a[0], [item, float(i), recv]) for i, item in enumerate(recv)]

    def _for_each(recv: list, a: list[Any]) -> Any:
        for i, item in enumerate(recv):
            interp.call_function(a[0], [item, float(i), recv])
        return UNDEFINED

    methods: dict[str, Callable[[list, list[Any]], Any]] = {
        "push": _push,
        "pop": _pop,
        "join": lambda recv, a: (_to_display(a[0]) if a else ",").join(
            "" if v is None or v is UNDEFINED else _to_display(v) for v in recv
        ),
        "indexOf": lambda recv, a: float(next((i for i, v in enumerate(recv) if _strict_eq(v, a[0])), -1)),
        "slice": lambda recv, a: _slice(recv, a),
        "concat": lambda recv, a: recv + [x for arg in a for x in (arg if isinstance(arg, list) else [arg])],
        "reverse": lambda recv, a: (recv.reverse(), recv)[1],
        "shift": lambda recv, a: recv.pop(0) if recv else UNDEFINED,
        "unshift": lambda recv, a: (recv.insert(0, a[0]), float(len(recv)))[1],
        "map": _map,
        "forEach": _for_each,
    }
    if prop in methods:
        return _BoundMethod(methods[prop], arr)
    return UNDEFINED


def _set_member(obj: Any, prop: Any, value: Any) -> None:
    if isinstance(prop, float):
        prop = int(prop)
    if isinstance(obj, list):
        index = _numeric_key(prop)
        if index is None:
            if prop == "length":
                new_len = _js_index(value)
                del obj[new_len:]
                obj.extend([UNDEFINED] * (new_len - len(obj)))
                return
            raise JsError(f"TypeError: cannot set {prop!r} on array")
        if index < 0:
            raise JsError("RangeError: negative array index")
        if index >= len(obj):
            obj.extend([UNDEFINED] * (index + 1 - len(obj)))
        obj[index] = value
        return
    if isinstance(obj, dict):
        if isinstance(prop, int):
            prop = str(prop)
        obj[prop] = value
        return
    raise JsError(f"TypeError: cannot set property on {_to_display(obj)}")
