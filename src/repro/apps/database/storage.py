"""Table storage for the mini database."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Supported column types and their Python representations.
COLUMN_TYPES = {
    "INT": int,
    "FLOAT": float,
    "TEXT": str,
    "BLOB": bytes,
    "BOOL": bool,
}


class StorageError(Exception):
    """Schema violations and catalog errors."""


@dataclass(frozen=True)
class Column:
    name: str
    type_name: str

    def __post_init__(self) -> None:
        if self.type_name not in COLUMN_TYPES:
            raise StorageError(f"unknown column type {self.type_name!r}")

    @property
    def python_type(self) -> type:
        return COLUMN_TYPES[self.type_name]

    def check(self, value: Any) -> Any:
        """Validate (and mildly coerce) one cell value."""
        if value is None:
            return None
        expected = self.python_type
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if expected is int and isinstance(value, bool):
            raise StorageError(f"column {self.name}: BOOL is not INT")
        if not isinstance(value, expected):
            raise StorageError(
                f"column {self.name}: expected {self.type_name}, "
                f"got {type(value).__name__}"
            )
        return value


@dataclass
class Table:
    """A heap of rows with a fixed schema."""

    name: str
    columns: tuple[Column, ...]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"table {self.name}: duplicate column names")

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise StorageError(f"table {self.name}: no column {name!r}")

    def insert(self, values: tuple) -> None:
        if len(values) != len(self.columns):
            raise StorageError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        checked = tuple(
            column.check(value) for column, value in zip(self.columns, values)
        )
        self.rows.append(checked)

    def scan(self) -> Iterator[tuple]:
        yield from self.rows

    def __len__(self) -> int:
        return len(self.rows)


class Catalog:
    """Named tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create(self, name: str, columns: list[Column]) -> Table:
        key = name.lower()
        if key in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(name=name, columns=tuple(columns))
        self._tables[key] = table
        return table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise StorageError(f"no such table: {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))
