"""User-defined functions in a database, isolated by virtines (§7.1).

"A similar model could be used to more strongly isolate UDFs from one
another in database systems. ... Because virtine address spaces are
disjoint, they could help with this limitation.  Furthermore, virtines
would allow functions in unsafe languages (e.g., C, C++) to be safely
used for UDFs."

The substrate is a small, from-scratch SQL engine
(:mod:`repro.apps.database.sql` + :mod:`repro.apps.database.storage`);
:mod:`repro.apps.database.udf` adds the UDF registry with two isolation
levels: ``trusted`` (in-process, the Postgres status quo) and
``virtine`` (one isolated micro-VM per invocation).
"""

from repro.apps.database.engine import Database, DatabaseError
from repro.apps.database.udf import UdfRegistry, UdfError

__all__ = ["Database", "DatabaseError", "UdfRegistry", "UdfError"]
