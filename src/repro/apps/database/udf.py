"""The UDF registry: trusted vs. virtine-isolated functions.

Postgres-style engines run UDFs "in the same address space" (Section
7.1); a buggy or malicious UDF can corrupt the engine.  Registering a
UDF here with ``isolation="virtine"`` runs every invocation in its own
micro-VM via the ``@virtine`` machinery (snapshotted after the first
call, so per-row overhead is the restore + marshalling cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.lang.decorator import VirtineFunction
from repro.wasp.hypervisor import Wasp
from repro.wasp.virtine import VirtineCrash


class UdfError(Exception):
    """Bad registration or a UDF failure during a query."""


@dataclass
class RegisteredUdf:
    """One registered function and how to run it."""

    name: str
    isolation: str
    runner: Callable


class UdfRegistry:
    """Named UDFs with per-function isolation levels."""

    ISOLATION_LEVELS = ("trusted", "virtine")

    def __init__(self, wasp: Wasp | None = None) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        self._udfs: dict[str, RegisteredUdf] = {}
        self.invocations: dict[str, int] = {}

    def register(self, name: str, fn: Callable, isolation: str = "virtine") -> None:
        """Register ``fn`` under ``name``.

        ``virtine`` isolation packages the function's call-graph slice
        into an image at registration time (surfacing packaging errors
        early, like the paper's compile-time pass).
        """
        key = name.lower()
        if key in self._udfs:
            raise UdfError(f"UDF {name!r} already registered")
        if isolation not in self.ISOLATION_LEVELS:
            raise UdfError(f"unknown isolation level {isolation!r}")
        if isolation == "virtine":
            virtine_fn = VirtineFunction(fn, wasp=self.wasp)
            virtine_fn.image  # force slicing/packaging now
            runner: Callable = virtine_fn
        else:
            runner = fn
        self._udfs[key] = RegisteredUdf(name=name, isolation=isolation, runner=runner)
        self.invocations[key] = 0

    def lookup(self, name: str) -> RegisteredUdf:
        try:
            return self._udfs[name.lower()]
        except KeyError:
            raise UdfError(f"no such function: {name!r}") from None

    def call(self, name: str, args: tuple) -> Any:
        """Invoke a UDF; virtine crashes surface as :class:`UdfError`.

        The crash aborts only the *query*, never the engine -- the
        paper's motivation for disjoint UDF address spaces.
        """
        udf = self.lookup(name)
        self.invocations[name.lower()] += 1
        try:
            return udf.runner(*args)
        except VirtineCrash as crash:
            raise UdfError(f"UDF {name!r} crashed in its virtine: {crash}") from crash

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._udfs))

    def isolation_of(self, name: str) -> str:
        return self.lookup(name).isolation
