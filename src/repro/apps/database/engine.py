"""The mini database engine: DDL, DML, and SELECT with UDFs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apps.database import sql
from repro.apps.database.storage import Catalog, Column, StorageError, Table
from repro.apps.database.udf import UdfError, UdfRegistry
from repro.hw.costs import COSTS
from repro.wasp.hypervisor import Wasp


class DatabaseError(Exception):
    """Query-level failures (schema, unknown names, UDF crashes)."""


#: Cycles charged per row visited by a scan (tuple fetch + slot checks).
ROW_SCAN_COST = 45
#: Cycles charged per expression evaluated over a row.
EXPR_EVAL_COST = 12

_BUILTIN_FUNCTIONS: dict[str, Callable] = {
    "upper": lambda s: s.upper(),
    "lower": lambda s: s.lower(),
    "length": lambda s: len(s),
    "abs": lambda n: abs(n),
}


@dataclass
class ResultSet:
    """Rows produced by a SELECT."""

    column_names: tuple[str, ...]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]


class Database:
    """A tiny single-user SQL engine with virtine-isolated UDFs."""

    def __init__(self, wasp: Wasp | None = None) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        self.catalog = Catalog()
        self.udfs = UdfRegistry(self.wasp)
        self.rows_scanned = 0

    # -- API ------------------------------------------------------------------
    def register_udf(self, name: str, fn: Callable, isolation: str = "virtine") -> None:
        """Register a UDF (see :class:`UdfRegistry`)."""
        try:
            self.udfs.register(name, fn, isolation=isolation)
        except UdfError as error:
            raise DatabaseError(str(error)) from error

    def execute(self, statement_sql: str) -> ResultSet | int:
        """Run one statement: SELECT -> :class:`ResultSet`, else rowcount."""
        try:
            statement = sql.parse(statement_sql)
        except sql.SqlError as error:
            raise DatabaseError(f"syntax error: {error}") from error
        try:
            if isinstance(statement, sql.CreateStmt):
                return self._create(statement)
            if isinstance(statement, sql.InsertStmt):
                return self._insert(statement)
            return self._select(statement)
        except (StorageError, UdfError) as error:
            raise DatabaseError(str(error)) from error

    # -- statements ------------------------------------------------------------------
    def _create(self, statement: sql.CreateStmt) -> int:
        columns = [Column(name, type_name) for name, type_name in statement.columns]
        self.catalog.create(statement.table, columns)
        return 0

    def _insert(self, statement: sql.InsertStmt) -> int:
        table = self.catalog.get(statement.table)
        for row_exprs in statement.rows:
            values = tuple(self._eval(expr, table=None, row=None) for expr in row_exprs)
            table.insert(values)
        return len(statement.rows)

    def _select(self, statement: sql.SelectStmt) -> ResultSet:
        table = self.catalog.get(statement.table)
        names = self._result_names(statement, table)
        out: list[tuple] = []
        for row in table.scan():
            self.rows_scanned += 1
            self.wasp.clock.advance(ROW_SCAN_COST)
            if statement.where is not None:
                if not _truthy(self._eval(statement.where, table, row)):
                    continue
            projected: list[Any] = []
            for item in statement.items:
                if item.star:
                    projected.extend(row)
                else:
                    projected.append(self._eval(item.expr, table, row))
            out.append(tuple(projected))
            if statement.limit is not None and len(out) >= statement.limit:
                break
        return ResultSet(column_names=names, rows=out)

    def _result_names(self, statement: sql.SelectStmt, table: Table) -> tuple[str, ...]:
        names: list[str] = []
        for item in statement.items:
            if item.star:
                names.extend(column.name for column in table.columns)
            elif item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, sql.ColRef):
                names.append(item.expr.name)
            elif isinstance(item.expr, sql.FuncCall):
                names.append(item.expr.name)
            else:
                names.append(f"col{len(names)}")
        return tuple(names)

    # -- expression evaluation ----------------------------------------------------------
    def _eval(self, expr: Any, table: Table | None, row: tuple | None) -> Any:
        self.wasp.clock.advance(EXPR_EVAL_COST)
        if isinstance(expr, sql.Lit):
            return expr.value
        if isinstance(expr, sql.ColRef):
            if table is None or row is None:
                raise DatabaseError(f"column {expr.name!r} used outside a query")
            return row[table.column_index(expr.name)]
        if isinstance(expr, sql.UnOp):
            value = self._eval(expr.operand, table, row)
            if expr.op == "-":
                return -value
            if expr.op == "NOT":
                return not _truthy(value)
        if isinstance(expr, sql.BinOp):
            return self._binop(expr, table, row)
        if isinstance(expr, sql.FuncCall):
            args = tuple(self._eval(a, table, row) for a in expr.args)
            builtin = _BUILTIN_FUNCTIONS.get(expr.name.lower())
            if builtin is not None:
                return builtin(*args)
            return self.udfs.call(expr.name, args)
        raise DatabaseError(f"cannot evaluate {expr!r}")

    def _binop(self, expr: sql.BinOp, table: Table | None, row: tuple | None) -> Any:
        if expr.op == "AND":
            return _truthy(self._eval(expr.left, table, row)) and _truthy(
                self._eval(expr.right, table, row)
            )
        if expr.op == "OR":
            return _truthy(self._eval(expr.left, table, row)) or _truthy(
                self._eval(expr.right, table, row)
            )
        left = self._eval(expr.left, table, row)
        right = self._eval(expr.right, table, row)
        if expr.op in ("=", "!="):
            equal = left == right
            return equal if expr.op == "=" else not equal
        if left is None or right is None:
            return None  # SQL-ish: NULL propagates through comparisons/arith
        ops: dict[str, Callable[[Any, Any], Any]] = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
        }
        try:
            return ops[expr.op](left, right)
        except TypeError as error:
            raise DatabaseError(f"type error in {expr.op}: {error}") from error
        except ZeroDivisionError as error:
            raise DatabaseError("division by zero") from error


def _truthy(value: Any) -> bool:
    return bool(value)
