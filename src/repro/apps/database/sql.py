"""A small SQL dialect: lexer, parser, and expression AST.

Supports what the UDF case study needs:

* ``CREATE TABLE t (col TYPE, ...)``
* ``INSERT INTO t VALUES (expr, ...), (...)``
* ``SELECT expr [AS name], ... FROM t [WHERE expr] [LIMIT n]``

Expressions: literals (integers, floats, 'strings', TRUE/FALSE/NULL),
column references, arithmetic (+ - * /), comparisons (= != < <= > >=),
AND/OR/NOT, and function calls -- which is where UDFs enter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any


class SqlError(Exception):
    """A lexing or parsing error."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|[=<>(),*+\-/;])
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset({
    "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "SELECT", "FROM",
    "WHERE", "AND", "OR", "NOT", "AS", "LIMIT", "TRUE", "FALSE", "NULL",
})


@dataclass(frozen=True)
class Token:
    kind: str  # "int" | "float" | "string" | "ident" | "keyword" | "op"
    value: Any


def lex(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlError(f"bad character {sql[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "int":
            tokens.append(Token("int", int(match.group())))
        elif match.lastgroup == "float":
            tokens.append(Token("float", float(match.group())))
        elif match.lastgroup == "string":
            raw = match.group()[1:-1].replace("''", "'")
            tokens.append(Token("string", raw))
        elif match.lastgroup == "ident":
            word = match.group()
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper()))
            else:
                tokens.append(Token("ident", word))
        else:
            op = match.group()
            tokens.append(Token("op", "!=" if op == "<>" else op))
    tokens.append(Token("eof", None))
    return tokens


# -- AST ----------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    value: Any


@dataclass(frozen=True)
class ColRef:
    name: str


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class BinOp:
    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class UnOp:
    op: str
    operand: Any


@dataclass(frozen=True)
class SelectItem:
    expr: Any
    alias: str | None
    star: bool = False


@dataclass(frozen=True)
class CreateStmt:
    table: str
    columns: tuple[tuple[str, str], ...]  # (name, type)


@dataclass(frozen=True)
class InsertStmt:
    table: str
    rows: tuple[tuple, ...]  # tuples of expressions


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    table: str
    where: Any | None
    limit: int | None


_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = lex(sql)
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _expect(self, kind: str, value: Any = None) -> Token:
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            raise SqlError(f"expected {value or kind}, got {token.value!r}")
        return self._advance()

    def _eat(self, kind: str, value: Any = None) -> bool:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            self._advance()
            return True
        return False

    # -- statements ------------------------------------------------------------
    def parse(self):
        token = self.current
        if token.kind != "keyword":
            raise SqlError(f"expected a statement, got {token.value!r}")
        if token.value == "CREATE":
            statement = self._create()
        elif token.value == "INSERT":
            statement = self._insert()
        elif token.value == "SELECT":
            statement = self._select()
        else:
            raise SqlError(f"unsupported statement {token.value}")
        self._eat("op", ";")
        if self.current.kind != "eof":
            raise SqlError(f"trailing input at {self.current.value!r}")
        return statement

    def _create(self) -> CreateStmt:
        self._expect("keyword", "CREATE")
        self._expect("keyword", "TABLE")
        table = self._expect("ident").value
        self._expect("op", "(")
        columns: list[tuple[str, str]] = []
        while True:
            name = self._expect("ident").value
            type_name = self._expect("ident").value.upper()
            columns.append((name, type_name))
            if not self._eat("op", ","):
                break
        self._expect("op", ")")
        return CreateStmt(table=table, columns=tuple(columns))

    def _insert(self) -> InsertStmt:
        self._expect("keyword", "INSERT")
        self._expect("keyword", "INTO")
        table = self._expect("ident").value
        self._expect("keyword", "VALUES")
        rows: list[tuple] = []
        while True:
            self._expect("op", "(")
            values: list[Any] = []
            while True:
                values.append(self._expression())
                if not self._eat("op", ","):
                    break
            self._expect("op", ")")
            rows.append(tuple(values))
            if not self._eat("op", ","):
                break
        return InsertStmt(table=table, rows=tuple(rows))

    def _select(self) -> SelectStmt:
        self._expect("keyword", "SELECT")
        items: list[SelectItem] = []
        while True:
            if self._eat("op", "*"):
                items.append(SelectItem(expr=None, alias=None, star=True))
            else:
                expr = self._expression()
                alias = None
                if self._eat("keyword", "AS"):
                    alias = self._expect("ident").value
                items.append(SelectItem(expr=expr, alias=alias))
            if not self._eat("op", ","):
                break
        self._expect("keyword", "FROM")
        table = self._expect("ident").value
        where = None
        if self._eat("keyword", "WHERE"):
            where = self._expression()
        limit = None
        if self._eat("keyword", "LIMIT"):
            limit = self._expect("int").value
        return SelectStmt(items=tuple(items), table=table, where=where, limit=limit)

    # -- expressions -----------------------------------------------------------------
    def _expression(self):
        return self._or()

    def _or(self):
        left = self._and()
        while self._eat("keyword", "OR"):
            left = BinOp("OR", left, self._and())
        return left

    def _and(self):
        left = self._not()
        while self._eat("keyword", "AND"):
            left = BinOp("AND", left, self._not())
        return left

    def _not(self):
        if self._eat("keyword", "NOT"):
            return UnOp("NOT", self._not())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self.current
        if token.kind == "op" and token.value in _COMPARISONS:
            self._advance()
            return BinOp(token.value, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while self.current.kind == "op" and self.current.value in ("+", "-"):
            op = self._advance().value
            left = BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self):
        left = self._unary()
        while self.current.kind == "op" and self.current.value in ("*", "/"):
            op = self._advance().value
            left = BinOp(op, left, self._unary())
        return left

    def _unary(self):
        if self.current.kind == "op" and self.current.value == "-":
            self._advance()
            return UnOp("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self.current
        if token.kind in ("int", "float", "string"):
            self._advance()
            return Lit(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE", "NULL"):
            self._advance()
            return Lit({"TRUE": True, "FALSE": False, "NULL": None}[token.value])
        if token.kind == "ident":
            name = self._advance().value
            if self._eat("op", "("):
                args: list[Any] = []
                if not (self.current.kind == "op" and self.current.value == ")"):
                    while True:
                        args.append(self._expression())
                        if not self._eat("op", ","):
                            break
                self._expect("op", ")")
                return FuncCall(name=name, args=tuple(args))
            return ColRef(name=name)
        if token.kind == "op" and token.value == "(":
            self._advance()
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise SqlError(f"unexpected token {token.value!r}")


def parse(sql: str):
    """Parse one SQL statement."""
    return Parser(sql).parse()
