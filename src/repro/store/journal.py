"""Write-ahead journaling over a simulated durable medium.

The snapshot store is the serving plane's single most critical piece of
shared state, so its mutations are journaled the way a real store's
would be: every operation is encoded as one self-verifying record,
appended to an (simulated) append-only medium *before* the in-memory
state changes.  The durability contract is the classic one:

* **record atomicity** -- a record is either fully durable or absent; a
  torn tail (a crash mid-write) is detected by the record's own digest
  and discarded on recovery;
* **prefix consistency** -- a crash preserves exactly a prefix of the
  appended records, so recovery always lands on a state the live store
  passed through;
* **idempotent replay** -- records carry monotonically increasing
  sequence numbers, so re-applying an already-applied record is a no-op.

:class:`SimDisk` is the medium: an in-memory list of raw record bytes
with explicit crash/tear/corrupt hooks, which is what lets the
crash-point fuzzer (:mod:`repro.store.crashpoint`) kill the store after
*every* record boundary and prove recovery from each one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

#: Record op that carries a full serialized store state (see
#: :meth:`repro.store.cas.DurableSnapshotStore.checkpoint`).  Recovery
#: starts from the last valid checkpoint and replays forward.
CHECKPOINT_OP = "checkpoint"


def canonical_json(payload: dict) -> bytes:
    """Key-sorted, separator-stable JSON bytes (digest/signature input)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class JournalRecord:
    """One durable store mutation."""

    seq: int
    op: str
    #: JSON-able operation payload (bytes are base64 strings inside).
    payload: dict
    #: sha256 over the canonical ``{seq, op, payload}`` encoding; a
    #: record whose recomputed digest mismatches is torn or rotted and
    #: is discarded (with everything after it) on recovery.
    digest: str

    @classmethod
    def make(cls, seq: int, op: str, payload: dict) -> "JournalRecord":
        body = canonical_json({"seq": seq, "op": op, "payload": payload})
        return cls(seq=seq, op=op, payload=payload,
                   digest=hashlib.sha256(body).hexdigest())

    def encode(self) -> bytes:
        return canonical_json({
            "seq": self.seq, "op": self.op, "payload": self.payload,
            "digest": self.digest,
        })

    @classmethod
    def decode(cls, raw: bytes) -> "JournalRecord | None":
        """Decode and verify one raw record; ``None`` if torn/corrupt."""
        try:
            obj = json.loads(raw.decode("utf-8"))
            record = cls(seq=obj["seq"], op=obj["op"],
                         payload=obj["payload"], digest=obj["digest"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        body = canonical_json({
            "seq": record.seq, "op": record.op, "payload": record.payload,
        })
        if hashlib.sha256(body).hexdigest() != record.digest:
            return None
        return record


class SimDisk:
    """The simulated durable medium: append-only raw record slots.

    Writes are atomic at record granularity (the journal's digest check
    is what turns a *violated* assumption -- a torn tail -- into a
    detected-and-discarded record rather than silent corruption).
    """

    def __init__(self, records: list[bytes] | None = None) -> None:
        self._records: list[bytes] = list(records or [])
        self.appends = 0
        self.bytes_written = 0

    def __len__(self) -> int:
        return len(self._records)

    def append(self, raw: bytes) -> None:
        self._records.append(raw)
        self.appends += 1
        self.bytes_written += len(raw)

    def records(self) -> tuple[bytes, ...]:
        return tuple(self._records)

    # -- crash simulation ----------------------------------------------------
    def clone(self, upto: int | None = None) -> "SimDisk":
        """A crash image holding only the first ``upto`` records."""
        end = len(self._records) if upto is None else upto
        return SimDisk(self._records[:end])

    def tear_tail(self) -> None:
        """Tear the last record in half (a crash mid-write)."""
        if self._records:
            raw = self._records[-1]
            self._records[-1] = raw[: max(1, len(raw) // 2)]

    def corrupt_record(self, index: int) -> None:
        """Flip one byte of a stored record (media rot)."""
        raw = bytearray(self._records[index])
        raw[len(raw) // 2] ^= 0x01
        self._records[index] = bytes(raw)

    def drop_prefix(self, count: int) -> None:
        """Physically discard the first ``count`` records (compaction)."""
        del self._records[:count]


class Journal:
    """The write-ahead log: encode, digest, append; scan on recovery."""

    def __init__(self, disk: SimDisk) -> None:
        self.disk = disk
        self._next_seq = 0
        self.appended = 0

    def append(self, op: str, payload: dict) -> JournalRecord:
        record = JournalRecord.make(self._next_seq, op, payload)
        self.disk.append(record.encode())
        self._next_seq += 1
        self.appended += 1
        return record

    def scan(self) -> tuple[list[JournalRecord], int]:
        """Decode the valid record prefix.

        Returns ``(records, discarded)``: scanning stops at the first
        record that fails decode or digest verification -- everything
        from there on is a torn tail or rot and is counted discarded,
        never applied.  Advances :attr:`_next_seq` past the last valid
        record so post-recovery appends continue the sequence.
        """
        records: list[JournalRecord] = []
        raws = self.disk.records()
        for i, raw in enumerate(raws):
            record = JournalRecord.decode(raw)
            if record is None:
                return records, len(raws) - i
            records.append(record)
        if records:
            self._next_seq = records[-1].seq + 1
        return records, 0
