"""Crash-point fuzzing of the durable snapshot store.

The durability contract (DESIGN.md §13) says a host crash at *any*
journal record boundary recovers to a consistent, integrity-verified
state.  This module proves it exhaustively rather than by sampling:

1. run a seeded workload (puts with overlapping page content across
   several images, overwrites, pins, drops, GC, scrubs, checkpoints)
   against a live store, capturing a shadow ``state_signature()`` after
   every journal record;
2. for **every** record boundary, clone the medium cut at that
   boundary (the crash image), recover a fresh store from it, and
   require the recovered signature to equal the shadow taken at that
   boundary -- plus a clean scrub of the recovered state;
3. additionally tear the tail record in half at sampled boundaries (a
   crash mid-write) and require recovery to discard the torn record
   and land exactly on the previous boundary's shadow.

Every boundary is one case; seeds are consumed until the requested
case count is reached, so ``--cases 200`` means at least 200
independent kill-and-recover proofs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.store.cas import DurableSnapshotStore
from repro.store.journal import canonical_json
from repro.wasp.snapshot import Snapshot

#: Small pool of page payloads so captures overlap heavily -- dedup is
#: part of what recovery must preserve, so the workload exercises it.
_PAGE_PATTERNS = tuple(bytes([value]) * 64 for value in range(6))


def _make_snapshot(rng: random.Random, image: str) -> Snapshot:
    pages = {
        page: rng.choice(_PAGE_PATTERNS)
        for page in rng.sample(range(16), rng.randint(1, 5))
    }
    cpu_state = {
        "rip": rng.randrange(1 << 16),
        "rsp": rng.randrange(1 << 16),
        "regs": tuple(rng.randrange(1 << 8) for _ in range(4)),
    }
    return Snapshot(image_name=image, pages=pages, cpu_state=cpu_state,
                    hosted_payload=None, hosted=False)


@dataclass(frozen=True)
class CrashCase:
    """One kill-at-boundary-and-recover proof."""

    seed: int
    boundary: int
    torn: bool
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"seed": self.seed, "boundary": self.boundary,
                "torn": self.torn, "ok": self.ok, "detail": self.detail}


@dataclass
class CrashPointReport:
    """Aggregate outcome of a crash-point fuzz run."""

    seed: int
    requested_cases: int
    seeds_used: list[int] = field(default_factory=list)
    cases: int = 0
    torn_cases: int = 0
    records_journaled: int = 0
    failures: list[CrashCase] = field(default_factory=list)
    #: Final live-store signature per seed (the determinism witness).
    final_signatures: dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def signature(self) -> str:
        """sha256 over the canonical run outcome: identical seeds must
        produce byte-identical reports."""
        return hashlib.sha256(canonical_json({
            "seed": self.seed,
            "seeds_used": self.seeds_used,
            "cases": self.cases,
            "torn_cases": self.torn_cases,
            "records": self.records_journaled,
            "failures": [case.to_dict() for case in self.failures],
            "final_signatures": {str(s): sig for s, sig
                                 in self.final_signatures.items()},
        })).hexdigest()

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requested_cases": self.requested_cases,
            "seeds_used": self.seeds_used,
            "cases": self.cases,
            "torn_cases": self.torn_cases,
            "records_journaled": self.records_journaled,
            "ok": self.ok,
            "failures": [case.to_dict() for case in self.failures],
            "signature": self.signature(),
        }


class CrashPointFuzzer:
    """Kill the store after every journal record of seeded workloads."""

    #: Tear the tail record at every Nth boundary on top of the clean
    #: cut (a mid-write crash must degrade to the previous boundary).
    TEAR_EVERY = 5

    def __init__(self, seed: int = 1234, min_cases: int = 200,
                 images: int = 4, ops_per_seed: int = 48) -> None:
        self.seed = seed
        self.min_cases = min_cases
        self.images = images
        self.ops_per_seed = ops_per_seed

    def run(self) -> CrashPointReport:
        report = CrashPointReport(seed=self.seed,
                                  requested_cases=self.min_cases)
        seed = self.seed
        while report.cases < self.min_cases:
            self._fuzz_seed(seed, report)
            seed += 1
        return report

    # -- one seeded workload -------------------------------------------------
    def _fuzz_seed(self, seed: int, report: CrashPointReport) -> None:
        report.seeds_used.append(seed)
        rng = random.Random(seed)
        store = DurableSnapshotStore(gc_keep=3)
        images = [f"img{i}" for i in range(self.images)]
        # Shadow signatures indexed by journal length: shadow[k] is the
        # live durable state right after the k-th record hit the medium.
        shadow: dict[int, str] = {0: store.state_signature()}
        for _ in range(self.ops_per_seed):
            self._step(rng, store, images)
            boundary = len(store.medium)
            if boundary not in shadow:
                shadow[boundary] = store.state_signature()
        report.final_signatures[seed] = store.state_signature()
        report.records_journaled += len(store.medium)
        for boundary in range(1, len(store.medium) + 1):
            report.cases += 1
            case = self._prove_boundary(seed, store, boundary,
                                        shadow[boundary])
            if not case.ok:
                report.failures.append(case)
            if boundary % self.TEAR_EVERY == 0:
                report.cases += 1
                report.torn_cases += 1
                torn = self._prove_torn(seed, store, boundary,
                                        shadow[boundary - 1])
                if not torn.ok:
                    report.failures.append(torn)

    def _step(self, rng: random.Random, store: DurableSnapshotStore,
              images: list[str]) -> None:
        op = rng.choices(
            ["put", "drop", "pin", "unpin", "gc", "checkpoint", "scrub"],
            weights=[45, 10, 10, 10, 15, 5, 5],
        )[0]
        key = f"{rng.choice(images)}:v{rng.randrange(3)}"
        if op == "put":
            store.put(key, _make_snapshot(rng, key.split(":")[0]),
                      pin=rng.random() < 0.1)
        elif op == "drop":
            store.drop(key)
        elif op == "pin":
            if key in store:
                store.pin(key)
        elif op == "unpin":
            store.unpin(key)
        elif op == "gc":
            store.gc(keep=rng.randrange(1, 5))
        elif op == "checkpoint":
            store.checkpoint()
        elif op == "scrub":
            store.scrub()

    # -- recovery proofs -----------------------------------------------------
    def _prove_boundary(self, seed: int, store: DurableSnapshotStore,
                        boundary: int, expected: str) -> CrashCase:
        crashed = store.medium.clone(upto=boundary)
        return self._recover_and_check(seed, crashed, boundary,
                                       torn=False, expected=expected)

    def _prove_torn(self, seed: int, store: DurableSnapshotStore,
                    boundary: int, expected: str) -> CrashCase:
        crashed = store.medium.clone(upto=boundary)
        crashed.tear_tail()
        return self._recover_and_check(seed, crashed, boundary,
                                       torn=True, expected=expected)

    def _recover_and_check(self, seed: int, crashed, boundary: int,
                           torn: bool, expected: str) -> CrashCase:
        try:
            recovered = DurableSnapshotStore(crashed)
        except Exception as exc:  # recovery must never raise
            return CrashCase(seed, boundary, torn, False,
                             f"recovery raised {type(exc).__name__}: {exc}")
        if torn and recovered.torn_records != 1:
            return CrashCase(seed, boundary, torn, False,
                             f"expected 1 torn record, saw "
                             f"{recovered.torn_records}")
        got = recovered.state_signature()
        if got != expected:
            return CrashCase(seed, boundary, torn, False,
                             f"signature mismatch: {got[:16]} != "
                             f"{expected[:16]}")
        scrub = recovered.scrub(repair=False)
        if not scrub.clean:
            return CrashCase(seed, boundary, torn, False,
                             f"recovered state fails scrub: "
                             f"{len(scrub.corrupt_chunks)} corrupt, "
                             f"{len(scrub.missing_chunks)} missing, "
                             f"{scrub.refcount_repairs} refcount drift")
        return CrashCase(seed, boundary, torn, True)
