"""The durable content-addressed snapshot store.

Virtine snapshots (Section 5.2) are what make microsecond-scale starts
possible, which makes the snapshot store the serving plane's single
most critical piece of shared state.  This store gives it the
properties a production store needs:

* **content addressing** -- snapshot pages are stored as chunks keyed
  by their sha256, so identical pages across images/captures are stored
  once (the dedup ratio is a first-class counter) and every read is
  self-verifying: a chunk whose bytes no longer hash to its key is
  *detected* corruption, never silently served;
* **refcounting** -- chunks are shared between snapshots via per-
  reference counts; dropping a snapshot frees exactly the chunks no
  other snapshot still references (conservation is a scrub invariant);
* **cold GC** -- unpinned, unleased snapshots are collected coldest-
  first; a restore in progress holds a *lease*, so GC can never yank
  pages out from under a concurrent COW restore;
* **write-ahead journaling** -- every mutation (put / drop / pin / gc /
  scrub / checkpoint) is journaled before it is applied, so a host
  crash at any record boundary recovers to a consistent, integrity-
  verified state (proven per-boundary by
  :mod:`repro.store.crashpoint`).

Hosted-runtime payloads are pickled into the journal when they can be;
a payload the host cannot serialize makes its snapshot *volatile*: it
is served while the process lives but deliberately dropped on recovery
(a half-durable snapshot restored without its runtime state would be a
silent correctness bug, so the store fails safe to a cold boot).
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.store.journal import CHECKPOINT_OP, Journal, JournalRecord, SimDisk, canonical_json
from repro.wasp.snapshot import Snapshot, SnapshotGone

__all__ = ["DurableSnapshotStore", "ScrubReport", "SnapshotGone", "chunk_hash"]


def chunk_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


@dataclass(frozen=True)
class _SnapshotMeta:
    """The durable description of one stored snapshot."""

    key: str
    image_name: str
    #: ``(page number, chunk hash)`` per captured page.
    manifest: tuple[tuple[int, str], ...]
    #: Pickled, base64'd architectural vCPU state.
    cpu_b64: str
    checksum: int
    hosted: bool
    #: Pickled hosted payload, or None (no payload / volatile payload).
    payload_b64: str | None
    #: True when the payload could not be serialized: the snapshot is
    #: served live but dropped on recovery.
    volatile: bool
    #: Journal sequence of the put that created this version (the
    #: coldness fallback after recovery, when recency is lost).
    put_seq: int

    def to_payload(self) -> dict:
        return {
            "key": self.key, "image": self.image_name,
            "manifest": [[page, chash] for page, chash in self.manifest],
            "cpu": self.cpu_b64, "checksum": self.checksum,
            "hosted": self.hosted, "payload": self.payload_b64,
            "volatile": self.volatile, "put_seq": self.put_seq,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "_SnapshotMeta":
        return cls(
            key=payload["key"], image_name=payload["image"],
            manifest=tuple((int(p), str(h)) for p, h in payload["manifest"]),
            cpu_b64=payload["cpu"], checksum=int(payload["checksum"]),
            hosted=bool(payload["hosted"]), payload_b64=payload["payload"],
            volatile=bool(payload["volatile"]),
            put_seq=int(payload["put_seq"]),
        )


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one integrity scrub pass."""

    #: Chunks whose bytes no longer hash to their key.
    corrupt_chunks: tuple[str, ...]
    #: Manifest references to chunks that do not exist.
    missing_chunks: tuple[str, ...]
    #: Snapshots dropped because a chunk they reference is bad.
    dropped_snapshots: tuple[str, ...]
    #: Refcount entries corrected to the recomputed value.
    refcount_repairs: int

    @property
    def clean(self) -> bool:
        return (not self.corrupt_chunks and not self.missing_chunks
                and not self.dropped_snapshots and self.refcount_repairs == 0)

    @property
    def repairs(self) -> int:
        return len(self.dropped_snapshots) + self.refcount_repairs


class DurableSnapshotStore:
    """Content-addressed, refcounted, journaled snapshot store.

    Drop-in for :class:`~repro.wasp.snapshot.SnapshotStore` (same
    ``get``/``put``/``drop``/``note_restore``/``__contains__`` surface
    plus the ``captures``/``restores``/``integrity_failures`` counters
    the hypervisor maintains), constructed over a :class:`SimDisk`
    medium.  Constructing it over a non-empty medium *is* recovery: the
    journal's valid prefix is replayed, a torn tail is discarded, and
    orphaned chunks are pruned.
    """

    backend = "durable"

    def __init__(
        self,
        medium: SimDisk | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        checkpoint_every: int = 0,
        gc_keep: int = 8,
    ) -> None:
        self.medium = medium if medium is not None else SimDisk()
        self.journal = Journal(self.medium)
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        #: Auto-checkpoint period in journal records (0 = manual only).
        self.checkpoint_every = checkpoint_every
        #: Default snapshot count :meth:`gc` retains.
        self.gc_keep = gc_keep
        # -- content-addressed chunk plane --
        self._chunks: dict[str, bytes] = {}
        self._refs: dict[str, int] = {}
        # -- snapshot plane --
        self._meta: dict[str, _SnapshotMeta] = {}
        self._pinned: set[str] = set()
        self._leases: dict[str, int] = {}
        self._volatile_payloads: dict[str, object] = {}
        self._use_seq = 0
        self._last_used: dict[str, int] = {}
        self._applied_seq = -1
        # -- SnapshotStore-compatible counters --
        self.captures = 0
        self.restores = 0
        self.integrity_failures = 0
        # -- store counters --
        self.reads = 0
        self.dedup_hits = 0
        self.logical_bytes = 0
        self.gc_runs = 0
        self.gc_reclaimed_snapshots = 0
        self.gc_reclaimed_chunks = 0
        self.gc_reclaimed_bytes = 0
        self.gc_race_drops = 0
        self.scrub_passes = 0
        self.scrub_repairs = 0
        self.checkpoints = 0
        self.journal_replays = 0
        self.recovered_records = 0
        self.torn_records = 0
        self._recover()

    # -- recovery ------------------------------------------------------------
    def _recover(self) -> None:
        records, discarded = self.journal.scan()
        self.torn_records = discarded
        if not records:
            return
        for record in records:
            self._apply(record)
        # Chunks journaled by snapshots that did not survive recovery
        # (volatile payloads, overwritten versions) are orphans now.
        self._prune_orphans()
        self.journal_replays = 1
        self.recovered_records = len(records)

    def reapply_journal(self) -> int:
        """Re-apply the full journal onto the live state (idempotency
        check: sequence guards make every already-applied record a
        no-op).  Returns how many records actually mutated state."""
        records, _ = self.journal.scan()
        applied = 0
        for record in records:
            if self._apply(record):
                applied += 1
        return applied

    # -- the write path ------------------------------------------------------
    def _journal(self, op: str, payload: dict, apply: bool = True) -> JournalRecord:
        record = self.journal.append(op, payload)
        if apply:
            self._apply(record)
        else:
            self._applied_seq = record.seq
        if (self.checkpoint_every and op != CHECKPOINT_OP
                and self.journal.appended % self.checkpoint_every == 0):
            self.checkpoint()
        return record

    def _apply(self, record: JournalRecord) -> bool:
        """Apply one journal record; no-op for already-applied seqs."""
        if record.seq <= self._applied_seq:
            return False
        self._applied_seq = record.seq
        payload = record.payload
        if record.op == "put":
            self._apply_put(payload)
        elif record.op == "drop":
            self._apply_drop(payload["key"])
        elif record.op == "gc":
            for key in payload["keys"]:
                self._apply_drop(key)
        elif record.op == "pin":
            if payload["key"] in self._meta:
                self._pinned.add(payload["key"])
        elif record.op == "unpin":
            self._pinned.discard(payload["key"])
        elif record.op == "scrub":
            for key in payload["dropped"]:
                self._apply_drop(key)
        elif record.op == CHECKPOINT_OP:
            self._load_state(payload["state"])
        return True

    def _apply_put(self, payload: dict) -> None:
        for chash, data_b64 in payload["chunks"].items():
            if chash not in self._chunks:
                self._chunks[chash] = _unb64(data_b64)
                self._refs.setdefault(chash, 0)
        meta = _SnapshotMeta.from_payload(payload)
        if meta.volatile and meta.key not in self._volatile_payloads:
            # Replay of a volatile-payload put: the runtime object is
            # gone with the old process, so the snapshot is dropped
            # (its chunks stay until the orphan prune).
            return
        old = self._meta.pop(meta.key, None)
        for _page, chash in meta.manifest:
            self._refs[chash] = self._refs.get(chash, 0) + 1
            # Logical-byte accounting lives here (not in :meth:`put`) so
            # a journal replay reconstructs the same dedup ratio.
            self.logical_bytes += len(self._chunks[chash])
        if old is not None:
            self._decref_manifest(old.manifest)
        self._meta[meta.key] = meta
        if payload.get("pin"):
            self._pinned.add(meta.key)

    def _apply_drop(self, key: str) -> None:
        meta = self._meta.pop(key, None)
        if meta is None:
            return
        self._decref_manifest(meta.manifest)
        self._pinned.discard(key)
        self._volatile_payloads.pop(key, None)
        self._last_used.pop(key, None)

    def _decref_manifest(self, manifest: tuple[tuple[int, str], ...]) -> None:
        for _page, chash in manifest:
            count = self._refs.get(chash, 0) - 1
            if count <= 0:
                self._refs.pop(chash, None)
                self._chunks.pop(chash, None)
            else:
                self._refs[chash] = count

    def _prune_orphans(self) -> None:
        for chash in [h for h, n in self._refs.items() if n == 0]:
            self._refs.pop(chash, None)
            self._chunks.pop(chash, None)

    # -- SnapshotStore surface -----------------------------------------------
    def put(self, key: str, snapshot: Snapshot, pin: bool = False) -> None:
        manifest: list[list[int | str]] = []
        new_chunks: dict[str, str] = {}
        for page in sorted(snapshot.pages):
            data = snapshot.pages[page]
            chash = chunk_hash(data)
            manifest.append([page, chash])
            if chash in self._chunks or chash in new_chunks:
                self.dedup_hits += 1
            else:
                new_chunks[chash] = _b64(data)
        payload_b64: str | None = None
        volatile = False
        if snapshot.hosted_payload is not None:
            try:
                payload_b64 = _b64(pickle.dumps(snapshot.hosted_payload))
            except Exception:
                volatile = True
        self._journal("put", {
            "key": key, "image": snapshot.image_name, "manifest": manifest,
            "cpu": _b64(pickle.dumps(snapshot.cpu_state)),
            "checksum": snapshot.checksum, "hosted": snapshot.hosted,
            "payload": payload_b64, "volatile": volatile,
            "chunks": new_chunks, "pin": pin,
            "put_seq": self.journal._next_seq,
        })
        if volatile:
            self._volatile_payloads[key] = snapshot.hosted_payload
            # The journaled record skipped the meta; install it live.
            meta = _SnapshotMeta.from_payload({
                "key": key, "image": snapshot.image_name,
                "manifest": manifest,
                "cpu": _b64(pickle.dumps(snapshot.cpu_state)),
                "checksum": snapshot.checksum, "hosted": snapshot.hosted,
                "payload": None, "volatile": True,
                "put_seq": self.journal._next_seq - 1,
            })
            old = self._meta.pop(key, None)
            for _page, chash in meta.manifest:
                self._refs[chash] = self._refs.get(chash, 0) + 1
                self.logical_bytes += len(self._chunks[chash])
            if old is not None:
                self._decref_manifest(old.manifest)
            self._meta[key] = meta
            if pin:
                self._pinned.add(key)
        self._use_seq += 1
        self._last_used[key] = self._use_seq
        self.captures += 1

    def get(self, key: str) -> Snapshot | None:
        meta = self._meta.get(key)
        if meta is None:
            return None
        if self.fault_plan.draw(FaultSite.STORE_GC_RACE, key):
            # Model the concurrent-GC race: the collector won between
            # the caller's pool acquire and this materialization.  The
            # drop is real (journaled), not a pretend failure.
            self._journal("gc", {"keys": [key]})
            self.gc_race_drops += 1
            raise SnapshotGone(key, "lost the race with the collector")
        pages: dict[int, bytes] = {}
        for page, chash in meta.manifest:
            data = self._chunks.get(chash)
            if data is None:
                raise SnapshotGone(key, f"chunk {chash[:12]} missing")
            pages[page] = data
        self.reads += 1
        self._use_seq += 1
        self._last_used[key] = self._use_seq
        if key in self._volatile_payloads:
            payload = self._volatile_payloads[key]
        elif meta.payload_b64 is not None:
            payload = pickle.loads(_unb64(meta.payload_b64))
        else:
            payload = None
        return Snapshot(
            image_name=meta.image_name, pages=pages,
            cpu_state=pickle.loads(_unb64(meta.cpu_b64)),
            hosted_payload=payload, hosted=meta.hosted,
            checksum=meta.checksum,
        )

    def drop(self, key: str) -> None:
        if key in self._meta:
            self._journal("drop", {"key": key})

    def note_restore(self) -> None:
        self.restores += 1

    def __contains__(self, key: str) -> bool:
        return key in self._meta

    def __len__(self) -> int:
        return len(self._meta)

    def keys(self) -> tuple[str, ...]:
        return tuple(sorted(self._meta))

    # -- pinning & leases ----------------------------------------------------
    def pin(self, key: str) -> None:
        """Exempt ``key`` from garbage collection."""
        if key not in self._meta:
            raise KeyError(key)
        self._journal("pin", {"key": key})

    def unpin(self, key: str) -> None:
        if key in self._pinned:
            self._journal("unpin", {"key": key})

    def pinned(self) -> frozenset[str]:
        return frozenset(self._pinned)

    @contextmanager
    def lease(self, key: str) -> Iterator[None]:
        """Hold ``key`` against GC for the duration (a restore in
        progress -- notably a COW restore whose pages are still being
        materialized -- must never lose its chunks mid-copy).  Leases
        are runtime state, not journaled: a host crash drops them, and
        the restore they protected died with the process."""
        self._leases[key] = self._leases.get(key, 0) + 1
        try:
            yield
        finally:
            count = self._leases.get(key, 1) - 1
            if count <= 0:
                self._leases.pop(key, None)
            else:
                self._leases[key] = count

    def leased(self, key: str) -> bool:
        return self._leases.get(key, 0) > 0

    # -- garbage collection --------------------------------------------------
    def gc(self, keep: int | None = None) -> tuple[str, ...]:
        """Collect cold snapshots down to ``keep`` resident, coldest
        first.  Pinned and leased snapshots are never candidates."""
        keep = self.gc_keep if keep is None else keep
        candidates = sorted(
            (key for key in self._meta
             if key not in self._pinned and not self.leased(key)),
            key=lambda key: (self._last_used.get(key, 0),
                             self._meta[key].put_seq, key),
        )
        excess = len(self._meta) - keep
        victims = tuple(candidates[:max(0, excess)])
        if victims:
            chunks_before = len(self._chunks)
            bytes_before = sum(len(c) for c in self._chunks.values())
            self._journal("gc", {"keys": list(victims)})
            self.gc_reclaimed_snapshots += len(victims)
            self.gc_reclaimed_chunks += chunks_before - len(self._chunks)
            self.gc_reclaimed_bytes += (
                bytes_before - sum(len(c) for c in self._chunks.values())
            )
        self.gc_runs += 1
        return victims

    # -- integrity -----------------------------------------------------------
    def corrupt_chunk(self, chash: str | None = None) -> str | None:
        """Flip one bit of a stored chunk (the chaos plane's bit rot).

        Deliberately *not* journaled: rot is not a mutation the store
        performed, it is damage the scrub/verify paths must detect."""
        if not self._chunks:
            return None
        victim = chash if chash is not None else min(self._chunks)
        data = bytearray(self._chunks[victim])
        data[0] ^= 0x01
        self._chunks[victim] = bytes(data)
        return victim

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify every chunk hash, manifest reference, and refcount.

        With ``repair``, snapshots referencing corrupt or missing
        chunks are dropped (journaled), dead chunks are freed, and
        refcount drift is corrected to the recomputed truth."""
        corrupt = tuple(sorted(
            chash for chash, data in self._chunks.items()
            if chunk_hash(data) != chash
        ))
        missing = tuple(sorted({
            chash for meta in self._meta.values()
            for _page, chash in meta.manifest if chash not in self._chunks
        }))
        bad = set(corrupt) | set(missing)
        affected = tuple(sorted(
            key for key, meta in self._meta.items()
            if any(chash in bad for _page, chash in meta.manifest)
        ))
        expected: dict[str, int] = {}
        for meta in self._meta.values():
            for _page, chash in meta.manifest:
                expected[chash] = expected.get(chash, 0) + 1
        drift = sum(
            1 for chash in set(expected) | set(self._refs)
            if expected.get(chash, 0) != self._refs.get(chash, 0)
        )
        report = ScrubReport(
            corrupt_chunks=corrupt, missing_chunks=missing,
            dropped_snapshots=affected if repair else (),
            refcount_repairs=drift if repair else 0,
        )
        if repair:
            if affected:
                self._journal("scrub", {"dropped": list(affected)})
            for chash in corrupt:
                # Anything still holding the rotted chunk was just
                # dropped; free whatever the decrefs left behind.
                self._refs.pop(chash, None)
                self._chunks.pop(chash, None)
            if drift:
                recomputed: dict[str, int] = {}
                for meta in self._meta.values():
                    for _page, chash in meta.manifest:
                        recomputed[chash] = recomputed.get(chash, 0) + 1
                self._refs = recomputed
                self._prune_orphans()
            self.scrub_repairs += report.repairs
            self.integrity_failures += len(affected)
        self.scrub_passes += 1
        return report

    # -- checkpointing -------------------------------------------------------
    def _durable_state(self) -> dict:
        """The serialized durable state (checkpoint body / signature
        input).  Volatile-payload snapshots are excluded -- they cannot
        survive the process, so they are not part of durability."""
        return {
            "snapshots": {
                key: meta.to_payload() for key, meta in sorted(self._meta.items())
                if not meta.volatile
            },
            "pinned": sorted(k for k in self._pinned
                             if k in self._meta and not self._meta[k].volatile),
            "chunks": {chash: _b64(data)
                       for chash, data in sorted(self._chunks.items())},
        }

    def _load_state(self, state: dict) -> None:
        self._chunks = {chash: _unb64(data)
                        for chash, data in state["chunks"].items()}
        self._meta = {key: _SnapshotMeta.from_payload(payload)
                      for key, payload in state["snapshots"].items()}
        self._pinned = set(state["pinned"])
        self._volatile_payloads.clear()
        self._refs = {}
        self.logical_bytes = 0
        for meta in self._meta.values():
            for _page, chash in meta.manifest:
                self._refs[chash] = self._refs.get(chash, 0) + 1
                self.logical_bytes += len(self._chunks[chash])

    def checkpoint(self) -> None:
        """Journal a full-state checkpoint record.  The live state is
        already current, so the record is appended without re-applying
        (replaying it *is* how recovery fast-forwards)."""
        self._journal(CHECKPOINT_OP, {"state": self._durable_state()},
                      apply=False)
        self.checkpoints += 1

    def compact(self) -> int:
        """Physically drop journal records preceding the last
        checkpoint.  Crash-safe by construction: the checkpoint record
        carries the whole durable state."""
        raws = self.medium.records()
        last = -1
        for i, raw in enumerate(raws):
            record = JournalRecord.decode(raw)
            if record is not None and record.op == CHECKPOINT_OP:
                last = i
        if last <= 0:
            return 0
        self.medium.drop_prefix(last)
        return last

    # -- introspection -------------------------------------------------------
    def state_signature(self) -> str:
        """sha256 over the canonical durable state -- what a crash-point
        recovery must reproduce byte-for-byte."""
        return hashlib.sha256(canonical_json(self._durable_state())).hexdigest()

    @property
    def chunk_bytes(self) -> int:
        return sum(len(data) for data in self._chunks.values())

    @property
    def dedup_ratio(self) -> float:
        physical = self.chunk_bytes
        return self.logical_bytes / physical if physical else 1.0

    def counters(self) -> dict:
        return {
            "backend": self.backend,
            "snapshots": len(self._meta),
            "pinned": len(self._pinned),
            "captures": self.captures,
            "restores": self.restores,
            "reads": self.reads,
            "integrity_failures": self.integrity_failures,
            "chunks": len(self._chunks),
            "chunk_bytes": self.chunk_bytes,
            "logical_bytes": self.logical_bytes,
            "dedup_hits": self.dedup_hits,
            "dedup_ratio": round(self.dedup_ratio, 6),
            "gc_runs": self.gc_runs,
            "gc_reclaimed_snapshots": self.gc_reclaimed_snapshots,
            "gc_reclaimed_chunks": self.gc_reclaimed_chunks,
            "gc_reclaimed_bytes": self.gc_reclaimed_bytes,
            "gc_race_drops": self.gc_race_drops,
            "scrub_passes": self.scrub_passes,
            "scrub_repairs": self.scrub_repairs,
            "checkpoints": self.checkpoints,
            "journal_records": len(self.medium),
            "journal_replays": self.journal_replays,
            "torn_records": self.torn_records,
        }
