"""repro.store -- durable content-addressed snapshot storage.

The serving plane's snapshot store, hardened: chunk-level dedup keyed
by sha256, refcounted images, GC that is safe against concurrent COW
restores, a write-ahead journal making every mutation crash-consistent,
and a crash-point fuzzer proving recovery at every record boundary.
"""

from repro.store.cas import (
    DurableSnapshotStore,
    ScrubReport,
    SnapshotGone,
    chunk_hash,
)
from repro.store.crashpoint import CrashCase, CrashPointFuzzer, CrashPointReport
from repro.store.journal import (
    CHECKPOINT_OP,
    Journal,
    JournalRecord,
    SimDisk,
    canonical_json,
)

__all__ = [
    "CHECKPOINT_OP",
    "CrashCase",
    "CrashPointFuzzer",
    "CrashPointReport",
    "DurableSnapshotStore",
    "Journal",
    "JournalRecord",
    "ScrubReport",
    "SimDisk",
    "SnapshotGone",
    "canonical_json",
    "chunk_hash",
]
