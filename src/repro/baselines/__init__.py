"""Isolation-boundary-crossing baselines (Table 2)."""

from repro.baselines.boundaries import (
    ALL_MECHANISMS,
    BoundaryMechanism,
    EnclosuresBaseline,
    HodorBaseline,
    LwCBaseline,
    SeCageBaseline,
    VirtineBoundary,
    WedgeBaseline,
)

__all__ = [
    "BoundaryMechanism",
    "WedgeBaseline",
    "LwCBaseline",
    "EnclosuresBaseline",
    "SeCageBaseline",
    "HodorBaseline",
    "VirtineBoundary",
    "ALL_MECHANISMS",
]
