"""Isolation-boundary-crossing baselines (Table 2)."""

from repro.baselines.boundaries import (
    ALL_MECHANISMS,
    BackendBoundary,
    BoundaryMechanism,
    EnclosuresBaseline,
    HodorBaseline,
    LwCBaseline,
    SeCageBaseline,
    VirtineBoundary,
    WedgeBaseline,
    spectrum_mechanisms,
)

__all__ = [
    "BoundaryMechanism",
    "WedgeBaseline",
    "LwCBaseline",
    "EnclosuresBaseline",
    "SeCageBaseline",
    "HodorBaseline",
    "VirtineBoundary",
    "BackendBoundary",
    "spectrum_mechanisms",
    "ALL_MECHANISMS",
]
