"""Isolation-boundary crossing costs (Table 2).

The paper compares the cost of crossing an isolation boundary in prior
systems against virtines.  The prior systems are cost models calibrated
to their published numbers (we cannot run Wedge or Hodor here); the
virtine row is *measured* from this repository's own stack -- a pool
provision + ``KVM_RUN`` + exit, "measured from userspace on the host,
surrounding the KVM_RUN ioctl, thus incurring system call and
ring-switch overheads."

==============  ==========  ===================================
System          Latency     Boundary-cross mechanism
==============  ==========  ===================================
Wedge           ~60 us      sthread call
LwC             2.01 us     lwSwitch
Enclosures      0.9 us      custom syscall interface
SeCage          0.5 us      VMRUN/VMFUNC
Hodor           0.1 us      VMRUN/VMFUNC
Virtines        ~5 us       syscall interface + VMRUN
==============  ==========  ===================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clock import Clock
from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us, us_to_cycles
from repro.wasp.hypervisor import Wasp
from repro.wasp.pool import CleanMode


@dataclass(frozen=True)
class CrossingResult:
    """One measured/modelled boundary cross."""

    system: str
    mechanism: str
    cycles: float

    @property
    def latency_us(self) -> float:
        return cycles_to_us(self.cycles)


class BoundaryMechanism:
    """Base class: a way to cross an isolation boundary."""

    system = "abstract"
    mechanism = "abstract"
    #: The paper's published latency for this system, in microseconds.
    paper_latency_us: float = 0.0

    def cross(self, clock: Clock) -> CrossingResult:
        """Perform one boundary cross, charging the clock."""
        start = clock.cycles
        self._do_cross(clock)
        return CrossingResult(
            system=self.system, mechanism=self.mechanism, cycles=clock.cycles - start
        )

    def _do_cross(self, clock: Clock) -> None:
        clock.advance(us_to_cycles(self.paper_latency_us))


class WedgeBaseline(BoundaryMechanism):
    """Wedge [20]: sthread call (~60 us)."""

    system = "Wedge"
    mechanism = "sthread call"
    paper_latency_us = 60.0


class LwCBaseline(BoundaryMechanism):
    """Light-weight contexts [48]: lwSwitch (2.01 us)."""

    system = "LwC"
    mechanism = "lwSwitch"
    paper_latency_us = 2.01


class EnclosuresBaseline(BoundaryMechanism):
    """Enclosures [27]: custom syscall interface (0.9 us)."""

    system = "Enclosures"
    mechanism = "custom syscall interface"
    paper_latency_us = 0.9


class SeCageBaseline(BoundaryMechanism):
    """SeCage [51]: VMFUNC without a VMEXIT (0.5 us)."""

    system = "SeCage"
    mechanism = "VMRUN/VMFUNC"
    paper_latency_us = 0.5


class HodorBaseline(BoundaryMechanism):
    """Hodor [32]: VMFUNC without a VMEXIT (0.1 us)."""

    system = "Hodor"
    mechanism = "VMRUN/VMFUNC"
    paper_latency_us = 0.1


def _snapshot_entry(env):
    """Boot once, capture the reset state, and halt immediately."""
    if not env.from_snapshot:
        env.snapshot(payload=None)
    return 0


class VirtineBoundary(BoundaryMechanism):
    """Virtines: measured from this repo's own Wasp stack.

    One cross = provisioning a pooled shell, restoring the captured
    post-boot snapshot (the language extensions' default), entering via
    ``KVM_RUN`` (ioctl + ring transitions + vmrun), running to the
    immediate halt, exiting, and returning the shell.
    """

    system = "Virtines"
    mechanism = "syscall interface + VMRUN"
    paper_latency_us = 5.0

    def __init__(self, wasp: Wasp | None = None) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        # The probe image is minimal (one page): the cross measures the
        # boundary, not a bulk restore of guest memory.
        self.image = ImageBuilder().hosted("boundary", _snapshot_entry,
                                           size=4096)
        # Warm the pool and capture the post-boot snapshot so each cross
        # measures the steady-state re-entry path.
        self.wasp.launch(self.image, policy=self._policy())
        self.wasp.launch(self.image, policy=self._policy())

    @staticmethod
    def _policy():
        from repro.wasp.policy import BitmaskPolicy, VirtineConfig
        from repro.wasp.hypercall import Hypercall

        return BitmaskPolicy(VirtineConfig.allowing(Hypercall.SNAPSHOT))

    def cross(self, clock: Clock | None = None) -> CrossingResult:
        """Perform one cross (defaults to the Wasp's own clock)."""
        return super().cross(clock if clock is not None else self.wasp.clock)

    def _do_cross(self, clock: Clock) -> None:
        self.wasp.launch(self.image, policy=self._policy(),
                         clean=CleanMode.ASYNC)


class BackendBoundary(BoundaryMechanism):
    """A live isolation backend's boundary crossing, *measured*.

    Like :class:`VirtineBoundary`, one cross is a full warm invocation
    through the real launcher -- context provisioning, entry crossing,
    a trivial hosted body, exit crossing, release -- not a sum of
    constants.  The mechanism's own cost classes (SIGSYS trap tax, IPC
    round trip, seccomp chain walk) are what make the rows differ.
    """

    def __init__(self, backend_name: str, host=None) -> None:
        from repro.host.backend import create_host
        from repro.runtime.image import ImageBuilder

        self.backend_name = backend_name
        self.system = self.SYSTEMS[backend_name]
        self.mechanism = self.MECHANISMS[backend_name]
        self.host = host if host is not None else create_host(backend_name)
        self.image = ImageBuilder().hosted(
            name=f"boundary:{backend_name}", entry=lambda env: 0, size=4096)
        # Warm the context pool so each cross measures steady state.
        self.host.launch(self.image, pooled=True, clean=CleanMode.ASYNC)

    SYSTEMS = {
        "sud": "SUD virtine",
        "container": "Container",
        "process": "Linux process",
        "thread": "Linux pthread",
    }
    MECHANISMS = {
        "sud": "SIGSYS trap + sched bounce",
        "container": "IPC + seccomp filter",
        "process": "IPC round trip",
        "thread": "function call",
    }

    def cross(self, clock: Clock | None = None) -> CrossingResult:
        """Perform one cross (defaults to the host's own clock)."""
        return super().cross(clock if clock is not None else self.host.clock)

    def _do_cross(self, clock: Clock) -> None:
        self.host.launch(self.image, pooled=True, clean=CleanMode.ASYNC)

    def creation_cycles(self) -> int:
        """Creating one context from scratch (the Figure 8 quantity)."""
        return int(self.host.backend_impl.creation_cycles())


def spectrum_mechanisms(wasp: Wasp | None = None) -> dict[str, BoundaryMechanism]:
    """The five-mechanism measured matrix, keyed by backend name.

    The KVM row is the classic :class:`VirtineBoundary`; the other four
    are :class:`BackendBoundary` rows over live backend hosts.  Shared
    by ``benchmarks/bench_table2_boundaries.py`` and the conformance
    suite's cost-ordering checks.
    """
    return {
        "kvm": VirtineBoundary(wasp),
        "sud": BackendBoundary("sud"),
        "container": BackendBoundary("container"),
        "process": BackendBoundary("process"),
        "thread": BackendBoundary("thread"),
    }


ALL_MECHANISMS = (
    WedgeBaseline,
    LwCBaseline,
    EnclosuresBaseline,
    SeCageBaseline,
    HodorBaseline,
)
