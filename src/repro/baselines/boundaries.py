"""Isolation-boundary crossing costs (Table 2).

The paper compares the cost of crossing an isolation boundary in prior
systems against virtines.  The prior systems are cost models calibrated
to their published numbers (we cannot run Wedge or Hodor here); the
virtine row is *measured* from this repository's own stack -- a pool
provision + ``KVM_RUN`` + exit, "measured from userspace on the host,
surrounding the KVM_RUN ioctl, thus incurring system call and
ring-switch overheads."

==============  ==========  ===================================
System          Latency     Boundary-cross mechanism
==============  ==========  ===================================
Wedge           ~60 us      sthread call
LwC             2.01 us     lwSwitch
Enclosures      0.9 us      custom syscall interface
SeCage          0.5 us      VMRUN/VMFUNC
Hodor           0.1 us      VMRUN/VMFUNC
Virtines        ~5 us       syscall interface + VMRUN
==============  ==========  ===================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clock import Clock
from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder
from repro.units import cycles_to_us, us_to_cycles
from repro.wasp.hypervisor import Wasp
from repro.wasp.pool import CleanMode


@dataclass(frozen=True)
class CrossingResult:
    """One measured/modelled boundary cross."""

    system: str
    mechanism: str
    cycles: float

    @property
    def latency_us(self) -> float:
        return cycles_to_us(self.cycles)


class BoundaryMechanism:
    """Base class: a way to cross an isolation boundary."""

    system = "abstract"
    mechanism = "abstract"
    #: The paper's published latency for this system, in microseconds.
    paper_latency_us: float = 0.0

    def cross(self, clock: Clock) -> CrossingResult:
        """Perform one boundary cross, charging the clock."""
        start = clock.cycles
        self._do_cross(clock)
        return CrossingResult(
            system=self.system, mechanism=self.mechanism, cycles=clock.cycles - start
        )

    def _do_cross(self, clock: Clock) -> None:
        clock.advance(us_to_cycles(self.paper_latency_us))


class WedgeBaseline(BoundaryMechanism):
    """Wedge [20]: sthread call (~60 us)."""

    system = "Wedge"
    mechanism = "sthread call"
    paper_latency_us = 60.0


class LwCBaseline(BoundaryMechanism):
    """Light-weight contexts [48]: lwSwitch (2.01 us)."""

    system = "LwC"
    mechanism = "lwSwitch"
    paper_latency_us = 2.01


class EnclosuresBaseline(BoundaryMechanism):
    """Enclosures [27]: custom syscall interface (0.9 us)."""

    system = "Enclosures"
    mechanism = "custom syscall interface"
    paper_latency_us = 0.9


class SeCageBaseline(BoundaryMechanism):
    """SeCage [51]: VMFUNC without a VMEXIT (0.5 us)."""

    system = "SeCage"
    mechanism = "VMRUN/VMFUNC"
    paper_latency_us = 0.5


class HodorBaseline(BoundaryMechanism):
    """Hodor [32]: VMFUNC without a VMEXIT (0.1 us)."""

    system = "Hodor"
    mechanism = "VMRUN/VMFUNC"
    paper_latency_us = 0.1


class VirtineBoundary(BoundaryMechanism):
    """Virtines: measured from this repo's own Wasp stack.

    One cross = provisioning a pooled shell, entering via ``KVM_RUN``
    (ioctl + ring transitions + vmrun), running to the immediate halt,
    exiting, and returning the shell (with snapshotted state, as the
    language extensions configure by default).
    """

    system = "Virtines"
    mechanism = "syscall interface + VMRUN"
    paper_latency_us = 5.0

    def __init__(self, wasp: Wasp | None = None) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        self.image = ImageBuilder().minimal(Mode.LONG64)
        # Warm the pool and capture the post-boot snapshot so each cross
        # measures the steady-state re-entry path.
        self.wasp.launch(self.image, use_snapshot=False)
        result = self.wasp.launch(self.image, use_snapshot=False, snapshot_key="boundary")
        del result

    def _do_cross(self, clock: Clock) -> None:
        self.wasp.launch(self.image, use_snapshot=False, clean=CleanMode.ASYNC)


ALL_MECHANISMS = (
    WedgeBaseline,
    LwCBaseline,
    EnclosuresBaseline,
    SeCageBaseline,
    HodorBaseline,
)
