"""A KVM device model (the ``/dev/kvm`` interface Wasp drives).

See :mod:`repro.kvm.device`.
"""

from repro.kvm.device import KVM, VMHandle, VcpuHandle

__all__ = ["KVM", "VMHandle", "VcpuHandle"]
