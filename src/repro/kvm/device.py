"""The KVM device model.

On Linux, each virtual context is "a device file which is manipulated by
Wasp using an ioctl" (Section 5.1).  This module models that interface:

* :meth:`KVM.create_vm` -- ``KVM_CREATE_VM``: allocates the in-kernel VM
  state (VMCB on AMD / VMCS on Intel).  This is the expensive step pooling
  avoids (Section 5.2).
* :meth:`VMHandle.set_user_memory_region` -- ``KVM_SET_USER_MEMORY_REGION``.
* :meth:`VMHandle.create_vcpu` -- ``KVM_CREATE_VCPU``.
* :meth:`VcpuHandle.run` -- ``KVM_RUN``: "a series of sanity checks
  followed by execution of the vmrun instruction" (Section 4.2), plus the
  user/kernel ring transitions of the ioctl itself.

Every call charges its cycle costs on the shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.hw.clock import Clock
from repro.hw.costs import COSTS, CostModel
from repro.hw.isa import Program
from repro.hw.jit import JitDomain
from repro.hw.vmx import ExitInfo, ExitReason, VirtualMachine
from repro.replay.stream import NO_RECORD, InterfaceRecorder
from repro.trace.tracer import NO_TRACE, Category, Tracer


class KvmError(Exception):
    """An invalid use of the KVM interface."""


class KVM:
    """The ``/dev/kvm`` system device."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel = COSTS,
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
        fast_paths: bool = True,
        recorder: InterfaceRecorder | None = None,
        jit: bool = True,
        jit_domain: JitDomain | None = None,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        self.tracer = tracer if tracer is not None else NO_TRACE
        #: Boundary-stream recorder forwarded to every VM (no-op default).
        self.recorder = recorder if recorder is not None else NO_RECORD
        #: Forwarded to every VirtualMachine this device creates.
        self.fast_paths = fast_paths
        #: Superblock-JIT domain shared by every VM of this device: pooled
        #: shells and snapshot restores re-attach the same per-image block
        #: caches, so later launches start with compiled blocks (warm
        #: start).  Device-scoped (not process-global) so same-seed runs
        #: are reproducible within one process.
        self.jit = bool(jit) and fast_paths
        self.jit_domain = (jit_domain if jit_domain is not None
                           else JitDomain()) if self.jit else None
        self.vms_created = 0
        #: VM fds released via ``VMHandle.close`` (leak accounting:
        #: ``vms_created - vms_closed`` is the live-handle population).
        self.vms_closed = 0

    def create_vm(self) -> "VMHandle":
        """``KVM_CREATE_VM``: allocate in-kernel VM state."""
        cost = self.costs.ioctl() + self.costs.KVM_CREATE_VM_BASE
        self.clock.advance(cost)
        self.tracer.component("KVM_CREATE_VM", cost, Category.VMM)
        self.recorder.devcall("KVM_CREATE_VM", cost)
        self.vms_created += 1
        return VMHandle(kvm=self)

    def _new_vm(self, size: int) -> VirtualMachine:
        """VM factory (the replay substrate overrides this)."""
        return VirtualMachine(memory_size=size, clock=self.clock,
                              costs=self.costs, tracer=self.tracer,
                              fast_paths=self.fast_paths,
                              recorder=self.recorder,
                              jit=self.jit, jit_domain=self.jit_domain)


class VMHandle:
    """A VM file descriptor returned by ``KVM_CREATE_VM``."""

    def __init__(self, kvm: KVM) -> None:
        self.kvm = kvm
        self.vm: VirtualMachine | None = None
        self.vcpu: VcpuHandle | None = None
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise KvmError("operation on a closed VM fd")

    def set_user_memory_region(self, size: int) -> None:
        """``KVM_SET_USER_MEMORY_REGION``: register guest memory."""
        self._check_open()
        if self.vm is not None:
            raise KvmError("memory region already registered")
        cost = self.kvm.costs.ioctl() + self.kvm.costs.KVM_SET_MEMORY_REGION
        self.kvm.clock.advance(cost)
        self.kvm.tracer.component("KVM_SET_USER_MEMORY_REGION", cost, Category.VMM)
        self.kvm.recorder.devcall("KVM_SET_USER_MEMORY_REGION", cost)
        self.vm = self.kvm._new_vm(size)

    def create_vcpu(self) -> "VcpuHandle":
        """``KVM_CREATE_VCPU``: allocate a vCPU."""
        self._check_open()
        if self.vm is None:
            raise KvmError("create_vcpu before set_user_memory_region")
        if self.vcpu is not None:
            raise KvmError("vCPU already created")
        cost = self.kvm.costs.ioctl() + self.kvm.costs.KVM_CREATE_VCPU
        self.kvm.clock.advance(cost)
        self.kvm.tracer.component("KVM_CREATE_VCPU", cost, Category.VMM)
        self.kvm.recorder.devcall("KVM_CREATE_VCPU", cost)
        self.vcpu = VcpuHandle(self)
        return self.vcpu

    def load_program(self, program: Program) -> None:
        """Copy a program image into guest memory (host-side memcpy)."""
        self._check_open()
        if self.vm is None:
            raise KvmError("load_program before set_user_memory_region")
        cost = self.kvm.costs.memcpy(len(program.image))
        self.kvm.clock.advance(cost)
        self.kvm.recorder.devcall("memcpy.image", cost)
        self.vm.load_program(program)

    def close(self) -> None:
        """Release the VM (host-side teardown is off the critical path)."""
        if not self.closed:
            self.kvm.vms_closed += 1
        self.closed = True


@dataclass
class VcpuHandle:
    """A vCPU file descriptor returned by ``KVM_CREATE_VCPU``."""

    handle: VMHandle

    @property
    def vm(self) -> VirtualMachine:
        vm = self.handle.vm
        if vm is None:  # pragma: no cover - guarded by create_vcpu
            raise KvmError("vCPU without memory region")
        return vm

    def run(self, max_steps: int = 50_000_000) -> ExitInfo:
        """``KVM_RUN``: ioctl + sanity checks + vmrun, until the next exit.

        The ring transitions of the ioctl are charged on both the way in
        and (implicitly, as part of the ioctl round trip) on the way out --
        this is why hypercall exits are "doubly expensive" relative to a
        bare world switch (Section 6.3).
        """
        self.handle._check_open()
        kvm = self.handle.kvm
        span = kvm.tracer.begin("KVM_RUN", Category.VMM)
        try:
            kvm.clock.advance(kvm.costs.ioctl() + kvm.costs.KVM_RUN_CHECKS)
            if kvm.fault_plan.draw(FaultSite.VCPU_RUN):
                # The ioctl returns -1 without ever entering the guest (the
                # ring transitions above were still paid).
                span.annotate(error="InjectedFault")
                raise kvm.fault_plan.fault(FaultSite.VCPU_RUN, "KVM_RUN aborted")
            info = self.vm.vmrun(max_steps=max_steps)
            if not isinstance(info.reason, ExitReason):
                # Fail closed: an exit reason outside the architectural
                # enum is hostile (or corrupt) guest state, not a host
                # bug -- classify it precisely, preserving the raw value.
                from repro.wasp.virtine import GuestFault

                span.annotate(error="GuestFault")
                raise GuestFault(
                    f"vCPU reported unknown vmexit reason {info.reason!r}; "
                    f"failing closed")
            span.annotate(exit_reason=info.reason.value)
            return info
        finally:
            kvm.tracer.end(span)

    def complete_io_in(self, dest: str, value: int) -> None:
        """Deliver the result of an ``in`` port read before re-entry."""
        self.vm.complete_io_in(dest, value)
