"""Cluster chaos: seeded failure injection with exactly-once recovery.

The SMP plane (:mod:`repro.cluster.smp`) proves the cluster is fast and
deterministic; this module proves it is *durable*.  A seeded
:class:`ChaosPlan` schedules three production failure modes against a
running cluster:

* **core crash** -- a core dies mid-run.  Results completed on it but
  not yet acknowledged (acks are batched, like any real completion
  queue) are lost with the core and re-executed on surviving cores;
* **store corruption** -- a chunk of the shared durable snapshot store
  rots.  The next restore detects the mismatch, falls back to a cold
  boot, and re-captures; the scrub repairs whatever rot restores never
  touched;
* **migration interruption** -- an image/snapshot transfer between
  cores is dropped mid-flight or tampered with; the tampered payload
  fails closed at the receive-side digest check
  (:class:`~repro.wasp.migration.TransferTampered`) and lands in the
  target supervisor's crash record.

Exactly-once semantics: every task carries an idempotency key; the
:class:`CompletionLedger` deduplicates completions at ack time, and the
:class:`EffectLedger` deduplicates *side effects* at apply time, so a
re-executed task neither loses its result nor double-applies its
effect.  :func:`check_invariants` asserts the contract -- no lost
results, no duplicated effects, store integrity intact, at least one
survivor -- and :meth:`ChaosReport.signature` is a sha256 over the
canonical outcome: identical seeds must produce byte-identical
recovery signatures.
"""

from __future__ import annotations

import enum
import hashlib
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.smp import VirtineCluster
from repro.faults import FaultPlan, FaultSite
from repro.runtime.image import ImageBuilder
from repro.store.cas import DurableSnapshotStore
from repro.store.journal import canonical_json
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.wasp.hypercall import Hypercall
from repro.wasp.migration import (
    Cluster as MigrationCluster,
    MigrationLink,
    TransferDropped,
    TransferTampered,
)
from repro.wasp.policy import BitmaskPolicy, VirtineConfig
from repro.wasp.virtine import HostFault


class ChaosKind(enum.Enum):
    """The failure modes the chaos plan can schedule."""

    CORE_CRASH = "core_crash"
    STORE_CORRUPTION = "store_corruption"
    MIGRATION_INTERRUPT = "migration_interrupt"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure: what, when (task-dispatch index), where."""

    kind: ChaosKind
    at_task: int
    core: int = 0
    #: MIGRATION_INTERRUPT only: tamper the payload instead of
    #: dropping the transfer.
    tamper: bool = False

    def to_dict(self) -> dict:
        return {"kind": self.kind.value, "at_task": self.at_task,
                "core": self.core, "tamper": self.tamper}


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, immutable schedule of chaos events."""

    seed: int
    events: tuple[ChaosEvent, ...]

    @classmethod
    def generate(cls, seed: int, cores: int, tasks: int,
                 events: int | None = None) -> "ChaosPlan":
        """Derive a deterministic schedule from ``seed``.

        Events land strictly after the first two dispatches (so a
        snapshot exists to corrupt and work exists to lose) and are
        spread over the remaining task indices.
        """
        rng = random.Random(f"chaos:{seed}")
        count = events if events is not None else max(3, tasks // 6)
        schedule = []
        for _ in range(count):
            kind = rng.choices(
                list(ChaosKind), weights=[40, 35, 25])[0]
            schedule.append(ChaosEvent(
                kind=kind,
                at_task=rng.randrange(2, max(3, tasks)),
                core=rng.randrange(cores),
                tamper=rng.random() < 0.5,
            ))
        schedule.sort(key=lambda e: (e.at_task, e.kind.value, e.core))
        return cls(seed=seed, events=tuple(schedule))

    def events_at(self, dispatch_index: int) -> tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.at_task == dispatch_index)


class EffectLedger:
    """Idempotent side-effect application, keyed by idempotency key.

    A re-executed task calls :meth:`apply` again; the duplicate is
    suppressed, so the externally visible effect happens exactly once.
    """

    def __init__(self) -> None:
        self.applied: dict[str, Any] = {}
        self.suppressed_duplicates = 0

    def apply(self, key: str, value: Any) -> bool:
        if key in self.applied:
            self.suppressed_duplicates += 1
            return False
        self.applied[key] = value
        return True


class CompletionLedger:
    """Batched, deduplicated completion acknowledgement.

    Completions buffer per core and are acknowledged in batches (the
    realistic failure window: a core that dies holding unacked
    completions loses them).  Acking a key twice is suppressed --
    exactly one acked result per idempotency key, ever.
    """

    def __init__(self) -> None:
        self.acked: dict[str, Any] = {}
        self._pending: dict[int, list[tuple[str, Any]]] = {}
        self.acks = 0
        self.duplicate_completions = 0

    def complete(self, core: int, key: str, value: Any) -> None:
        self._pending.setdefault(core, []).append((key, value))

    def pending(self, core: int) -> int:
        return len(self._pending.get(core, ()))

    def ack(self, core: int) -> int:
        """Flush the core's completion buffer; returns newly acked."""
        fresh = 0
        for key, value in self._pending.pop(core, []):
            if key in self.acked:
                self.duplicate_completions += 1
            else:
                self.acked[key] = value
                fresh += 1
        self.acks += fresh
        return fresh

    def lose(self, core: int) -> list[str]:
        """The core died: its unacked completions are gone.  Returns
        the lost idempotency keys (they need re-execution)."""
        return [key for key, _value in self._pending.pop(core, [])]


def _chaos_entry(effects: EffectLedger):
    """The chaos workload's hosted entry: snapshot-once, effect-once."""

    def entry(env):
        if not env.from_snapshot:
            env.charge(20_000)
            env.snapshot()
        key, value = env.args
        result = value * 3 + 1
        effects.apply(key, result)
        return result

    return entry


@dataclass
class ChaosReport:
    """The canonical outcome of one chaos run."""

    seed: int
    cores: int
    tasks: int
    fired: list[dict] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)
    acked: dict[str, Any] = field(default_factory=dict)
    effects: dict[str, Any] = field(default_factory=dict)
    dead_cores: list[int] = field(default_factory=list)
    reexecutions: int = 0
    suppressed_effects: int = 0
    duplicate_completions: int = 0
    interrupted_migrations: int = 0
    tampered_migrations: int = 0
    corrupted_chunks: int = 0
    snapshot_fallbacks: int = 0
    launch_failures: list[str] = field(default_factory=list)
    store_signature: str = ""
    store_counters: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    #: Merged telemetry snapshot payload (chaos ledger counters + the
    #: per-core registries + crash black boxes); None when telemetry is
    #: off, and then absent from the canonical dict -- PR-7 signatures
    #: of non-telemetry runs are unchanged.
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.launch_failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "cores": self.cores, "tasks": self.tasks,
            "fired": self.fired, "skipped": self.skipped,
            "acked": dict(sorted(self.acked.items())),
            "effects": dict(sorted(self.effects.items())),
            "dead_cores": sorted(self.dead_cores),
            "reexecutions": self.reexecutions,
            "suppressed_effects": self.suppressed_effects,
            "duplicate_completions": self.duplicate_completions,
            "interrupted_migrations": self.interrupted_migrations,
            "tampered_migrations": self.tampered_migrations,
            "corrupted_chunks": self.corrupted_chunks,
            "snapshot_fallbacks": self.snapshot_fallbacks,
            "launch_failures": self.launch_failures,
            "store_signature": self.store_signature,
            "store_counters": dict(sorted(self.store_counters.items())),
            "violations": self.violations,
            "ok": self.ok,
            **({"telemetry": self.telemetry}
               if self.telemetry is not None else {}),
        }

    def signature(self) -> str:
        """sha256 over the canonical outcome (identical seeds must
        produce byte-identical recovery signatures)."""
        return hashlib.sha256(canonical_json(self.to_dict())).hexdigest()


def check_invariants(
    tasks: int,
    completion: CompletionLedger,
    effects: EffectLedger,
    store: DurableSnapshotStore,
    live: set[int],
) -> list[str]:
    """The chaos-recovery contract, as a list of violations (empty =
    the run upheld exactly-once semantics and store integrity)."""
    violations: list[str] = []
    expected = {_task_key(i) for i in range(tasks)}
    lost = sorted(expected - set(completion.acked))
    if lost:
        violations.append(f"lost results: {lost}")
    phantom = sorted(set(completion.acked) - expected)
    if phantom:
        violations.append(f"phantom results: {phantom}")
    for key in sorted(expected & set(completion.acked)):
        if effects.applied.get(key) != completion.acked[key]:
            violations.append(
                f"effect/result divergence for {key}: "
                f"{effects.applied.get(key)!r} != {completion.acked[key]!r}"
            )
    missing_effects = sorted(expected - set(effects.applied))
    if missing_effects:
        violations.append(f"missing side effects: {missing_effects}")
    scrub = store.scrub(repair=False)
    if not scrub.clean:
        violations.append(
            f"store integrity: {len(scrub.corrupt_chunks)} corrupt chunks, "
            f"{len(scrub.missing_chunks)} missing chunks, "
            f"{scrub.refcount_repairs} refcount drift"
        )
    if not live:
        violations.append("no surviving cores")
    return violations


def _task_key(index: int) -> str:
    return f"task-{index:03d}"


def run_chaos(
    seed: int,
    cores: int = 4,
    tasks: int = 24,
    *,
    ack_batch: int = 3,
    plan: ChaosPlan | None = None,
    trace: bool = False,
    telemetry: bool = False,
) -> ChaosReport:
    """Run the seeded chaos workload and return its canonical report.

    ``tasks`` idempotent virtine launches round-robin over ``cores``
    supervised engines sharing one :class:`DurableSnapshotStore`, with
    the :class:`ChaosPlan`'s events fired at their scheduled dispatch
    indices.  Recovery is part of the run: lost completions re-execute
    on surviving cores, rot is scrubbed, and the invariant checker
    passes judgement at the end.

    With ``telemetry=True`` each core carries a registry, the chaos
    ledgers (re-executions, suppressed duplicate effects, duplicate
    acks, quarantined shells) are mirrored into ``chaos_*`` instruments,
    and the report gains a merged telemetry snapshot with per-core
    flight-recorder black boxes.  Off by default so PR-7 report
    signatures are unchanged.
    """
    plan = plan if plan is not None else ChaosPlan.generate(seed, cores, tasks)
    store = DurableSnapshotStore(gc_keep=8)
    cluster = VirtineCluster(cores, seed=seed, supervised=True, trace=trace,
                             snapshot_store=store, telemetry=telemetry)
    effects = EffectLedger()
    completion = CompletionLedger()
    image = ImageBuilder().hosted("chaos-job", _chaos_entry(effects))
    policy_config = VirtineConfig.allowing(Hypercall.SNAPSHOT)
    report = ChaosReport(seed=seed, cores=cores, tasks=tasks)
    live = set(range(cores))
    values = {_task_key(i): i for i in range(tasks)}
    queue: deque[str] = deque(_task_key(i) for i in range(tasks))
    rotation = 0
    dispatched = 0
    migration_faults = 0

    def fire(event: ChaosEvent) -> None:
        nonlocal migration_faults
        if event.kind is ChaosKind.CORE_CRASH:
            victim = event.core % cores
            if victim not in live or len(live) <= 1:
                report.skipped.append(event.to_dict())
                return
            live.discard(victim)
            report.dead_cores.append(victim)
            lost = completion.lose(victim)
            for key in lost:
                queue.append(key)
            report.reexecutions += len(lost)
            survivor = cluster.engines[min(live)]
            if survivor.supervisor is not None:
                survivor.supervisor.record_external_crash(
                    "chaos-job",
                    HostFault(
                        f"core {victim} crashed with {len(lost)} unacked "
                        f"completions"
                    ),
                )
        elif event.kind is ChaosKind.STORE_CORRUPTION:
            if store.corrupt_chunk() is None:
                report.skipped.append(event.to_dict())
                return
            report.corrupted_chunks += 1
        elif event.kind is ChaosKind.MIGRATION_INTERRUPT:
            if len(live) < 2:
                report.skipped.append(event.to_dict())
                return
            ordered = sorted(live)
            src = ordered[event.core % len(ordered)]
            dst = ordered[(event.core + 1) % len(ordered)]
            migration_faults += 1
            site = (FaultSite.MIGRATION_TAMPER if event.tamper
                    else FaultSite.MIGRATION_TRANSFER)
            fault_plan = FaultPlan(seed=seed * 1000 + migration_faults)
            fault_plan.fail(site, on={1})
            mig = MigrationCluster(link=MigrationLink(),
                                   fault_plan=fault_plan)
            source = mig.add_node(f"core{src}", wasp=cluster.engines[src].wasp)
            target = mig.add_node(f"core{dst}", wasp=cluster.engines[dst].wasp)
            try:
                mig.migrate(image, source, target)
            except TransferTampered:
                report.tampered_migrations += 1
            except TransferDropped:
                report.interrupted_migrations += 1
        report.fired.append(event.to_dict())

    while queue:
        for event in plan.events_at(dispatched):
            fire(event)
        if not live:
            break
        key = queue.popleft()
        dispatched += 1
        if key in completion.acked:
            continue  # idempotency key already satisfied
        ordered = sorted(live)
        core = ordered[rotation % len(ordered)]
        rotation += 1
        engine = cluster.engines[core]
        try:
            result = engine.launch(
                image, args=(key, values[key]),
                policy=BitmaskPolicy(policy_config),
            )
        except Exception as error:
            report.launch_failures.append(
                f"{key}: {type(error).__name__}: {error}")
            continue
        completion.complete(core, key, result.value)
        if completion.pending(core) >= ack_batch:
            completion.ack(core)

    # Events scheduled past the last dispatch still fire (a crash
    # during drain is the classic ack-loss window).
    for event in plan.events:
        if event.at_task >= dispatched and event.to_dict() not in report.fired \
                and event.to_dict() not in report.skipped:
            fire(event)
            for key in list(queue):
                queue.remove(key)
                if key not in completion.acked:
                    ordered = sorted(live)
                    if not ordered:
                        break
                    core = ordered[rotation % len(ordered)]
                    rotation += 1
                    try:
                        result = cluster.engines[core].launch(
                            image, args=(key, values[key]),
                            policy=BitmaskPolicy(policy_config),
                        )
                    except Exception as error:
                        report.launch_failures.append(
                            f"{key}: {type(error).__name__}: {error}")
                        continue
                    completion.complete(core, key, result.value)

    for core in sorted(live):
        completion.ack(core)

    store.scrub(repair=True)  # recovery scrub: repair surviving rot
    report.acked = dict(completion.acked)
    report.effects = dict(effects.applied)
    report.suppressed_effects = effects.suppressed_duplicates
    report.duplicate_completions = completion.duplicate_completions
    report.snapshot_fallbacks = sum(
        e.wasp.snapshot_fallbacks for e in cluster.engines)
    report.violations = check_invariants(tasks, completion, effects,
                                         store, live)
    report.store_signature = store.state_signature()
    report.store_counters = store.counters()
    if telemetry:
        report.telemetry = _chaos_telemetry(cluster, report)
    return report


def _chaos_telemetry(cluster: VirtineCluster, report: ChaosReport) -> dict:
    """Mirror the chaos ledgers into a registry and snapshot everything.

    The ledger counters live in an extra clock-less "main" registry so
    they merge with the per-core registries without claiming a core
    label; quarantined shells are summed across every engine's pools.
    """
    ledger = TelemetryRegistry()
    ledger.counter("chaos_reexecutions_total").inc(report.reexecutions)
    ledger.counter("chaos_suppressed_effects_total").inc(
        report.suppressed_effects)
    ledger.counter("chaos_duplicate_completions_total").inc(
        report.duplicate_completions)
    ledger.counter("chaos_corrupted_chunks_total").inc(
        report.corrupted_chunks)
    ledger.counter("chaos_tampered_migrations_total").inc(
        report.tampered_migrations)
    ledger.counter("chaos_interrupted_migrations_total").inc(
        report.interrupted_migrations)
    ledger.counter("chaos_snapshot_fallbacks_total").inc(
        report.snapshot_fallbacks)
    ledger.gauge("chaos_dead_cores").set(len(report.dead_cores))
    ledger.gauge("chaos_quarantined_shells").set(sum(
        pool.quarantines
        for engine in cluster.engines
        for pool in engine.wasp._pools.values()))
    snap = cluster.telemetry_snapshot(
        meta={"workload": "chaos", "tasks": report.tasks},
        black_boxes=True,
        extra=[ledger],
    )
    return snap.to_dict()
