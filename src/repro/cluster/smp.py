"""The deterministic SMP scale-out plane (Figure 9/10).

The paper measures virtine creation scaling near-linearly across cores:
"creation rates scale roughly linearly up to the physical core count"
(Section 6.2, Figures 9 and 10).  Here every simulated core is a full
per-core execution stack -- its own :class:`~repro.hw.clock.SimClock`,
host kernel, KVM device, shell pools, and tracer -- and a
:class:`~repro.hw.clock.LockstepScheduler` interleaves the cores
deterministically: the least-advanced core always runs next, ties
broken by a seeded rotation, and a starved core steals queued launches
from the deepest sibling queue.

Two levels of work-stealing exist:

* **task stealing** (here): queued launches migrate between core run
  queues, so a skewed placement still finishes near the balanced
  makespan;
* **shell stealing** (:class:`~repro.wasp.pool.ShardedShellPool`): a
  core's empty pool shard takes a cached shell from a sibling shard
  *within one clock domain* -- shells cannot migrate between cluster
  cores, because a shell's virtual machine is bound to its core's clock
  at construction.

Determinism contract: the same ``(seed, cores, quantum, workload)``
replays the identical interleaving, steal pattern, per-core cycle
totals, and (with ``trace=True``) a byte-identical Chrome trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import FaultPlan
from repro.host.kernel import HostKernel
from repro.hw.clock import LockstepScheduler, SimClock
from repro.hw.costs import COSTS, CostModel
from repro.runtime.image import VirtineImage
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.snapshot import TelemetrySnapshot, absorb_wasp
from repro.trace.export import cluster_chrome_json, cluster_chrome_trace
from repro.units import cycles_to_seconds
from repro.wasp.admission import AdmissionController
from repro.wasp.hypervisor import Wasp
from repro.wasp.supervisor import BreakerConfig, RetryPolicy, Supervisor
from repro.wasp.virtine import VirtineResult

#: Default scheduling quantum: roughly one pooled launch, so cores
#: re-interleave at launch granularity without re-picking every task.
DEFAULT_QUANTUM = 100_000


@dataclass
class CoreEngine:
    """One simulated core's full execution stack."""

    core_id: int
    clock: SimClock
    wasp: Wasp
    supervisor: Supervisor | None = None

    def launch(self, image: VirtineImage, **kwargs: Any) -> VirtineResult:
        if self.supervisor is not None:
            return self.supervisor.launch(image, **kwargs)
        return self.wasp.launch(image, **kwargs)


@dataclass(frozen=True)
class CoreStats:
    """Per-core accounting for one cluster run."""

    core_id: int
    tasks: int
    cycles: int
    launches: int
    pool_hits: int
    pool_misses: int


@dataclass
class ClusterReport:
    """Outcome of one :meth:`VirtineCluster.launch_many` batch."""

    #: Per-submission results, in submission order; ``None`` where the
    #: entry failed (see :attr:`failures`).
    results: list[VirtineResult | None]
    #: ``(submission index, exception repr)`` for failed entries.
    failures: list[tuple[int, str]]
    #: Which core ran each submission (in submission order).
    placements: list[int]
    per_core: list[CoreStats]
    #: Tasks that ran on a different core than they were submitted to.
    steals: int
    #: Cycles on the furthest-advanced core (simulated wall clock).
    makespan_cycles: int
    #: Aggregate cycles across every core (total machine work).
    total_cycles: int
    seed: int = 0

    @property
    def launches(self) -> int:
        return sum(1 for r in self.results if r is not None)

    @property
    def cores(self) -> int:
        return len(self.per_core)

    @property
    def throughput_per_s(self) -> float:
        """Completed launches per second of simulated wall time."""
        seconds = cycles_to_seconds(self.makespan_cycles)
        return self.launches / seconds if seconds > 0 else 0.0

    def signature(self) -> tuple:
        """The determinism check: everything a replay must reproduce."""
        return (
            tuple(r.cycles if r is not None else None for r in self.results),
            tuple(self.placements),
            tuple((s.core_id, s.tasks, s.cycles) for s in self.per_core),
            self.steals,
            self.makespan_cycles,
            self.total_cycles,
        )


class VirtineCluster:
    """N per-core Wasp engines under one lockstep scheduler.

    Every core owns a complete stack (clock, kernel, VMM, pools,
    tracer), so launches on different cores charge different clocks and
    genuinely overlap in simulated time; the scheduler's round-robin
    quantum decides the interleaving, reproducibly from ``seed``.

    ``supervised=True`` wraps each core's Wasp in a
    :class:`~repro.wasp.supervisor.Supervisor` so batched dispatch
    routes through the existing supervision plane (admission gate,
    breaker, retry); ``fault_plan_factory`` / ``admission_factory``
    build per-core fault plans and admission controllers from the core
    id, keeping per-core randomness streams independent and seeded.

    Snapshots are shared across cores by default (one
    :class:`~repro.wasp.snapshot.SnapshotStore`): a snapshot captured on
    one core restores on all of them, which is exactly the concurrent
    copy-on-write restore scenario the tests pin.
    """

    def __init__(
        self,
        cores: int = 2,
        *,
        seed: int = 0,
        quantum: int = DEFAULT_QUANTUM,
        costs: CostModel = COSTS,
        trace: bool = False,
        fast_paths: bool = True,
        supervised: bool = False,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        fault_plan_factory: Callable[[int], FaultPlan] | None = None,
        admission_factory: Callable[[int], AdmissionController] | None = None,
        share_snapshots: bool = True,
        snapshot_store: Any = None,
        telemetry: bool = False,
    ) -> None:
        self.seed = seed
        self.scheduler = LockstepScheduler(cores, quantum=quantum, seed=seed)
        self.engines: list[CoreEngine] = []
        #: ``snapshot_store`` pins the shared reset-state registry --
        #: pass a :class:`repro.store.cas.DurableSnapshotStore` and the
        #: whole cluster captures/restores through one journaled,
        #: content-addressed medium (implies ``share_snapshots``).
        shared_snapshots = snapshot_store
        for core_id, clock in enumerate(self.scheduler.clocks):
            plan = fault_plan_factory(core_id) if fault_plan_factory else None
            kernel = HostKernel(clock=clock, costs=costs, fault_plan=plan)
            #: One registry per clock domain: a core's instruments carry
            #: its ``core`` id into merged cluster snapshots.
            registry = (TelemetryRegistry(clock, core=core_id)
                        if telemetry else None)
            wasp = Wasp(kernel=kernel, costs=costs, fault_plan=plan,
                        trace=trace, fast_paths=fast_paths,
                        telemetry=registry)
            if snapshot_store is not None:
                wasp.snapshots = shared_snapshots
            elif share_snapshots:
                if shared_snapshots is None:
                    shared_snapshots = wasp.snapshots
                else:
                    wasp.snapshots = shared_snapshots
            supervisor = None
            if supervised:
                admission = (admission_factory(core_id)
                             if admission_factory else None)
                supervisor = Supervisor(wasp, retry=retry, breaker=breaker,
                                        admission=admission)
            self.engines.append(CoreEngine(
                core_id=core_id, clock=clock, wasp=wasp, supervisor=supervisor,
            ))

    @property
    def cores(self) -> int:
        return len(self.engines)

    # -- provisioning --------------------------------------------------------
    def prewarm(self, image: VirtineImage, per_core: int) -> None:
        """Populate every core's shell pool for ``image``'s bucket."""
        for engine in self.engines:
            wasp = engine.wasp
            wasp.pool_for(wasp.memory_size_for(image)).prewarm(per_core)

    # -- batched dispatch ----------------------------------------------------
    def launch_many(
        self,
        image: VirtineImage,
        args_list: list[Any],
        *,
        placement: str = "round_robin",
        **launch_kwargs: Any,
    ) -> ClusterReport:
        """Dispatch one launch per ``args_list`` entry across the cores.

        ``placement`` picks the initial queue assignment:

        * ``"round_robin"`` -- spread submissions across cores (rotated
          by the seed);
        * ``"packed"`` -- enqueue everything on core 0, so completion
          depends entirely on work-stealing.

        Failures (crashes, sheds, open breakers) are captured per entry;
        one poisoned request never sinks the batch.
        """
        n = len(args_list)
        results: list[VirtineResult | None] = [None] * n
        failures: list[tuple[int, str]] = []
        placements: list[int] = [-1] * n
        before = {e.core_id: e.clock.cycles for e in self.engines}
        launches_before = {e.core_id: e.wasp.launches for e in self.engines}

        def make_task(index: int, args: Any) -> Callable[[int], None]:
            def task(core: int) -> None:
                placements[index] = core
                engine = self.engines[core]
                try:
                    results[index] = engine.launch(image, args=args,
                                                   **launch_kwargs)
                except Exception as error:
                    failures.append((index, f"{type(error).__name__}: {error}"))
            return task

        tasks = [make_task(i, args) for i, args in enumerate(args_list)]
        if placement == "round_robin":
            self.scheduler.submit_round_robin(tasks)
        elif placement == "packed":
            for task in tasks:
                self.scheduler.submit(0, task)
        else:
            raise ValueError(f"unknown placement {placement!r}")
        steals_before = self.scheduler.steals
        self.scheduler.run()

        per_core = [
            CoreStats(
                core_id=e.core_id,
                tasks=placements.count(e.core_id),
                cycles=e.clock.cycles - before[e.core_id],
                launches=e.wasp.launches - launches_before[e.core_id],
                pool_hits=sum(p.hits for p in e.wasp._pools.values()),
                pool_misses=sum(p.misses for p in e.wasp._pools.values()),
            )
            for e in self.engines
        ]
        return ClusterReport(
            results=results,
            failures=sorted(failures),
            placements=placements,
            per_core=per_core,
            steals=self.scheduler.steals - steals_before,
            makespan_cycles=max(s.cycles for s in per_core),
            total_cycles=sum(s.cycles for s in per_core),
            seed=self.seed,
        )

    # -- observability -------------------------------------------------------
    def tracers(self) -> list:
        return [engine.wasp.tracer for engine in self.engines]

    def chrome_trace(self) -> dict:
        """Merged per-core timelines (core *i* on ``tid`` i+1)."""
        return cluster_chrome_trace(self.tracers())

    def chrome_json(self) -> str:
        """Byte-stable serialization of :meth:`chrome_trace`."""
        return cluster_chrome_json(self.tracers())

    def registries(self) -> list[TelemetryRegistry]:
        """Every core's telemetry registry (the shared no-op when off)."""
        return [engine.wasp.telemetry for engine in self.engines]

    def telemetry_snapshot(self, *, meta: dict | None = None,
                           black_boxes: bool = False,
                           extra: list[TelemetryRegistry] | None = None,
                           ) -> TelemetrySnapshot:
        """One merged, canonical snapshot of the whole cluster.

        Point-in-time gauges (pool depth, store occupancy, per-core
        cycles) are absorbed from each core's Wasp first, so the
        snapshot is complete without hot-path gauge updates.  ``extra``
        registries (e.g. the chaos ledger mirror) merge in after the
        per-core ones.
        """
        for engine in self.engines:
            absorb_wasp(engine.wasp.telemetry, engine.wasp)
        return TelemetrySnapshot.capture(
            self.registries() + list(extra or []),
            meta=dict(meta or {}, seed=self.seed, cores=self.cores),
            black_boxes=black_boxes,
        )


def parallel_creation(
    cores: int,
    launches: int,
    *,
    pooled: bool = True,
    seed: int = 0,
    prewarm: int | None = None,
    trace: bool = False,
    fast_paths: bool = True,
    image: VirtineImage | None = None,
) -> ClusterReport:
    """The Figure 9/10 workload: ``launches`` virtine creations on
    ``cores`` simulated cores.

    ``pooled=True`` is the "Wasp+C" series (shells drawn from prewarmed
    per-core pools); ``pooled=False`` is the scratch "Wasp" series
    (every creation pays full context construction).  Returns the
    :class:`ClusterReport`, whose ``throughput_per_s`` is the figure's
    y-axis.
    """
    from repro.runtime.image import ImageBuilder

    if image is None:
        image = ImageBuilder().hlt_only()
    cluster = VirtineCluster(cores, seed=seed, trace=trace,
                             fast_paths=fast_paths)
    if pooled:
        per_core = prewarm if prewarm is not None else -(-launches // cores)
        cluster.prewarm(image, min(per_core, 64))
    return cluster.launch_many(
        image, [None] * launches,
        use_snapshot=False, pooled=pooled,
    )
