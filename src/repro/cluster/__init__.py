"""``repro.cluster``: the deterministic SMP scale-out plane.

Public surface::

    from repro.cluster import VirtineCluster, parallel_creation
    from repro.hw.clock import SimClock, LockstepScheduler

    cluster = VirtineCluster(cores=8, seed=42)
    report = cluster.launch_many(image, [None] * 64)
    print(report.throughput_per_s, report.steals)
"""

from repro.cluster.chaos import (
    ChaosEvent,
    ChaosKind,
    ChaosPlan,
    ChaosReport,
    CompletionLedger,
    EffectLedger,
    check_invariants,
    run_chaos,
)
from repro.cluster.smp import (
    DEFAULT_QUANTUM,
    ClusterReport,
    CoreEngine,
    CoreStats,
    VirtineCluster,
    parallel_creation,
)
from repro.hw.clock import LockstepScheduler, SimClock

__all__ = [
    "ChaosEvent",
    "ChaosKind",
    "ChaosPlan",
    "ChaosReport",
    "CompletionLedger",
    "EffectLedger",
    "check_invariants",
    "run_chaos",
    "VirtineCluster",
    "ClusterReport",
    "CoreEngine",
    "CoreStats",
    "parallel_creation",
    "DEFAULT_QUANTUM",
    "LockstepScheduler",
    "SimClock",
]
