"""Deterministic fault injection for the Wasp stack.

Public surface::

    from repro.faults import FaultPlan, FaultSite, InjectedFault

    plan = FaultPlan(seed=7).fail(FaultSite.HOST_SYSCALL, rate=0.05)
    wasp = Wasp(fault_plan=plan)
"""

from repro.faults.plan import (
    NO_FAULTS,
    FaultEvent,
    FaultPlan,
    FaultSite,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "FaultEvent",
    "InjectedFault",
    "NO_FAULTS",
]
