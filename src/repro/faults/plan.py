"""The deterministic fault-injection plane.

Production micro-VM runtimes treat fault injection as a first-class
subsystem: Firecracker's test harness kills vCPU threads mid-run, and
record/replay methodologies (IRIS-style) demand that the *same* seed
reproduce the *same* failure sequence so a crash found once can be
replayed forever.  This module is that plane for the Wasp stack.

A :class:`FaultPlan` is configured with per-site failure rates and/or
explicit call indices, then threaded through the layers that can fail in
production:

* :data:`FaultSite.VCPU_RUN`        -- ``KVM_RUN`` aborts (EINTR storms,
  poisoned VMCB) in :mod:`repro.kvm.device`.
* :data:`FaultSite.HOST_SYSCALL`    -- ``EIO`` from the host filesystem
  in :mod:`repro.host.kernel`.
* :data:`FaultSite.SNAPSHOT_RESTORE`-- bit rot in a stored reset state,
  detected by checksum in :mod:`repro.wasp.snapshot`.
* :data:`FaultSite.MIGRATION_TRANSFER` -- a dropped image transfer in
  :mod:`repro.wasp.migration`.
* :data:`FaultSite.POOL_ACQUIRE`    -- a defective recycled shell in
  :mod:`repro.wasp.pool` (discarded and rebuilt, never handed out).
* :data:`FaultSite.BURST_ARRIVAL`   -- a thundering herd hitting the
  admission gate in :mod:`repro.wasp.admission` (phantom arrivals drain
  the image's token bucket).
* :data:`FaultSite.GUEST_STALL`     -- a guest wedging mid-hypercall in
  :mod:`repro.wasp.hypervisor` (cycles pass with no heartbeat, tripping
  the watchdog).
* :data:`FaultSite.STORE_GC_RACE`   -- the garbage collector winning the
  race between pool acquire and snapshot materialization in
  :mod:`repro.store.cas` (the fetch finds the reset state collected).
* :data:`FaultSite.MIGRATION_TAMPER` -- a migrated shell payload
  corrupted in flight in :mod:`repro.wasp.migration` (the receive-side
  digest check must fail closed).

Determinism: every site draws from its **own** RNG stream derived from
``(seed, site)``, so the nth decision at a site is a pure function of the
seed and n -- independent of how draws at *other* sites interleave.  Two
runs of the same workload under the same seed therefore produce
byte-identical fault traces (and, downstream, identical supervision
traces), which the tests assert.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultSite(enum.Enum):
    """Where in the stack a fault can be injected."""

    VCPU_RUN = "vcpu_run"
    HOST_SYSCALL = "host_syscall"
    SNAPSHOT_RESTORE = "snapshot_restore"
    MIGRATION_TRANSFER = "migration_transfer"
    POOL_ACQUIRE = "pool_acquire"
    BURST_ARRIVAL = "burst_arrival"
    GUEST_STALL = "guest_stall"
    STORE_GC_RACE = "store_gc_race"
    MIGRATION_TAMPER = "migration_tamper"


class InjectedFault(Exception):
    """A fault deliberately injected by a :class:`FaultPlan`.

    Raised by injection points that model hard host-plane failures (a
    ``KVM_RUN`` abort); soft sites (syscall EIO, snapshot corruption,
    pool defects) instead surface through their layer's native error
    channel so the blast radius matches the real failure mode.
    """

    def __init__(self, site: FaultSite, nth: int, detail: str = "") -> None:
        message = f"injected fault at {site.value} (call #{nth})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.site = site
        self.nth = nth
        self.detail = detail


@dataclass(frozen=True)
class FaultSpec:
    """When a site fires: an explicit schedule, a rate, or both."""

    #: Probability that any given draw fires (seeded, per-site stream).
    rate: float = 0.0
    #: Explicit 1-based call indices that always fire (checked first).
    on_calls: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: which site, on which of its calls."""

    site: FaultSite
    nth: int
    detail: str = ""


class FaultPlan:
    """A seedable, deterministic schedule of injected faults.

    Usage::

        plan = (FaultPlan(seed=7)
                .fail(FaultSite.HOST_SYSCALL, rate=0.05)
                .fail(FaultSite.SNAPSHOT_RESTORE, on={1}))
        wasp = Wasp(fault_plan=plan)

    Sites without a spec never fire and cost nothing, so an unconfigured
    plan (or :data:`NO_FAULTS`) is a true no-op on the hot path.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._specs: dict[FaultSite, FaultSpec] = {}
        self._rngs: dict[FaultSite, random.Random] = {}
        self._calls: dict[FaultSite, int] = {}
        #: Chronological record of every *fired* fault.
        self.trace: list[FaultEvent] = []

    # -- configuration -------------------------------------------------------
    def fail(
        self,
        site: FaultSite,
        rate: float = 0.0,
        on: set[int] | frozenset[int] | None = None,
    ) -> "FaultPlan":
        """Arm ``site`` with a failure rate and/or explicit call indices."""
        self._specs[site] = FaultSpec(rate=rate, on_calls=frozenset(on or ()))
        return self

    # -- the injection-point primitive ---------------------------------------
    def draw(self, site: FaultSite, detail: str = "") -> bool:
        """Decide whether ``site``'s next call fails; record it if so."""
        spec = self._specs.get(site)
        if spec is None:
            return False
        nth = self._calls.get(site, 0) + 1
        self._calls[site] = nth
        fired = nth in spec.on_calls
        if not fired and spec.rate > 0.0:
            rng = self._rngs.get(site)
            if rng is None:
                rng = random.Random(f"{self.seed}:{site.value}")
                self._rngs[site] = rng
            fired = rng.random() < spec.rate
        if fired:
            self.trace.append(FaultEvent(site=site, nth=nth, detail=detail))
        return fired

    def fault(self, site: FaultSite, detail: str = "") -> InjectedFault:
        """Build the exception for a fault :meth:`draw` just fired."""
        return InjectedFault(site, self._calls.get(site, 0), detail)

    # -- introspection -------------------------------------------------------
    def calls(self, site: FaultSite) -> int:
        """How many times ``site`` has been drawn."""
        return self._calls.get(site, 0)

    def fired(self, site: FaultSite | None = None) -> int:
        """How many faults have fired (optionally at one site)."""
        if site is None:
            return len(self.trace)
        return sum(1 for event in self.trace if event.site is site)

    def signature(self) -> tuple[tuple[str, int], ...]:
        """A hashable digest of the fired-fault trace (replay checks)."""
        return tuple((event.site.value, event.nth) for event in self.trace)


#: Shared inert plan: no specs, so every draw is a cheap early return.
NO_FAULTS = FaultPlan(seed=0)
