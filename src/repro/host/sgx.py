"""SGX enclave baseline (Figure 8, lower half).

The paper measures enclave creation ("SGX Create") and re-entry
("ECALL") on a Comet Lake machine; we model both as calibrated costs so
the creation-latency figure can include the comparison series.
"""

from __future__ import annotations

from repro.hw.clock import Clock
from repro.hw.costs import COSTS, CostModel


class SgxBaseline:
    """ECREATE/EADD/EINIT enclave creation and ECALL re-entry."""

    name = "SGX"

    def __init__(self, clock: Clock, costs: CostModel = COSTS) -> None:
        self.clock = clock
        self.costs = costs
        self._created = False

    def create(self) -> int:
        """Create a new enclave ("SGX Create"); returns elapsed cycles."""
        with self.clock.region() as region:
            self.clock.advance(self.costs.SGX_CREATE)
        self._created = True
        return region.elapsed

    def ecall(self) -> int:
        """Enter an existing enclave ("ECALL"); returns elapsed cycles."""
        if not self._created:
            raise RuntimeError("ECALL before enclave creation")
        with self.clock.region() as region:
            self.clock.advance(self.costs.SGX_ECALL)
        return region.elapsed
