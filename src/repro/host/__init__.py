"""Simulated host operating system.

The host kernel is the substrate underneath both the baselines (threads,
processes, containers) and Wasp's hypercall handlers (which validate guest
requests and then "re-create the calls on the host", Section 6.3).
"""

from repro.host.kernel import HostKernel
from repro.host.filesystem import InMemoryFilesystem
from repro.host.network import LoopbackNetwork

__all__ = [
    "HostKernel",
    "InMemoryFilesystem",
    "LoopbackNetwork",
    # Isolation backends (import from repro.host.backend to avoid the
    # module-load cycle with repro.wasp):
    # BackendHost, IsolationBackend, create_host, BACKEND_NAMES
]
