"""Syscall-User-Dispatch gated in-process virtines (the vk_isolate point).

Models mnvkd's ``vk_isolate`` design (SNIPPETS.md): the isolated
function runs *in the host process*, with

* a ``prctl(PR_SET_SYSCALL_USER_DISPATCH)``-registered selector byte
  deciding whether syscalls pass through or trap as SIGSYS,
* privileged memory (the scheduler's own pages) masked ``PROT_NONE``
  with ``mprotect`` while guest code runs, and
* every trapped syscall bouncing through a userland scheduler: SIGSYS
  handler re-enables syscalls, unmasks the privileged pages, hands
  control to the scheduler callback, then re-arms the gate on the way
  back in.

Creation is near zero (one prctl + one mprotect) -- this is the point of
the mechanism -- but *every* host interaction pays the trap/bounce/
sigreturn tax, the exact inverse of the virtine trade (expensive-ish
creation amortised by cheap crossings).  The gate is an explicit state
machine whose transitions *return* their cycle costs (the caller
charges the clock), so the live dispatch path and the Hypothesis suite
drive the very same object: re-enable-on-trap must never leave the gate
open after the bounce completes.
"""

from __future__ import annotations

import enum

from repro.host.backend import BackendCaps, BackendViolation, IsolationBackend, IsolationContext
from repro.hw.costs import CostModel
from repro.wasp.hypercall import Hypercall
from repro.wasp.virtine import Virtine


class SudViolation(BackendViolation):
    """Guest code broke the SUD contract (touched a masked privileged
    page, re-entered the trap handler, issued a syscall with the gate in
    an impossible state).  Maps to a GuestFault."""


class GateState(enum.Enum):
    """The per-thread SUD selector byte."""

    #: ``SYSCALL_USER_DISPATCH_BLOCK``: guest code is running; any
    #: syscall outside the allowed region traps as SIGSYS.
    BLOCK = "block"
    #: ``SYSCALL_USER_DISPATCH_ALLOW``: the scheduler/handler is running;
    #: syscalls pass straight through to the kernel.
    ALLOW = "allow"


class SudGate:
    """The selector-byte state machine, with privileged-page masking.

    One instance per context.  Every transition returns the cycles it
    costs (the caller advances the clock), keeping the state machine
    pure enough for property testing while the dispatch path charges
    the identical amounts.  The invariant the property tests pin: every
    completed transition leaves :attr:`open_for_guest_syscalls` False --
    a crash mid-bounce must not leave a window where guest code runs
    with syscalls enabled.
    """

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        self.state = GateState.ALLOW
        self.privileged_masked = False
        self.traps = 0
        self.violations = 0

    # -- lifecycle ---------------------------------------------------------
    def install(self) -> int:
        """``prctl(PR_SET_SYSCALL_USER_DISPATCH, PR_SYS_DISPATCH_ON)``."""
        self.state = GateState.ALLOW
        self.privileged_masked = False
        return self.costs.PRCTL_SUD_SETUP

    def enter_guest(self) -> int:
        """Mask privileged pages, flip the selector, run guest code."""
        if self.state is not GateState.ALLOW:
            self.violations += 1
            raise SudViolation("enter_guest with the gate already blocked")
        self.privileged_masked = True
        self.state = GateState.BLOCK
        return self.costs.MPROTECT_REGION + self.costs.SUD_SELECTOR_WRITE

    def trap_syscall(self) -> int:
        """A guest syscall hit the gate: SIGSYS, re-enable, unmask, bounce.

        This is the vk_isolate "signal handler re-enables syscalls ...
        and hands control over to a scheduler callback" sequence; the
        cost is the per-interaction tax of the whole mechanism.
        """
        if self.state is not GateState.BLOCK:
            # A SIGSYS with syscalls already allowed means the handler
            # re-entered itself: the gate was left open.
            self.violations += 1
            raise SudViolation("SIGSYS trap with the gate already open")
        self.traps += 1
        self.state = GateState.ALLOW
        self.privileged_masked = False
        return (self.costs.SIGSYS_TRAP + self.costs.SUD_SELECTOR_WRITE
                + self.costs.MPROTECT_REGION + self.costs.SCHED_BOUNCE)

    def resume_guest(self) -> int:
        """Scheduler hands control back: re-mask, re-arm, sigreturn."""
        if self.state is not GateState.ALLOW:
            self.violations += 1
            raise SudViolation("resume_guest without a completed bounce")
        self.privileged_masked = True
        self.state = GateState.BLOCK
        return (self.costs.MPROTECT_REGION + self.costs.SUD_SELECTOR_WRITE
                + self.costs.SIGRETURN)

    def exit_guest(self) -> int:
        """Guest code finished: unmask and leave the gate open."""
        cycles = 0
        if self.state is GateState.BLOCK:
            cycles += self.costs.SUD_SELECTOR_WRITE
            self.state = GateState.ALLOW
        if self.privileged_masked:
            cycles += self.costs.MPROTECT_REGION
            self.privileged_masked = False
        return cycles

    def touch_privileged(self) -> None:
        """Guest code dereferenced a masked privileged page: SIGSEGV."""
        self.violations += 1
        raise SudViolation("guest touched a PROT_NONE privileged page")

    @property
    def open_for_guest_syscalls(self) -> bool:
        """True when guest code could issue an unmediated syscall -- the
        property tests assert this is never observable after a bounce."""
        return self.state is GateState.ALLOW and self.privileged_masked


class SudBackend(IsolationBackend):
    """In-process SUD-gated contexts: near-zero creation, taxed crossings."""

    name = "sud"
    caps = BackendCaps(snapshot=False, pooled=False, in_process=True,
                       kill_on_violation=False)

    def creation_cycles(self) -> int:
        # prctl registration + the initial privileged-region mprotect.
        return self.costs.PRCTL_SUD_SETUP + self.costs.MPROTECT_REGION

    def teardown_cycles(self) -> int:
        # Dropping the dispatch registration is another prctl.
        return self.costs.PRCTL_SUD_SETUP

    def enter_cycles(self) -> int:
        return (self.costs.MPROTECT_REGION + self.costs.SUD_SELECTOR_WRITE
                + self.costs.SCHED_BOUNCE)

    def exit_cycles(self) -> int:
        return self.costs.SUD_SELECTOR_WRITE + self.costs.MPROTECT_REGION

    def gate_out_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        # The live gate performs the SIGSYS bounce; the returned cost is
        # what the dispatch path charges.
        gate = self._gate_of(virtine)
        if gate is None:
            return (self.costs.SIGSYS_TRAP + self.costs.SUD_SELECTOR_WRITE
                    + self.costs.MPROTECT_REGION + self.costs.SCHED_BOUNCE)
        return gate.trap_syscall()

    def gate_back_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        gate = self._gate_of(virtine)
        if gate is None:
            return (self.costs.MPROTECT_REGION + self.costs.SUD_SELECTOR_WRITE
                    + self.costs.SIGRETURN)
        return gate.resume_guest()

    @staticmethod
    def _gate_of(virtine: Virtine) -> SudGate | None:
        state = getattr(virtine.shell, "state", None)
        return state.get("gate") if state is not None else None

    # -- lifecycle ---------------------------------------------------------
    def create(self, memory_size: int = 4 * 1024 * 1024) -> IsolationContext:
        ctx = super().create(memory_size)
        # install()'s prctl cost is already inside creation_cycles(), so
        # the gate is built armed rather than charged twice.
        ctx.state["gate"] = SudGate(self.costs)
        return ctx

    def prepare_launch(self, virtine: Virtine) -> None:
        gate = virtine.shell.state["gate"]
        gate.state = GateState.ALLOW
        gate.privileged_masked = False
        # The host charges enter_cycles() right after this hook; the
        # gate transition here arms the selector without double-charging.
        gate.enter_guest()
