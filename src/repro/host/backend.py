"""First-class isolation backends: the Table 2 spectrum as one interface.

The paper positions virtines against processes, pthreads, and SGX
(Table 2); ROADMAP item 2 adds two more points on that spectrum --
mnvkd's ``vk_isolate`` (Syscall User Dispatch) and a namespace/seccomp
container.  Every mechanism answers the same four questions:

* what does *creating* an isolated context cost?
* what does *crossing into/out of* it cost?
* what does each *interposed host interaction* (the hypercall analogue)
  cost while inside?
* what happens on a *violation* -- and how does it map into the shared
  crash taxonomy (:class:`~repro.wasp.virtine.GuestFault` /
  :class:`~repro.wasp.virtine.PolicyKill` / ...)?

:class:`IsolationBackend` is that contract; :class:`BackendHost` is the
Wasp-shaped launcher that drives any backend through the *same* policy
gate, handler table, audit log, deadline plane, and taxonomy as the KVM
hypervisor -- which is what makes the cross-backend conformance suite
(``tests/conformance/``) meaningful: identical verdicts, different costs.

Backend selection is by name (``"sud" | "container" | "process" |
"thread"``; ``"kvm"`` selects the real :class:`~repro.wasp.hypervisor.
Wasp`) through :func:`create_host` and the ``@virtine(backend=...)``
decorator option.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.host.kernel import HostKernel
from repro.hw.clock import BackgroundAccountant
from repro.hw.costs import COSTS, CostModel
from repro.hw.memory import GuestMemory
from repro.replay.stream import NO_RECORD
from repro.runtime.image import VirtineImage
from repro.telemetry.registry import NO_TELEMETRY, TelemetryRegistry
from repro.trace.tracer import NO_TRACE, Category, Tracer
from repro.wasp.guestenv import GuestEnv, GuestExitRequested
from repro.wasp.handlers import CannedHandlers
from repro.wasp.hypercall import (
    Hypercall,
    HypercallDenied,
    HypercallError,
    dispatch_handler,
)
from repro.wasp.hypervisor import HOST_PLANE_ERRNOS
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.pool import CleanMode
from repro.wasp.virtine import (
    GuestFault,
    HostFault,
    PolicyKill,
    Virtine,
    VirtineCrash,
    VirtineResult,
    VirtineTimeout,
)

#: Every selectable backend, KVM included (the conformance matrix).
BACKEND_NAMES = ("kvm", "sud", "container", "process", "thread")

#: Default guest-memory size for a backend context: large enough for the
#: language extensions' marshalling windows (RET_AREA at 0x240000).
DEFAULT_CONTEXT_MEMORY = 4 * 1024 * 1024


class BackendViolation(Exception):
    """A backend-native isolation violation (mprotect trap, bad gate
    transition...).  :class:`BackendHost` maps it into the shared crash
    taxonomy as a :class:`~repro.wasp.virtine.GuestFault` -- the guest
    did something its mechanism forbids."""


class IsolationKill(BaseException):
    """An *uncatchable* mechanism-delivered kill (seccomp
    ``SECCOMP_RET_KILL_PROCESS`` semantics).

    Deliberately a ``BaseException``: guest code running ``except
    Exception`` cannot swallow it, exactly as a process cannot handle
    the SIGSYS that seccomp's kill action delivers.  The launch path
    converts it to the shared :class:`~repro.wasp.virtine.PolicyKill`
    verdict, so kill-on-violation backends classify identically to
    catch-and-deny ones.
    """

    def __init__(self, message: str, nr: Hypercall | None = None) -> None:
        super().__init__(message)
        self.nr = nr


@dataclass(frozen=True)
class BackendCaps:
    """What an isolation mechanism can and cannot do.

    Conformance tests gate on these instead of special-casing backend
    names: a divergence must be a *declared capability*, never an
    accident (the observable-divergence argument made testable).
    """

    #: Can capture/restore reset states (KVM only today).
    snapshot: bool = False
    #: Contexts are worth caching in a pool (creation is expensive).
    pooled: bool = True
    #: Shares the host address space (no hardware context of its own).
    in_process: bool = False
    #: A policy violation kills the context uncatchably (seccomp
    #: ``SECCOMP_RET_KILL``) instead of surfacing a catchable denial.
    kill_on_violation: bool = False


KVM_CAPS = BackendCaps(snapshot=True, pooled=True, in_process=False,
                       kill_on_violation=False)


def caps_of(host: Any) -> BackendCaps:
    """The capability flags of any launcher, Wasp included.

    :class:`BackendHost` carries its backend's caps directly; the KVM
    hypervisor predates the caps dataclass (and cannot import this
    module without a cycle), so its flags live in :data:`KVM_CAPS`.
    Conformance tests gate divergences on these, never on names.
    """
    return getattr(host, "caps", KVM_CAPS)


@dataclass
class IsolationContext:
    """One isolated execution context (the backend analogue of a
    :class:`~repro.wasp.pool.Shell`).

    Duck-types the parts of a shell the hosted path touches:
    ``ctx.vm.memory`` and ``ctx.vm.milestones`` (via the ``vm`` property
    returning the context itself), so :class:`~repro.wasp.guestenv.
    GuestEnv` runs unchanged on every backend.
    """

    backend: str
    memory: GuestMemory
    memory_size: int
    generation: int = 0
    #: Guest-recorded (marker, cycle) milestones, same as a VM's.
    milestones: list = field(default_factory=list)
    #: Backend-private state (SUD gate, seccomp filter, worker pid...).
    state: dict = field(default_factory=dict)
    closed: bool = False

    @property
    def vm(self) -> "IsolationContext":
        return self

    def reset(self) -> None:
        self.milestones.clear()

    def clear_memory(self) -> int:
        """Zero the context's memory; returns the memset cycle cost."""
        self.memory._data[:] = bytes(self.memory.size)
        self.memory._touched.clear()
        self.memory._dirty.clear()
        return int(self.memory.size * COSTS.MEMCPY_CYCLES_PER_BYTE)


class IsolationBackend:
    """The per-mechanism cost + lifecycle contract.

    Subclasses override the ``*_cycles`` cost classes (each one a
    distinct calibrated constant combination, per the timing-simulation
    argument) and, where the mechanism has native machinery, the
    lifecycle hooks.  All charging goes through the shared
    :class:`~repro.host.kernel.HostKernel` clock.
    """

    name = "abstract"
    caps = BackendCaps()

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel
        self.costs = kernel.costs
        self.clock = kernel.clock

    # -- cost classes (one per mechanism, never shared generics) ---------
    def creation_cycles(self) -> int:
        """Creating one context from scratch (the Figure 8 quantity)."""
        raise NotImplementedError

    def teardown_cycles(self) -> int:
        """Destroying a context (default: one syscall to reap it)."""
        return self.costs.syscall()

    def enter_cycles(self) -> int:
        """One-way transition from the host into the context."""
        raise NotImplementedError

    def exit_cycles(self) -> int:
        """One-way transition from the context back to the host."""
        raise NotImplementedError

    def crossing_cycles(self) -> int:
        """A full boundary crossing (the Table 2 quantity)."""
        return self.enter_cycles() + self.exit_cycles()

    def gate_out_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        """Interposed host-interaction cost, context -> host direction."""
        return self.exit_cycles()

    def gate_back_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        """Interposed host-interaction cost, host -> context direction."""
        return self.enter_cycles()

    # -- lifecycle --------------------------------------------------------
    def create(self, memory_size: int = DEFAULT_CONTEXT_MEMORY) -> IsolationContext:
        """Build one context, charging the creation cost class."""
        self.clock.advance(self.creation_cycles())
        return IsolationContext(
            backend=self.name,
            memory=GuestMemory(memory_size),
            memory_size=memory_size,
        )

    def destroy(self, ctx: IsolationContext) -> None:
        self.clock.advance(self.teardown_cycles())
        ctx.closed = True

    def prepare_launch(self, virtine: Virtine) -> None:
        """Per-launch setup hook (seccomp filter install, gate arming)."""

    def on_denied(self, virtine: Virtine, nr: Hypercall,
                  denied: HypercallDenied) -> None:
        """What a policy denial *does* on this mechanism.

        Default: re-raise the catchable denial (the KVM semantics).
        Kill-on-violation backends raise their uncatchable kill signal
        instead; either way the launch verdict is a
        :class:`~repro.wasp.virtine.PolicyKill`.
        """
        raise denied


class ContextPool:
    """A free list of reusable backend contexts (the shell-pool pattern).

    Mirrors :class:`~repro.wasp.pool.ShellPool`: pool hits cost only
    bookkeeping, crashed contexts are quarantined (synchronous scrub +
    generation bump) rather than blindly reinserted, and the
    :data:`~repro.faults.FaultSite.POOL_ACQUIRE` injection point models
    a cached context found defective.
    """

    def __init__(
        self,
        backend: IsolationBackend,
        memory_size: int = DEFAULT_CONTEXT_MEMORY,
        background: BackgroundAccountant | None = None,
        max_free: int = 64,
        fault_plan: FaultPlan | None = None,
        telemetry: TelemetryRegistry | None = None,
    ) -> None:
        self.backend = backend
        self.memory_size = memory_size
        self.background = background if background is not None else BackgroundAccountant()
        self.max_free = max_free
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
        self._free: list[IsolationContext] = []
        self.hits = 0
        self.misses = 0
        self.quarantines = 0
        self.defects = 0

    @property
    def clock(self):
        return self.backend.clock

    def acquire(self) -> IsolationContext:
        if self._free:
            if self.fault_plan.draw(FaultSite.POOL_ACQUIRE):
                self.clock.advance(self.backend.costs.POOL_BOOKKEEPING)
                bad = self._free.pop()
                self.backend.destroy(bad)
                self.defects += 1
                self.misses += 1
                self.telemetry.counter("pool_defects_total",
                                       backend=self.backend.name).inc()
                self.telemetry.counter("pool_misses_total",
                                       backend=self.backend.name).inc()
                return self.backend.create(self.memory_size)
            self.clock.advance(self.backend.costs.POOL_BOOKKEEPING)
            self.hits += 1
            self.telemetry.counter("pool_hits_total",
                                   backend=self.backend.name).inc()
            ctx = self._free.pop()
            ctx.generation += 1
            return ctx
        self.misses += 1
        self.telemetry.counter("pool_misses_total",
                               backend=self.backend.name).inc()
        return self.backend.create(self.memory_size)

    def create_scratch(self) -> IsolationContext:
        self.misses += 1
        self.telemetry.counter("pool_misses_total",
                               backend=self.backend.name).inc()
        return self.backend.create(self.memory_size)

    def release(self, ctx: IsolationContext,
                clean: CleanMode = CleanMode.SYNC) -> None:
        ctx.reset()
        if clean is CleanMode.SYNC:
            self.clock.advance(ctx.clear_memory())
        elif clean is CleanMode.ASYNC:
            self.background.charge(ctx.clear_memory())
        if len(self._free) < self.max_free:
            self.clock.advance(self.backend.costs.POOL_BOOKKEEPING)
            self._free.append(ctx)
        else:
            self.backend.destroy(ctx)

    def quarantine(self, ctx: IsolationContext) -> None:
        """Reclaim a context that hosted a crash: the scrub is a security
        boundary (never deferred), and the generation bump makes stale
        references to the pre-crash occupancy detectable."""
        self.quarantines += 1
        self.telemetry.counter("pool_quarantines_total",
                               backend=self.backend.name).inc()
        ctx.reset()
        self.clock.advance(ctx.clear_memory())
        ctx.generation += 1
        if len(self._free) < self.max_free:
            self.clock.advance(self.backend.costs.POOL_BOOKKEEPING)
            self._free.append(ctx)
        else:
            self.backend.destroy(ctx)

    def prewarm(self, count: int) -> None:
        target = min(count, self.max_free)
        while len(self._free) < target:
            self._free.append(self.backend.create(self.memory_size))

    @property
    def free_count(self) -> int:
        return len(self._free)


class BackendHost:
    """A Wasp-shaped launcher over any :class:`IsolationBackend`.

    Presents the surface the rest of the stack programs against --
    ``launch`` / ``clock`` / ``tracer`` / ``telemetry`` / ``supervisor``
    / ``charge_guest`` / ``dispatch_hosted_hypercall`` -- so hosted guest
    bodies, the ``@virtine`` decorator, and the supervision plane run
    unchanged while every boundary is priced (and every violation
    punished) by the selected mechanism.
    """

    def __init__(
        self,
        backend: IsolationBackend,
        *,
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
        telemetry: TelemetryRegistry | bool | None = None,
    ) -> None:
        self.backend_impl = backend
        self.backend = backend.name
        self.caps = backend.caps
        self.kernel = backend.kernel
        self.costs = backend.costs
        self.clock = backend.clock
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        if fault_plan is not None:
            self.kernel.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.tracer.bind(self.clock)
        if isinstance(telemetry, TelemetryRegistry):
            self.telemetry = telemetry
        elif telemetry:
            self.telemetry = TelemetryRegistry()
        else:
            self.telemetry = NO_TELEMETRY
        self.telemetry.bind(self.clock)
        self.recorder = NO_RECORD
        self.canned = CannedHandlers(self.kernel)
        self.background = BackgroundAccountant()
        self.pool = ContextPool(
            backend, background=self.background,
            fault_plan=self.fault_plan, telemetry=self.telemetry,
        )
        #: GuestEnv.can_snapshot reads this through the shared accessor.
        self.snapshot_capable = backend.caps.snapshot
        self.launches = 0
        self.timeouts = 0
        #: Attached supervision plane, if any (set by the Supervisor).
        self.supervisor = None
        self.watchdog = None

    # -- launch -----------------------------------------------------------
    def launch(
        self,
        image: VirtineImage,
        *,
        policy: Policy | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        resources: dict[int, Any] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        args: Any = None,
        pooled: bool | None = None,
        clean: CleanMode = CleanMode.SYNC,
        deadline_cycles: int | None = None,
        deadline: Any = None,
        **_wasp_compat: Any,
    ) -> VirtineResult:
        """Run ``image``'s hosted entry inside one isolated context.

        Accepts (and ignores) the Wasp-only keywords -- ``use_snapshot``,
        ``max_steps``, ``core``... -- so callers written against
        :meth:`Wasp.launch` work unmodified.  ``pooled`` defaults to the
        backend's declared capability: cheap-to-create mechanisms (SUD,
        threads) build scratch contexts; expensive ones draw from the
        pool.
        """
        if image.hosted_entry is None:
            raise VirtineCrash(
                f"backend {self.backend!r} hosts Python entries only; "
                f"image {image.name!r} has none"
            )
        if pooled is None:
            pooled = self.caps.pooled
        self.launches += 1
        region = self.clock.region()
        launch_span = self.tracer.begin(
            f"launch:{image.name}", Category.LAUNCH,
            image=image.name, backend=self.backend,
        )
        try:
            ctx = self.pool.acquire() if pooled else self.pool.create_scratch()
            virtine = self._make_virtine(image, ctx, policy, handlers,
                                         resources, allowed_paths)
            virtine.started_cycles = self.clock.cycles
            virtine.last_beat_cycles = self.clock.cycles
            if deadline is not None:
                virtine.deadline = int(deadline.expires_at)
            elif deadline_cycles is not None:
                virtine.deadline = self.clock.cycles + deadline_cycles
            crashed = False
            try:
                self.backend_impl.prepare_launch(virtine)
                self.clock.advance(self.backend_impl.enter_cycles())
                self._run_entry(virtine, args)
                self.clock.advance(self.backend_impl.exit_cycles())
                milestones = [(m.marker, m.cycles) for m in ctx.milestones]
            except BaseException:
                crashed = True
                raise
            finally:
                self._close_virtine_fds(virtine)
                if pooled:
                    if crashed:
                        self.pool.quarantine(ctx)
                    else:
                        self.pool.release(ctx, clean)
                else:
                    self.backend_impl.destroy(ctx)
        except BaseException as error:
            launch_span.annotate(error=type(error).__name__)
            self.telemetry.counter("launch_failures_total", image=image.name,
                                   error=type(error).__name__).inc()
            self.telemetry.record_flight("launch", "crash", image=image.name,
                                         error=type(error).__name__)
            raise
        finally:
            self.tracer.end(launch_span)
        elapsed = region.stop()
        self.telemetry.counter("launches_total", image=image.name,
                               backend=self.backend).inc()
        self.telemetry.histogram("launch_cycles", image=image.name).record(elapsed)
        return VirtineResult(
            value=virtine.result,
            exit_code=virtine.exit_code,
            cycles=elapsed,
            hypercall_count=virtine.hypercall_count,
            audit=virtine.audit,
            from_snapshot=False,
            milestones=milestones,
        )

    def launch_many(self, image: VirtineImage, args_list: list[Any], *,
                    return_exceptions: bool = False,
                    **launch_kwargs: Any) -> list[VirtineResult | BaseException]:
        """Batched dispatch, routing through an attached supervisor."""
        supervisor = self.supervisor
        launcher = supervisor.launch if supervisor is not None else self.launch
        results: list[VirtineResult | BaseException] = []
        for args in args_list:
            try:
                results.append(launcher(image, args=args, **launch_kwargs))
            except Exception as error:
                if not return_exceptions:
                    raise
                results.append(error)
        return results

    # -- internals --------------------------------------------------------
    def _make_virtine(
        self,
        image: VirtineImage,
        ctx: IsolationContext,
        policy: Policy | None,
        handlers: dict[Hypercall, Callable] | None,
        resources: dict[int, Any] | None,
        allowed_paths: tuple[str, ...] | None,
    ) -> Virtine:
        table = dict(self.canned.table())
        if handlers:
            table.update(handlers)
        virtine = Virtine(
            name=image.name,
            image=image,
            shell=ctx,
            policy=policy if policy is not None else DefaultDenyPolicy(),
            handlers=table,
            resources=dict(resources or {}),
            allowed_path_prefixes=allowed_paths,
        )
        virtine.policy.reset()
        return virtine

    def _run_entry(self, virtine: Virtine, args: Any) -> None:
        """Execute the hosted entry under the shared crash taxonomy.

        The except-chain is deliberately identical to the KVM
        hypervisor's hosted path: the conformance contract is that *who
        is at fault* classifies the same on every mechanism, whatever
        the mechanism-native signal was.
        """
        env = GuestEnv(self, virtine, args=args)
        try:
            with self.tracer.span("guest.hosted", Category.GUEST):
                virtine.result = virtine.image.hosted_entry(env)
        except GuestExitRequested:
            pass
        except HypercallDenied as error:
            raise PolicyKill(
                f"virtine {virtine.name!r} killed: {error}") from error
        except IsolationKill as error:
            raise PolicyKill(
                f"virtine {virtine.name!r} killed: {error}") from error
        except BackendViolation as error:
            # The mechanism's own trap (mprotect fault, gate misuse):
            # untrusted code did something forbidden -- a guest fault.
            raise GuestFault(
                f"virtine {virtine.name!r} faulted: {error}") from error
        except HypercallError as error:
            if error.errno_name in HOST_PLANE_ERRNOS:
                raise HostFault(
                    f"virtine {virtine.name!r} killed by host failure: {error}"
                ) from error
            raise GuestFault(
                f"virtine {virtine.name!r} killed: {error}") from error
        except VirtineCrash:
            raise
        except Exception as error:
            raise GuestFault(
                f"virtine {virtine.name!r} faulted: "
                f"{type(error).__name__}: {error}") from error

    # -- the GuestEnv surface (duck-typed Wasp) ---------------------------
    def exit_boundary_cycles(self) -> int:
        """EXIT pays only the outbound half of the crossing."""
        return int(self.backend_impl.exit_cycles())

    def dispatch_hosted_hypercall(self, virtine: Virtine, nr: Hypercall,
                                  args: tuple) -> Any:
        """One interposed host interaction: gate out, dispatch, gate back.

        Same policy gate, audit, deadline check, and heartbeat as the
        KVM path; the boundary cost classes and the consequence of a
        denial are the backend's.
        """
        backend = self.backend_impl
        boundary = self.telemetry.counter("component_cycles_total",
                                          component="hypercall.boundary")
        with self.tracer.span(f"hypercall:{nr.name}", Category.HYPERCALL):
            out_cost = backend.gate_out_cycles(virtine, nr)
            self.clock.advance(out_cost)
            boundary.inc(int(out_cost))
            virtine.hypercall_count += 1
            self.telemetry.counter("hypercalls_total", nr=nr.name).inc()
            if self.fault_plan.draw(FaultSite.GUEST_STALL, virtine.name):
                from repro.wasp.hypervisor import GUEST_STALL_CYCLES

                self.clock.advance(GUEST_STALL_CYCLES)
            self.check_deadline(virtine)
            self._beat(virtine)
            try:
                result = dispatch_handler(virtine, nr, args)
                self._charge_marshalling(args, result)
                return result
            except HypercallDenied as denied:
                backend.on_denied(virtine, nr, denied)
                raise
            finally:
                back_cost = backend.gate_back_cycles(virtine, nr)
                self.clock.advance(back_cost)
                boundary.inc(int(back_cost))

    def _charge_marshalling(self, args: tuple, result: Any) -> None:
        """Data crossing the boundary is copied, not shared (Section 3)."""
        moved = sum(len(a) for a in args if isinstance(a, (bytes, bytearray)))
        if isinstance(result, (bytes, bytearray)):
            moved += len(result)
        if moved:
            self.clock.advance(self.costs.memcpy(moved))

    def capture_snapshot(self, virtine: Virtine, payload: Any) -> None:
        """Snapshots are a declared capability; mechanisms without one
        reject the hypercall *typed* (ENOSYS -> GuestFault), never as an
        untyped surprise."""
        raise HypercallError(
            Hypercall.SNAPSHOT, "ENOSYS",
            f"backend {self.backend!r} cannot capture reset states",
        )

    def check_deadline(self, virtine: Virtine) -> None:
        """Kill a virtine past its cycle deadline (typed, like Wasp)."""
        if virtine.deadline is not None and self.clock.cycles > virtine.deadline:
            self.timeouts += 1
            consumed = self.clock.cycles - virtine.started_cycles
            self.telemetry.counter("timeouts_total", kind="deadline").inc()
            raise VirtineTimeout(
                f"virtine {virtine.name!r} exceeded its cycle deadline "
                f"({consumed:,} cycles consumed)",
                cycles=consumed,
            )
        if self.watchdog is not None:
            self.watchdog.check(virtine, self.clock.cycles)

    def charge_guest(self, virtine: Virtine, cycles: int) -> None:
        """Deadline-clamped guest compute charge (mirrors Wasp exactly:
        work is cancelled mid-compute, not finished on borrowed time)."""
        if cycles < 0:
            raise GuestFault(
                f"virtine {virtine.name!r} charged negative guest cycles "
                f"({cycles})"
            )
        if virtine.deadline is not None:
            remaining = virtine.deadline - self.clock.cycles
            if cycles > remaining:
                self.clock.advance(max(0, remaining) + 1)
                self.timeouts += 1
                self.telemetry.counter("timeouts_total",
                                       kind="mid_compute").inc()
                consumed = self.clock.cycles - virtine.started_cycles
                raise VirtineTimeout(
                    f"virtine {virtine.name!r} cancelled at its cycle "
                    f"deadline mid-compute ({consumed:,} cycles consumed)",
                    cycles=consumed,
                )
        self.clock.advance(cycles)
        self.check_deadline(virtine)

    def _beat(self, virtine: Virtine) -> None:
        virtine.last_beat_cycles = self.clock.cycles
        virtine.beats += 1

    def _close_virtine_fds(self, virtine: Virtine) -> None:
        """Close any host fds the virtine leaked (isolation hygiene --
        the conformance leak check asserts this reaches zero)."""
        for fd in list(virtine.owned_fds):
            try:
                self.kernel.fs.close(fd)
            except Exception:
                pass
            virtine.owned_fds.discard(fd)


def create_host(
    name: str,
    kernel: HostKernel | None = None,
    *,
    costs: CostModel = COSTS,
    seed: int = 0,
    fault_plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryRegistry | bool | None = None,
    **wasp_kwargs: Any,
):
    """Build a launcher for a named backend.

    ``"kvm"`` returns a full :class:`~repro.wasp.hypervisor.Wasp`; every
    other name returns a :class:`BackendHost` over that mechanism.  The
    ``seed`` parameterizes seeded backend state (the container's seccomp
    rule ordering).
    """
    if name == "kvm":
        from repro.wasp.hypervisor import Wasp

        return Wasp(kernel=kernel, costs=costs, fault_plan=fault_plan,
                    tracer=tracer, telemetry=telemetry, **wasp_kwargs)
    if kernel is None:
        kernel = HostKernel(costs=costs, fault_plan=fault_plan)
    if name == "sud":
        from repro.host.sud import SudBackend

        backend: IsolationBackend = SudBackend(kernel)
    elif name == "container":
        from repro.host.container import ContainerBackend

        backend = ContainerBackend(kernel, seed=seed)
    elif name == "process":
        from repro.host.process import ProcessBackend

        backend = ProcessBackend(kernel)
    elif name == "thread":
        from repro.host.threads import ThreadBackend

        backend = ThreadBackend(kernel)
    else:
        raise ValueError(
            f"unknown isolation backend {name!r} (use one of {BACKEND_NAMES})")
    return BackendHost(backend, fault_plan=fault_plan, tracer=tracer,
                       telemetry=telemetry)
