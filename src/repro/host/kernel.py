"""The simulated host kernel.

Owns the clock, the filesystem, and the loopback network, and charges
syscall costs for every entry from userspace.  Wasp's hypercall handlers
delegate here after validating guest arguments ("a validated read() will
turn into a read() on the host filesystem", Section 6.3).
"""

from __future__ import annotations

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.hw.clock import Clock
from repro.hw.costs import COSTS, CostModel
from repro.host.filesystem import FsError, InMemoryFilesystem, O_RDONLY, StatResult
from repro.host.network import Listener, LoopbackNetwork, Socket


class HostKernel:
    """Host kernel: syscall surface + cost accounting."""

    def __init__(
        self,
        clock: Clock | None = None,
        costs: CostModel = COSTS,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.costs = costs
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        self.fs = InMemoryFilesystem()
        self.net = LoopbackNetwork()
        self.syscall_count = 0

    # -- accounting ---------------------------------------------------------
    def _syscall(self, body_extra: int = 0) -> None:
        self.clock.advance(self.costs.syscall() + body_extra)
        self.syscall_count += 1

    def _maybe_io_fault(self, op: str) -> None:
        """The filesystem-syscall fault injection point (disk EIO).

        A failed syscall still pays its ring transitions: the fault
        charges one ordinary syscall round trip before surfacing.
        """
        if self.fault_plan.draw(FaultSite.HOST_SYSCALL, op):
            self._syscall()
            raise FsError("EIO", f"injected host I/O fault during {op}")

    # -- filesystem syscalls ---------------------------------------------------
    def sys_open(self, path: str, flags: int = O_RDONLY) -> int:
        self._maybe_io_fault("open")
        self._syscall()
        return self.fs.open(path, flags)

    def sys_read(self, fd: int, count: int) -> bytes:
        self._maybe_io_fault("read")
        data = self.fs.read(fd, count)
        # Copy-out cost scales with the transfer size.
        self._syscall(self.costs.memcpy(len(data)))
        return data

    def sys_write(self, fd: int, data: bytes) -> int:
        self._maybe_io_fault("write")
        self._syscall(self.costs.memcpy(len(data)))
        return self.fs.write(fd, data)

    def sys_stat(self, path: str) -> StatResult:
        self._maybe_io_fault("stat")
        self._syscall()
        return self.fs.stat(path)

    def sys_close(self, fd: int) -> None:
        self._syscall()
        self.fs.close(fd)

    # -- network syscalls ----------------------------------------------------------
    def sys_listen(self, port: int) -> Listener:
        self._syscall()
        return self.net.listen(port)

    def sys_accept(self, listener: Listener) -> Socket:
        self._syscall()
        return self.net.accept(listener)

    def sys_connect(self, port: int) -> Socket:
        self._syscall(self.costs.LOOPBACK_LATENCY)
        return self.net.connect(port)

    def sys_send(self, sock: Socket, data: bytes) -> int:
        self._syscall(self.costs.memcpy(len(data)) + self.costs.LOOPBACK_LATENCY)
        return sock.send(data)

    def sys_recv(self, sock: Socket, max_bytes: int) -> bytes:
        data = sock.recv(max_bytes)
        self._syscall(self.costs.memcpy(len(data)))
        return data

    def sys_sock_close(self, sock: Socket) -> None:
        self._syscall()
        sock.close()

    # -- execution-context creation baselines (Figures 2 and 8) -------------------
    def pthread_create_join(self) -> None:
        """Create a thread and immediately join it ("Linux pthread")."""
        self.clock.advance(self.costs.PTHREAD_CREATE_JOIN)

    def spawn_process(self) -> None:
        """fork+exec a minimal process ("Linux process")."""
        self.clock.advance(self.costs.PROCESS_SPAWN)

    def null_function_call(self) -> None:
        """Call and return from a null function ("function")."""
        self.clock.advance(self.costs.FUNCTION_CALL)
