"""The simulated host kernel.

Owns the clock, the filesystem, and the loopback network, and charges
syscall costs for every entry from userspace.  Wasp's hypercall handlers
delegate here after validating guest arguments ("a validated read() will
turn into a read() on the host filesystem", Section 6.3).
"""

from __future__ import annotations

from repro.hw.clock import Clock
from repro.hw.costs import COSTS, CostModel
from repro.host.filesystem import InMemoryFilesystem, O_RDONLY, StatResult
from repro.host.network import Listener, LoopbackNetwork, Socket


class HostKernel:
    """Host kernel: syscall surface + cost accounting."""

    def __init__(self, clock: Clock | None = None, costs: CostModel = COSTS) -> None:
        self.clock = clock if clock is not None else Clock()
        self.costs = costs
        self.fs = InMemoryFilesystem()
        self.net = LoopbackNetwork()
        self.syscall_count = 0

    # -- accounting ---------------------------------------------------------
    def _syscall(self, body_extra: int = 0) -> None:
        self.clock.advance(self.costs.syscall() + body_extra)
        self.syscall_count += 1

    # -- filesystem syscalls ---------------------------------------------------
    def sys_open(self, path: str, flags: int = O_RDONLY) -> int:
        self._syscall()
        return self.fs.open(path, flags)

    def sys_read(self, fd: int, count: int) -> bytes:
        data = self.fs.read(fd, count)
        # Copy-out cost scales with the transfer size.
        self._syscall(self.costs.memcpy(len(data)))
        return data

    def sys_write(self, fd: int, data: bytes) -> int:
        self._syscall(self.costs.memcpy(len(data)))
        return self.fs.write(fd, data)

    def sys_stat(self, path: str) -> StatResult:
        self._syscall()
        return self.fs.stat(path)

    def sys_close(self, fd: int) -> None:
        self._syscall()
        self.fs.close(fd)

    # -- network syscalls ----------------------------------------------------------
    def sys_listen(self, port: int) -> Listener:
        self._syscall()
        return self.net.listen(port)

    def sys_accept(self, listener: Listener) -> Socket:
        self._syscall()
        return self.net.accept(listener)

    def sys_connect(self, port: int) -> Socket:
        self._syscall(self.costs.LOOPBACK_LATENCY)
        return self.net.connect(port)

    def sys_send(self, sock: Socket, data: bytes) -> int:
        self._syscall(self.costs.memcpy(len(data)) + self.costs.LOOPBACK_LATENCY)
        return sock.send(data)

    def sys_recv(self, sock: Socket, max_bytes: int) -> bytes:
        data = sock.recv(max_bytes)
        self._syscall(self.costs.memcpy(len(data)))
        return data

    def sys_sock_close(self, sock: Socket) -> None:
        self._syscall()
        sock.close()

    # -- execution-context creation baselines (Figures 2 and 8) -------------------
    def pthread_create_join(self) -> None:
        """Create a thread and immediately join it ("Linux pthread")."""
        self.clock.advance(self.costs.PTHREAD_CREATE_JOIN)

    def spawn_process(self) -> None:
        """fork+exec a minimal process ("Linux process")."""
        self.clock.advance(self.costs.PROCESS_SPAWN)

    def null_function_call(self) -> None:
        """Call and return from a null function ("function")."""
        self.clock.advance(self.costs.FUNCTION_CALL)
