"""Process isolation backend + the Figure 8 creation baselines.

A process context is the classic isolation unit: fork+exec creation,
address-space separation for free, and every interposed interaction
paying an IPC round trip (two syscalls plus two scheduler switches).
The container runtime used by the serverless experiments layers
namespace/cgroup/rootfs setup on top (see :mod:`repro.host.container`
for the full sandbox backend).

Both legacy baseline classes (:class:`ProcessBaseline`,
:class:`ContainerRuntime`) now charge through the shared
:class:`~repro.host.backend.IsolationBackend` cost model instead of
hand-rolling clock math, so the Figure 8 / Table 2 rows and the live
backends can never drift apart.
"""

from __future__ import annotations

from repro.host.backend import BackendCaps, IsolationBackend
from repro.host.kernel import HostKernel
from repro.wasp.hypercall import Hypercall
from repro.wasp.virtine import Virtine


class ProcessBackend(IsolationBackend):
    """fork+exec worker processes: expensive creation, IPC crossings."""

    name = "process"
    caps = BackendCaps(snapshot=False, pooled=True, in_process=False,
                       kill_on_violation=False)

    def creation_cycles(self) -> int:
        return int(self.costs.PROCESS_SPAWN)

    def teardown_cycles(self) -> int:
        # waitpid + the switch back from the dying child.
        return self.costs.syscall() + self.costs.CONTEXT_SWITCH

    def enter_cycles(self) -> int:
        # Write the request into the worker's pipe, switch onto it.
        return self.costs.syscall() + self.costs.CONTEXT_SWITCH

    def exit_cycles(self) -> int:
        # Switch back, read the response.
        return self.costs.CONTEXT_SWITCH + self.costs.syscall()

    def gate_out_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        return self.exit_cycles()

    def gate_back_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        return self.enter_cycles()


class ProcessBaseline:
    """fork+exec of a minimal process ("Linux process", Figure 8)."""

    name = "Linux process"

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel
        self._backend = ProcessBackend(kernel)

    def spawn(self) -> int:
        """Spawn one process; returns elapsed cycles."""
        with self.kernel.clock.region() as region:
            self.kernel.clock.advance(self._backend.creation_cycles())
        return region.elapsed


class ContainerRuntime:
    """A container engine: expensive cold creation, cheap warm reuse.

    Cold creation is the full sandbox build (process + namespaces +
    cgroup + rootfs + filter load) plus the engine-level image/runtime
    overhead (``CONTAINER_EXTRA`` -- what gives container serverless its
    Figure 15 cold-start problem); warm dispatch is the sandbox's IPC
    crossing.
    """

    name = "container"

    def __init__(self, kernel: HostKernel) -> None:
        from repro.host.container import ContainerBackend

        self.kernel = kernel
        self._backend = ContainerBackend(kernel)
        self.cold_starts = 0
        self.warm_starts = 0

    def cold_create(self) -> int:
        """Create a container from scratch (sandbox + engine overhead)."""
        with self.kernel.clock.region() as region:
            self.kernel.clock.advance(self._backend.creation_cycles())
            self.kernel.clock.advance(self.kernel.costs.CONTAINER_EXTRA)
        self.cold_starts += 1
        return region.elapsed

    def warm_invoke(self) -> int:
        """Dispatch into an already-running container (IPC round trip)."""
        with self.kernel.clock.region() as region:
            self.kernel.clock.advance(self._backend.crossing_cycles())
        self.warm_starts += 1
        return region.elapsed
