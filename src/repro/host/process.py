"""Process- and container-creation baselines (Figure 8 / Section 7.1).

A container is modelled as a process plus namespace/cgroup/rootfs setup;
the extra cost is what gives container-based serverless platforms their
cold-start problem (Figure 15, and [21]'s motivation).
"""

from __future__ import annotations

from repro.host.kernel import HostKernel


class ProcessBaseline:
    """fork+exec of a minimal process."""

    name = "Linux process"

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel

    def spawn(self) -> int:
        """Spawn one process; returns elapsed cycles."""
        with self.kernel.clock.region() as region:
            self.kernel.spawn_process()
        return region.elapsed


class ContainerRuntime:
    """A container engine: expensive cold creation, cheap warm reuse."""

    name = "container"

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel
        self.cold_starts = 0
        self.warm_starts = 0

    def cold_create(self) -> int:
        """Create a container from scratch (process + isolation setup)."""
        with self.kernel.clock.region() as region:
            self.kernel.spawn_process()
            self.kernel.clock.advance(self.kernel.costs.CONTAINER_EXTRA)
        self.cold_starts += 1
        return region.elapsed

    def warm_invoke(self) -> int:
        """Dispatch into an already-running container (IPC round trip)."""
        with self.kernel.clock.region() as region:
            # Two syscalls: write the request, read the response.
            self.kernel.clock.advance(2 * self.kernel.costs.syscall())
        self.warm_starts += 1
        return region.elapsed
