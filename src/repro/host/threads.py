"""Thread-creation baseline ("Linux pthread", Figures 2 and 8).

Kept as its own small abstraction so the creation-latency benchmark can
treat every execution context uniformly.
"""

from __future__ import annotations

from repro.host.kernel import HostKernel


class PthreadBaseline:
    """``pthread_create`` followed by ``pthread_join``."""

    name = "Linux pthread"

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel

    def create_and_join(self) -> int:
        """Run one create/join round trip; returns elapsed cycles."""
        with self.kernel.clock.region() as region:
            self.kernel.pthread_create_join()
        return region.elapsed
