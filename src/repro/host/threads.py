"""Thread isolation backend ("Linux pthread", Figures 2 and 8).

Threads are the *weakest* point on the spectrum: they share the host
address space, so a "crossing" is just a function call and the only
isolation is conventional.  Kept as a first-class
:class:`~repro.host.backend.IsolationBackend` anyway so the conformance
suite can demonstrate that the *policy plane* (default-deny hypercalls,
audit, taxonomy) holds even where the mechanism provides nothing -- and
so Table 2 has its cheap-crossing anchor.
"""

from __future__ import annotations

from repro.host.backend import BackendCaps, IsolationBackend
from repro.host.kernel import HostKernel
from repro.wasp.hypercall import Hypercall
from repro.wasp.virtine import Virtine


class ThreadBackend(IsolationBackend):
    """pthread contexts: cheap creation, function-call crossings."""

    name = "thread"
    caps = BackendCaps(snapshot=False, pooled=False, in_process=True,
                       kill_on_violation=False)

    def creation_cycles(self) -> int:
        return self.costs.PTHREAD_CREATE_JOIN

    def teardown_cycles(self) -> int:
        # The join half is already in PTHREAD_CREATE_JOIN; detached
        # teardown is a free-list push.
        return self.costs.POOL_BOOKKEEPING

    def enter_cycles(self) -> int:
        return self.costs.FUNCTION_CALL

    def exit_cycles(self) -> int:
        return self.costs.FUNCTION_CALL

    def gate_out_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        return self.costs.FUNCTION_CALL

    def gate_back_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        return self.costs.FUNCTION_CALL


class PthreadBaseline:
    """``pthread_create`` followed by ``pthread_join``."""

    name = "Linux pthread"

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel
        self._backend = ThreadBackend(kernel)

    def create_and_join(self) -> int:
        """Run one create/join round trip; returns elapsed cycles."""
        with self.kernel.clock.region() as region:
            self.kernel.clock.advance(self._backend.creation_cycles())
        return region.elapsed
