"""Namespace/seccomp container sandbox (the booyum point on the spectrum).

Models the booyum-style sandbox from SNIPPETS.md: a fresh process
cloned into its own mount/PID/net/IPC/UTS namespaces, a cgroup, a
``pivot_root``-ed minimal rootfs, and a seccomp-BPF filter compiled from
the virtine's hypercall policy.  Creation is mid-range (cheaper than a
full container image pull, far dearer than a pthread or a pooled
virtine shell); each interposed interaction pays an IPC round trip into
the sandboxed process plus the seccomp chain walk; and a policy
violation is *terminal*: seccomp's kill action delivers an uncatchable
SIGSYS, modelled as :class:`~repro.host.backend.IsolationKill` so guest
``except Exception`` blocks cannot swallow it.  The launch verdict is
the same :class:`~repro.wasp.virtine.PolicyKill` every other backend
produces -- the conformance contract.

The filter itself is an explicit little state machine
(:class:`SeccompFilter`): rules are laid out in a *seeded* deterministic
order, evaluation walks the chain charging per-rule costs, and the
Hypothesis suite drives it to pin determinism and policy agreement.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.host.backend import BackendCaps, IsolationBackend, IsolationContext, IsolationKill
from repro.host.kernel import HostKernel
from repro.wasp.hypercall import Hypercall, HypercallDenied
from repro.wasp.policy import BitmaskPolicy, DefaultDenyPolicy, PermissivePolicy, Policy
from repro.wasp.virtine import Virtine

#: Namespaces the sandbox unshares (booyum uses exactly this set).
NAMESPACES = ("mnt", "pid", "net", "ipc", "uts")


class SeccompKill(IsolationKill):
    """SECCOMP_RET_KILL_PROCESS: the violating sandbox dies, uncatchably."""


class SeccompAction(enum.Enum):
    """What a matched rule (or the default) does to the syscall."""

    ALLOW = "allow"
    KILL = "kill"


@dataclass(frozen=True)
class SeccompRule:
    """One BPF chain entry: match a syscall number, take an action."""

    nr: Hypercall
    action: SeccompAction


class SeccompFilter:
    """A compiled seccomp-BPF program for one virtine's policy.

    Static policies (default-deny, permissive, bitmask) compile to a
    fixed rule chain whose *order* is seeded-shuffled -- deterministic
    under the same seed, different across seeds, and never semantically
    significant (each number appears once).  Stateful policies
    (one-shot, dynamic-disable) cannot be frozen into a chain; they
    compile to a dynamic filter that charges a full chain walk and
    defers the verdict to the live policy object, exactly as a
    user-notification seccomp filter would bounce to a supervisor.
    """

    def __init__(self, rules: list[SeccompRule], costs,
                 default_action: SeccompAction = SeccompAction.KILL,
                 dynamic: bool = False) -> None:
        self.rules = list(rules)
        self.costs = costs
        self.default_action = default_action
        #: True when the chain cannot answer alone and the live policy
        #: object is consulted (stateful policies).
        self.dynamic = dynamic
        self.evaluations = 0

    @classmethod
    def from_policy(cls, policy: Policy, costs, seed: int = 0) -> "SeccompFilter":
        """Compile a policy into a chain (seeded deterministic layout)."""
        static = isinstance(policy, (DefaultDenyPolicy, PermissivePolicy,
                                     BitmaskPolicy))
        numbers = list(Hypercall)
        random.Random(seed).shuffle(numbers)
        if not static:
            # One placeholder rule per number keeps the walk cost honest;
            # verdicts come from the live policy.
            return cls([SeccompRule(nr, SeccompAction.ALLOW) for nr in numbers],
                       costs, dynamic=True)
        rules = []
        for nr in numbers:
            allowed = nr is Hypercall.EXIT or policy.allows(nr)
            rules.append(SeccompRule(
                nr, SeccompAction.ALLOW if allowed else SeccompAction.KILL))
        return cls(rules, costs)

    def load_cycles(self) -> int:
        """Installing the compiled program (charged once, at creation)."""
        return len(self.rules) * self.costs.SECCOMP_LOAD_PER_RULE

    def evaluate(self, nr: Hypercall,
                 policy: Policy | None = None) -> tuple[SeccompAction, int]:
        """Walk the chain for one syscall: (action, rules walked).

        A dynamic filter walks the whole chain (the BPF program always
        runs to its decision) and asks the live ``policy``; EXIT is
        always allowed, matching the always-permitted exit hypercall.
        """
        self.evaluations += 1
        if self.dynamic:
            walked = len(self.rules)
            allowed = nr is Hypercall.EXIT or (
                policy is not None and policy.allows(nr))
            return (SeccompAction.ALLOW if allowed else SeccompAction.KILL,
                    walked)
        for walked, rule in enumerate(self.rules, start=1):
            if rule.nr is nr:
                return rule.action, walked
        return self.default_action, len(self.rules)

    def eval_cycles(self, walked: int) -> int:
        return (self.costs.SECCOMP_EVAL_BASE
                + walked * self.costs.SECCOMP_EVAL_PER_RULE)


class ContainerBackend(IsolationBackend):
    """Namespace/seccomp sandboxes: mid-range creation, kill on violation."""

    name = "container"
    caps = BackendCaps(snapshot=False, pooled=True, in_process=False,
                       kill_on_violation=True)

    def __init__(self, kernel: HostKernel, seed: int = 0) -> None:
        super().__init__(kernel)
        #: Seeds the seccomp chain layout (and nothing else): the same
        #: seed reproduces the same rule order and walk costs.
        self.seed = seed
        self.kills = 0

    # -- cost classes ------------------------------------------------------
    def creation_cycles(self) -> int:
        # fork + one unshare per namespace + cgroup + pivot_root + the
        # filter load for a full-length chain (the per-virtine recompile
        # against the live policy reuses the installed program slot).
        return int(
            self.costs.PROCESS_SPAWN
            + len(NAMESPACES) * self.costs.NAMESPACE_CLONE
            + self.costs.CGROUP_SETUP
            + self.costs.ROOTFS_PIVOT
            + len(Hypercall) * self.costs.SECCOMP_LOAD_PER_RULE
        )

    def teardown_cycles(self) -> int:
        # Reap the process and tear down its namespaces/cgroup.
        return self.costs.syscall() + self.costs.CONTEXT_SWITCH

    def enter_cycles(self) -> int:
        # IPC into the sandboxed process: one syscall (write the request)
        # plus the scheduler switch onto it, filtered on the way in.
        return (self.costs.syscall() + self.costs.CONTEXT_SWITCH
                + self._entry_filter_cycles())

    def exit_cycles(self) -> int:
        return self.costs.CONTEXT_SWITCH + self.costs.syscall()

    def _entry_filter_cycles(self) -> int:
        """The IPC entry syscall walks the sandbox's filter too."""
        return (self.costs.SECCOMP_EVAL_BASE
                + len(Hypercall) * self.costs.SECCOMP_EVAL_PER_RULE)

    def gate_out_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        filt: SeccompFilter | None = getattr(virtine, "seccomp_filter", None)
        if filt is None:
            walked = len(Hypercall)
            eval_cost = (self.costs.SECCOMP_EVAL_BASE
                         + walked * self.costs.SECCOMP_EVAL_PER_RULE)
        else:
            # Cost-only walk: the verdict comes from the shared policy
            # gate downstream (a stateful policy must be consulted once,
            # not once per layer).
            _, walked = filt.evaluate(nr)
            eval_cost = filt.eval_cycles(walked)
        return self.costs.syscall() + self.costs.CONTEXT_SWITCH + eval_cost

    def gate_back_cycles(self, virtine: Virtine, nr: Hypercall) -> int:
        return self.costs.CONTEXT_SWITCH + self.costs.syscall()

    # -- lifecycle ---------------------------------------------------------
    def prepare_launch(self, virtine: Virtine) -> None:
        """Compile + install the virtine's policy as this sandbox's filter."""
        filt = SeccompFilter.from_policy(virtine.policy, self.costs,
                                         seed=self.seed)
        self.clock.advance(filt.load_cycles())
        virtine.seccomp_filter = filt

    def on_denied(self, virtine: Virtine, nr: Hypercall,
                  denied: HypercallDenied) -> None:
        """Seccomp semantics: a denied syscall kills the sandbox.

        The guest never observes the denial -- by the time the filter
        says KILL, the process is already dead.  The SIGSYS delivery is
        the last thing charged to the sandbox.
        """
        self.kills += 1
        self.clock.advance(self.costs.SIGSYS_TRAP)
        raise SeccompKill(
            f"seccomp killed the sandbox: {nr.name} disallowed", nr=nr,
        ) from denied
