"""A loopback TCP model.

The HTTP experiments (Figures 4 and 13) generate requests "from localhost"
and the serverless experiment (Figure 15) drives a local endpoint.  This
module provides cooperative, in-memory socket pairs: a connect creates two
half-duplex byte queues.  Cycle costs for socket syscalls are charged by
the kernel layer; this module additionally models the one-way loopback
latency that the paper's guest-to-host interactions observe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


class NetError(Exception):
    """A network error, carrying an errno-style name."""

    def __init__(self, errno_name: str, message: str) -> None:
        super().__init__(f"{errno_name}: {message}")
        self.errno_name = errno_name


class Socket:
    """One endpoint of a loopback connection."""

    def __init__(self) -> None:
        self._rx: deque[bytes] = deque()
        self.peer: "Socket | None" = None
        self.closed = False

    def send(self, data: bytes) -> int:
        if self.closed:
            raise NetError("EPIPE", "send on closed socket")
        if self.peer is None or self.peer.closed:
            raise NetError("ECONNRESET", "peer closed")
        self.peer._rx.append(bytes(data))
        return len(data)

    def recv(self, max_bytes: int) -> bytes:
        """Pop up to ``max_bytes`` from the receive queue.

        Returns ``b""`` when the peer has closed and the queue is drained
        (EOF), and raises ``EWOULDBLOCK`` when data simply isn't there yet
        (the cooperative simulation has no blocking).
        """
        if self.closed:
            raise NetError("EBADF", "recv on closed socket")
        if not self._rx:
            if self.peer is None or self.peer.closed:
                return b""
            raise NetError("EWOULDBLOCK", "no data available")
        chunk = self._rx.popleft()
        if len(chunk) <= max_bytes:
            return chunk
        self._rx.appendleft(chunk[max_bytes:])
        return chunk[:max_bytes]

    def pending(self) -> int:
        """Bytes queued for reading."""
        return sum(len(c) for c in self._rx)

    def close(self) -> None:
        self.closed = True


@dataclass
class Listener:
    """A listening socket with a backlog of not-yet-accepted connections."""

    port: int
    backlog: deque[Socket] = field(default_factory=deque)


class LoopbackNetwork:
    """The loopback interface: listeners keyed by port."""

    def __init__(self) -> None:
        self._listeners: dict[int, Listener] = {}

    def listen(self, port: int) -> Listener:
        if port in self._listeners:
            raise NetError("EADDRINUSE", f"port {port}")
        listener = Listener(port=port)
        self._listeners[port] = listener
        return listener

    def connect(self, port: int) -> Socket:
        """Client-side connect; queues the server end on the listener."""
        if port not in self._listeners:
            raise NetError("ECONNREFUSED", f"port {port}")
        client = Socket()
        server = Socket()
        client.peer = server
        server.peer = client
        self._listeners[port].backlog.append(server)
        return client

    def accept(self, listener: Listener) -> Socket:
        if not listener.backlog:
            raise NetError("EWOULDBLOCK", "no pending connections")
        return listener.backlog.popleft()

    def close_listener(self, listener: Listener) -> None:
        self._listeners.pop(listener.port, None)
