"""An in-memory host filesystem.

Backs the POSIX-like hypercalls (``open``/``read``/``write``/``stat``/
``close``) that the static-content HTTP server of Section 6.3 exercises.
State only -- cycle costs are charged by the kernel's syscall layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100


class FsError(Exception):
    """A filesystem error, carrying an errno-style name."""

    def __init__(self, errno_name: str, message: str) -> None:
        super().__init__(f"{errno_name}: {message}")
        self.errno_name = errno_name


@dataclass
class StatResult:
    """The subset of ``struct stat`` the virtine handlers use."""

    size: int
    is_file: bool = True


@dataclass
class OpenFile:
    """An open file description (shared offset semantics not needed)."""

    path: str
    flags: int
    offset: int = 0


class InMemoryFilesystem:
    """A flat, path-keyed in-memory filesystem with a per-process fd table."""

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}
        self._fds: dict[int, OpenFile] = {}
        self._next_fd = 3  # 0/1/2 reserved, as on a real host

    # -- population helpers --------------------------------------------------
    def add_file(self, path: str, contents: bytes) -> None:
        """Create or replace ``path`` with ``contents``."""
        self._files[path] = bytearray(contents)

    def exists(self, path: str) -> bool:
        return path in self._files

    def file_bytes(self, path: str) -> bytes:
        """Direct read of a whole file (host-side convenience)."""
        if path not in self._files:
            raise FsError("ENOENT", path)
        return bytes(self._files[path])

    # -- POSIX-like surface -------------------------------------------------------
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        if path not in self._files:
            if flags & O_CREAT:
                self._files[path] = bytearray()
            else:
                raise FsError("ENOENT", path)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = OpenFile(path=path, flags=flags)
        return fd

    def read(self, fd: int, count: int) -> bytes:
        open_file = self._lookup(fd)
        data = self._files[open_file.path]
        chunk = bytes(data[open_file.offset : open_file.offset + count])
        open_file.offset += len(chunk)
        return chunk

    def write(self, fd: int, data: bytes) -> int:
        open_file = self._lookup(fd)
        if open_file.flags & (O_WRONLY | O_RDWR) == 0:
            raise FsError("EBADF", f"fd {fd} not open for writing")
        contents = self._files[open_file.path]
        end = open_file.offset + len(data)
        if end > len(contents):
            contents.extend(b"\x00" * (end - len(contents)))
        contents[open_file.offset : end] = data
        open_file.offset = end
        return len(data)

    def stat(self, path: str) -> StatResult:
        if path not in self._files:
            raise FsError("ENOENT", path)
        return StatResult(size=len(self._files[path]))

    def close(self, fd: int) -> None:
        self._lookup(fd)
        del self._fds[fd]

    def open_fd_count(self) -> int:
        """Number of currently open descriptors (leak checking in tests)."""
        return len(self._fds)

    def _lookup(self, fd: int) -> OpenFile:
        if fd not in self._fds:
            raise FsError("EBADF", f"fd {fd} is not open")
        return self._fds[fd]
