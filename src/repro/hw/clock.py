"""The virtual cycle clock.

Every latency reported by the benchmarks is measured on an instance of
:class:`Clock` -- wall-clock time is never used.  The clock is a plain
monotonically-increasing cycle counter; components advance it as they
charge costs from :mod:`repro.hw.costs`.

:class:`Region` provides the ``rdtsc``-style bracketing the paper uses:
read the counter, run the work, read it again.

For SMP scale-out (Figure 9/10) every simulated core owns a
:class:`SimClock`; a :class:`LockstepScheduler` interleaves the cores
deterministically -- the least-advanced core always runs next, ties
broken by a seeded round-robin rotation -- so the same seed replays the
identical interleaving, steal pattern, and per-core cycle totals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable


class Clock:
    """A monotonically-increasing virtual cycle counter."""

    __slots__ = ("_cycles",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start at a negative cycle")
        self._cycles = start

    @property
    def cycles(self) -> int:
        """Current cycle count."""
        return self._cycles

    def advance(self, cycles: float) -> None:
        """Advance the clock by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._cycles += int(cycles)

    def rdtsc(self) -> int:
        """Read the timestamp counter (no cost, like a bare ``rdtsc``)."""
        return self._cycles

    def region(self) -> "Region":
        """Open a measurement region starting now."""
        return Region(clock=self, start=self._cycles)

    def __repr__(self) -> str:
        return f"Clock(cycles={self._cycles})"


class SimClock(Clock):
    """A per-core cycle counter for the lockstep SMP plane.

    Identical to :class:`Clock` on the hot path (``advance`` is
    inherited untouched, so the fast-path engine's captured bound
    methods stay monomorphic); it only adds the core identity the
    scheduler and the per-core trace export key on.
    """

    __slots__ = ("core_id",)

    def __init__(self, core_id: int, start: int = 0) -> None:
        if core_id < 0:
            raise ValueError(f"core id cannot be negative: {core_id}")
        super().__init__(start)
        self.core_id = core_id

    def __repr__(self) -> str:
        return f"SimClock(core={self.core_id}, cycles={self._cycles})"


class LockstepScheduler:
    """Deterministic round-robin interleaver over per-core run queues.

    Each core has a :class:`SimClock` and a FIFO of tasks -- callables
    invoked as ``task(core_id)`` with the id of the core that actually
    runs them (which, under stealing, need not be where they were
    submitted), advancing that core's clock as they run.  One
    scheduling round picks the *least-advanced* runnable core -- ties
    broken by a rotation seeded from ``seed`` -- and lets it run tasks
    until it is more than ``quantum`` cycles ahead of the laggard or its
    queue drains.  A core whose queue is empty steals from the back of
    the deepest sibling queue (ties again broken by the rotation), so a
    skewed initial placement still finishes near the balanced makespan.

    Determinism contract: the interleaving is a pure function of
    ``(seed, quantum, submission order, task behaviour)``.  Nothing here
    reads wall-clock time or iterates an unordered container.
    """

    def __init__(self, cores: int, quantum: int = 100_000, seed: int = 0) -> None:
        if cores <= 0:
            raise ValueError(f"need at least one core, got {cores}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        self.cores = cores
        self.quantum = quantum
        self.seed = seed
        self.clocks: list[SimClock] = [SimClock(i) for i in range(cores)]
        self._queues: list[deque[Callable[[int], None]]] = [deque() for _ in range(cores)]
        #: Rotation pointer for tie-breaks; advanced every pick so equal
        #: clocks (the common case at start) spread across cores.
        self._rotation = seed % cores
        self.steals = 0
        self.tasks_run = [0] * cores
        self.rounds = 0

    # -- submission ----------------------------------------------------------
    def submit(self, core_id: int, task: Callable[[int], None]) -> None:
        """Queue ``task`` on one core's local run queue."""
        self._queues[core_id % self.cores].append(task)

    def submit_round_robin(self, tasks: list[Callable[[int], None]]) -> None:
        """Initial placement: spread ``tasks`` across cores in order."""
        for i, task in enumerate(tasks):
            self._queues[(self.seed + i) % self.cores].append(task)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- scheduling ----------------------------------------------------------
    def _rotated(self) -> list[int]:
        """Core ids starting at the rotation pointer (the tie-break order)."""
        r = self._rotation
        return [(r + i) % self.cores for i in range(self.cores)]

    def _pick_core(self) -> int:
        """The least-advanced core, ties broken by the seeded rotation."""
        order = self._rotated()
        best = min(order, key=lambda c: (self.clocks[c].cycles, order.index(c)))
        self._rotation = (self._rotation + 1) % self.cores
        return best

    def _steal_for(self, thief: int) -> bool:
        """Move one task from the deepest sibling queue onto ``thief``.

        Steals from the *back* of the victim's queue (classic
        work-stealing: the thief takes the work the victim would reach
        last).  Returns False when every sibling is empty.
        """
        order = [c for c in self._rotated() if c != thief]
        victim = max(order, key=lambda c: (len(self._queues[c]), -order.index(c)))
        if not self._queues[victim]:
            return False
        self._queues[thief].append(self._queues[victim].pop())
        self.steals += 1
        return True

    def run(self) -> None:
        """Drain every queue under the lockstep discipline."""
        while self.pending():
            self.rounds += 1
            core = self._pick_core()
            if not self._queues[core] and not self._steal_for(core):
                # This core is starved and there is nothing to steal;
                # some other core still holds work -- let it run.
                continue
            queue = self._queues[core]
            clock = self.clocks[core]
            horizon = self._laggard_cycles() + self.quantum
            while queue and clock.cycles <= horizon:
                task = queue.popleft()
                task(core)
                self.tasks_run[core] += 1

    def _laggard_cycles(self) -> int:
        return min(c.cycles for c in self.clocks)

    # -- accounting ----------------------------------------------------------
    @property
    def makespan_cycles(self) -> int:
        """Wall-clock of the simulated machine: the furthest core."""
        return max(c.cycles for c in self.clocks)

    @property
    def total_cycles(self) -> int:
        """Aggregate work across every core."""
        return sum(c.cycles for c in self.clocks)

    def barrier(self) -> int:
        """Advance every core to the makespan (a full-machine sync point)."""
        target = self.makespan_cycles
        for clock in self.clocks:
            clock.advance(target - clock.cycles)
        return target


@dataclass
class Region:
    """An ``rdtsc``-bracketed measurement region.

    Usable as a context manager::

        with clock.region() as r:
            do_work()
        latency = r.elapsed
    """

    clock: Clock
    start: int
    end: int | None = None

    def stop(self) -> int:
        """Close the region and return elapsed cycles."""
        self.end = self.clock.cycles
        return self.elapsed

    @property
    def elapsed(self) -> int:
        """Cycles elapsed between start and end (or now, if still open)."""
        end = self.end if self.end is not None else self.clock.cycles
        return end - self.start

    def __enter__(self) -> "Region":
        self.start = self.clock.cycles
        self.end = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class BackgroundAccountant:
    """Tracks work done off the critical path.

    Wasp's asynchronous shell cleaning ("Wasp+CA" in Figure 8) performs the
    memset of a returned virtine's memory in the background.  Those cycles
    are real work but do not contribute to request latency; they accumulate
    here so experiments can still report total system work.
    """

    cycles: int = 0
    operations: int = field(default=0)

    def charge(self, cycles: float) -> None:
        """Account for ``cycles`` of background work."""
        if cycles < 0:
            raise ValueError(f"cannot charge {cycles} background cycles")
        self.cycles += int(cycles)
        self.operations += 1
