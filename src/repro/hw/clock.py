"""The virtual cycle clock.

Every latency reported by the benchmarks is measured on an instance of
:class:`Clock` -- wall-clock time is never used.  The clock is a plain
monotonically-increasing cycle counter; components advance it as they
charge costs from :mod:`repro.hw.costs`.

:class:`Region` provides the ``rdtsc``-style bracketing the paper uses:
read the counter, run the work, read it again.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Clock:
    """A monotonically-increasing virtual cycle counter."""

    __slots__ = ("_cycles",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start at a negative cycle")
        self._cycles = start

    @property
    def cycles(self) -> int:
        """Current cycle count."""
        return self._cycles

    def advance(self, cycles: float) -> None:
        """Advance the clock by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._cycles += int(cycles)

    def rdtsc(self) -> int:
        """Read the timestamp counter (no cost, like a bare ``rdtsc``)."""
        return self._cycles

    def region(self) -> "Region":
        """Open a measurement region starting now."""
        return Region(clock=self, start=self._cycles)

    def __repr__(self) -> str:
        return f"Clock(cycles={self._cycles})"


@dataclass
class Region:
    """An ``rdtsc``-bracketed measurement region.

    Usable as a context manager::

        with clock.region() as r:
            do_work()
        latency = r.elapsed
    """

    clock: Clock
    start: int
    end: int | None = None

    def stop(self) -> int:
        """Close the region and return elapsed cycles."""
        self.end = self.clock.cycles
        return self.elapsed

    @property
    def elapsed(self) -> int:
        """Cycles elapsed between start and end (or now, if still open)."""
        end = self.end if self.end is not None else self.clock.cycles
        return end - self.start

    def __enter__(self) -> "Region":
        self.start = self.clock.cycles
        self.end = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class BackgroundAccountant:
    """Tracks work done off the critical path.

    Wasp's asynchronous shell cleaning ("Wasp+CA" in Figure 8) performs the
    memset of a returned virtine's memory in the background.  Those cycles
    are real work but do not contribute to request latency; they accumulate
    here so experiments can still report total system work.
    """

    cycles: int = 0
    operations: int = field(default=0)

    def charge(self, cycles: float) -> None:
        """Account for ``cycles`` of background work."""
        if cycles < 0:
            raise ValueError(f"cannot charge {cycles} background cycles")
        self.cycles += int(cycles)
        self.operations += 1
