"""Guest physical memory.

A :class:`GuestMemory` is a flat ``bytearray`` with 4 KB page-granular
first-touch tracking.  First-touch tracking is what makes the paper's
"Paging identity mapping" cost (Table 1) *emerge* rather than being a
canned constant: the first store to each previously-untouched guest page
raises an EPT-violation event, and the attached machine charges
``EPT_FIRST_TOUCH_FAULT`` for it (see :mod:`repro.hw.vmx`).
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable

PAGE_SIZE = 4096
PAGE_SHIFT = 12

# Preresolved codecs for the integer helpers: ``unpack_from``/``pack_into``
# operate on the backing ``bytearray`` directly, with no intermediate
# ``bytes`` copy per access.
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class GuestMemoryError(Exception):
    """An out-of-range guest physical access."""


class GuestMemory:
    """Flat guest physical memory with first-touch page tracking."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE != 0:
            raise ValueError(f"memory size must be a positive multiple of 4096, got {size}")
        self.size = size
        self._data = bytearray(size)
        self._touched: set[int] = set()
        self._dirty: set[int] = set()
        self._cow_pending: set[int] = set()
        #: Optional callback invoked with the page number on first touch.
        self.on_first_touch: Callable[[int], None] | None = None
        #: Optional callback invoked when a copy-on-write page is first
        #: written after a CoW snapshot restore.
        self.on_cow_break: Callable[[int], None] | None = None
        #: Bumped whenever a page backing a cached address translation is
        #: written (guest store to a live page table) or any bulk host-side
        #: mutation rewrites memory wholesale.  Registered software TLBs
        #: (see :meth:`register_tlb`) are cleared in the same event, so
        #: cached translations can never go stale relative to the
        #: always-rewalking slow path -- without a per-access version check.
        self.translation_version = 0
        self._watched_pages: set[int] = set()
        self._registered_tlbs: list[dict[int, int]] = []
        # Guest code pages covered by compiled superblocks.  A *guest
        # store* to one fires the registered listeners (push invalidation
        # for the JIT's per-image compiled-block cache) and un-watches the
        # page -- one-shot, re-armed when the region recompiles.  Host-side
        # bulk mutations (image load, snapshot restore) deliberately do
        # not fire: they re-install the very image the blocks were
        # compiled from, and dropping blocks there would destroy the
        # warm-start property of pooled/restored shells.
        self._code_watch_pages: set[int] = set()
        self._code_watch_listeners: list[Callable[[int], None]] = []
        # Pages where a store needs no bookkeeping at all: already dirty
        # and touched, not CoW-pending, not watched.  Populated by
        # _touch_page, drained by every event that re-arms any of those
        # conditions; lets the write helpers skip the touch chain on the
        # overwhelmingly common repeat store.
        self._quiet: set[int] = set()

    # -- bounds & tracking -------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise GuestMemoryError(
                f"guest physical access [{addr:#x}, {addr + length:#x}) "
                f"outside memory of size {self.size:#x}"
            )

    def _touch(self, addr: int, length: int) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + max(length - 1, 0)) >> PAGE_SHIFT
        if first == last:
            self._touch_page(first)
            return
        for page in range(first, last + 1):
            self._touch_page(page)

    def _touch_page(self, page: int) -> None:
        # CoW break fires before the first-touch event (a CoW page was
        # EPT-mapped at restore, so the orders never actually overlap, but
        # the callback ordering is part of the contract).
        self._dirty.add(page)
        if page in self._cow_pending:
            self._cow_pending.discard(page)
            if self.on_cow_break is not None:
                self.on_cow_break(page)
        if page not in self._touched:
            self._touched.add(page)
            if self.on_first_touch is not None:
                self.on_first_touch(page)
        if page in self._watched_pages:
            self._invalidate_translations()
        if page in self._code_watch_pages:
            # Self-modifying store over a compiled superblock region.
            self._code_watch_pages.discard(page)
            for listener in self._code_watch_listeners:
                listener(page)
        # Every condition above is now settled for this page (a watched
        # page was just un-watched by the invalidation; the next walk
        # re-watches it and discards it from the quiet set again).
        self._quiet.add(page)

    def _mark_dirty(self, addr: int, length: int) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + max(length - 1, 0)) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._dirty.add(page)
            if page in self._cow_pending:
                self._cow_pending.discard(page)
                if self.on_cow_break is not None:
                    self.on_cow_break(page)
            if page in self._watched_pages:
                self._invalidate_translations()

    # -- translation caching hooks -------------------------------------------
    def register_tlb(self, tlb: dict[int, int]) -> None:
        """Attach a software TLB to be cleared on translation rot.

        Push invalidation: the TLB owner fills the dict and watches the
        page-table pages each walk traversed; any event that could change
        a translation clears the dict here, so lookups need no version
        check on the hot path.
        """
        self._registered_tlbs.append(tlb)

    def _invalidate_translations(self) -> None:
        self.translation_version += 1
        # Watches are rebuilt by the next page walk; stale ones would only
        # cause spurious (never missed) invalidations.
        self._watched_pages.clear()
        for tlb in self._registered_tlbs:
            tlb.clear()

    def watch_translation_page(self, page: int) -> None:
        """Register ``page`` as backing a cached address translation.

        Any later write to a watched page invalidates every registered
        TLB (and bumps :attr:`translation_version` for observers).
        """
        self._watched_pages.add(page)
        self._quiet.discard(page)

    def clear_translation_watch(self) -> None:
        """Forget all watched pages (called when the TLB is flushed)."""
        self._watched_pages.clear()

    # -- compiled-code watches (superblock JIT) -------------------------------
    def add_code_watch_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the page number when a guest
        store touches a watched code page (see :attr:`_code_watch_pages`)."""
        self._code_watch_listeners.append(listener)

    def watch_code_pages(self, pages: Iterable[int]) -> None:
        """Arm store-watches on ``pages`` (compiled superblock coverage)."""
        pages = set(pages)
        self._code_watch_pages.update(pages)
        # Watched pages must leave the quiet set so the write helpers
        # route their next store through _touch_page.
        self._quiet.difference_update(pages)

    @property
    def touched_pages(self) -> int:
        """Number of guest pages that have ever been written."""
        return len(self._touched)

    def reset_touch_tracking(self) -> None:
        """Forget first-touch history (used when recycling a shell)."""
        self._touched.clear()
        self._quiet.clear()

    def mark_touched(self, pages: Iterable[int]) -> None:
        """Record pages as already EPT-mapped (host-side population)."""
        self._touched.update(pages)

    # -- raw access ----------------------------------------------------------
    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at guest physical ``addr``."""
        self._check(addr, length)
        return bytes(self._data[addr : addr + length])

    def write(self, addr: int, data: bytes | bytearray) -> None:
        """Write ``data`` at guest physical ``addr``."""
        self._check(addr, len(data))
        self._touch(addr, len(data))
        self._data[addr : addr + len(data)] = data

    # -- integer helpers -------------------------------------------------------
    # Reads decode straight out of the backing bytearray; writes pack into
    # it in place.  No per-access bytes copies, same bounds discipline.
    def read_u8(self, addr: int) -> int:
        if addr < 0 or addr + 1 > self.size:
            self._check(addr, 1)
        return self._data[addr]

    def read_u16(self, addr: int) -> int:
        if addr < 0 or addr + 2 > self.size:
            self._check(addr, 2)
        return _U16.unpack_from(self._data, addr)[0]

    def read_u32(self, addr: int) -> int:
        if addr < 0 or addr + 4 > self.size:
            self._check(addr, 4)
        return _U32.unpack_from(self._data, addr)[0]

    def read_u64(self, addr: int) -> int:
        if addr < 0 or addr + 8 > self.size:
            self._check(addr, 8)
        return _U64.unpack_from(self._data, addr)[0]

    def write_u8(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 1 > self.size:
            self._check(addr, 1)
        page = addr >> PAGE_SHIFT
        if page not in self._quiet:
            self._touch_page(page)
        self._data[addr] = value & 0xFF

    def write_u16(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 2 > self.size:
            self._check(addr, 2)
        page = addr >> PAGE_SHIFT
        if page not in self._quiet or (addr + 1) >> PAGE_SHIFT != page:
            self._touch(addr, 2)
        _U16.pack_into(self._data, addr, value & 0xFFFF)

    def write_u32(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self.size:
            self._check(addr, 4)
        page = addr >> PAGE_SHIFT
        if page not in self._quiet or (addr + 3) >> PAGE_SHIFT != page:
            self._touch(addr, 4)
        _U32.pack_into(self._data, addr, value & 0xFFFFFFFF)

    def write_u64(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 8 > self.size:
            self._check(addr, 8)
        page = addr >> PAGE_SHIFT
        if page not in self._quiet or (addr + 7) >> PAGE_SHIFT != page:
            self._touch(addr, 8)
        _U64.pack_into(self._data, addr, value & 0xFFFFFFFFFFFFFFFF)

    # -- dirty-page tracking ------------------------------------------------------
    @property
    def dirty_pages(self) -> frozenset[int]:
        """Pages written since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        """Bytes that a clean (memset of dirty pages) would touch."""
        return len(self._dirty) * PAGE_SIZE

    def clear_dirty(self) -> int:
        """Zero every dirty page; returns the number of bytes cleared.

        Callers charge ``memset(returned bytes)``; this is how Wasp's
        shell cleaning avoids paying for the full guest memory.
        """
        zero_page = bytes(PAGE_SIZE)
        for page in self._dirty:
            start = page << PAGE_SHIFT
            self._data[start : start + PAGE_SIZE] = zero_page
        cleared = len(self._dirty) * PAGE_SIZE
        # Still-shared CoW pages were never privately materialised:
        # dropping the read-only mapping reverts them for free (their
        # bytes are excluded from the returned scrub cost).
        for page in self._cow_pending:
            start = page << PAGE_SHIFT
            self._data[start : start + PAGE_SIZE] = zero_page
        self._cow_pending.clear()
        self._dirty.clear()
        self._quiet.clear()
        self._invalidate_translations()
        return cleared

    def capture_dirty(self) -> dict[int, bytes]:
        """Copy out the contents of every dirty page (snapshot capture)."""
        result: dict[int, bytes] = {}
        for page in self._dirty:
            start = page << PAGE_SHIFT
            result[page] = bytes(self._data[start : start + PAGE_SIZE])
        return result

    def restore_pages(self, pages: dict[int, bytes]) -> None:
        """Write back pages captured by :meth:`capture_dirty`.

        Marks exactly those pages dirty (host-side copy, no EPT events).
        """
        for page, contents in pages.items():
            start = page << PAGE_SHIFT
            self._check(start, PAGE_SIZE)
            self._data[start : start + PAGE_SIZE] = contents
        self._dirty.update(pages)
        self._invalidate_translations()

    def restore_runs(self, runs: Iterable[tuple[int, bytes]],
                     pages: Iterable[int]) -> None:
        """Bulk variant of :meth:`restore_pages`.

        ``runs`` is a sequence of ``(start_addr, contents)`` pairs of
        *contiguous* page data (see
        :meth:`repro.wasp.snapshot.Snapshot.page_runs`) and ``pages`` the
        page numbers they cover.  One slice assignment per run replaces
        the per-page loop; dirty bookkeeping is batched.  State effects
        are identical to ``restore_pages`` over the same pages.
        """
        data = self._data
        for start, contents in runs:
            self._check(start, len(contents))
            data[start : start + len(contents)] = contents
        self._dirty.update(pages)
        self._invalidate_translations()

    def restore_pages_cow(self, pages: dict[int, bytes]) -> None:
        """Copy-on-write restore: map the snapshot pages shared/read-only.

        Contents become visible immediately (reads are shared with the
        snapshot), but each page remains *pending*: the first write to it
        fires :attr:`on_cow_break`, which is where the per-page copy cost
        is charged -- and only then does the page count as dirty (a page
        never written stays the snapshot's and needs no scrub).  This is
        the SEUSS-style restore the paper expects to "drop [the snapshot
        cost] drastically" (Section 7.2).
        """
        for page, contents in pages.items():
            start = page << PAGE_SHIFT
            self._check(start, PAGE_SIZE)
            self._data[start : start + PAGE_SIZE] = contents
        self._cow_pending.update(pages)
        self._quiet.difference_update(pages)
        self._invalidate_translations()

    def restore_runs_cow(self, runs: Iterable[tuple[int, bytes]],
                         pages: Iterable[int]) -> None:
        """Bulk variant of :meth:`restore_pages_cow` (contiguous runs)."""
        data = self._data
        for start, contents in runs:
            self._check(start, len(contents))
            data[start : start + len(contents)] = contents
        pages = tuple(pages)
        self._cow_pending.update(pages)
        self._quiet.difference_update(pages)
        self._invalidate_translations()

    @property
    def cow_pending_pages(self) -> frozenset[int]:
        """Pages still sharing snapshot storage (unwritten since restore)."""
        return frozenset(self._cow_pending)

    # -- bulk operations ---------------------------------------------------------
    def fill(self, value: int = 0) -> None:
        """Clear (or fill) the entire memory.

        Note: callers are responsible for charging the memset cost; this
        only mutates state.
        """
        self._data = bytearray([value & 0xFF]) * self.size if value else bytearray(self.size)
        self._dirty.clear()
        self._cow_pending.clear()
        self._quiet.clear()
        self._code_watch_pages.clear()
        self._invalidate_translations()

    def copy_from(self, other: "GuestMemory") -> None:
        """Replace contents with a copy of ``other`` (sizes must match)."""
        if other.size != self.size:
            raise ValueError(
                f"cannot copy between differently sized memories "
                f"({other.size:#x} -> {self.size:#x})"
            )
        self._data[:] = other._data
        self._dirty = set(other._dirty)
        self._quiet.clear()
        self._code_watch_pages.clear()
        self._invalidate_translations()

    def snapshot_bytes(self) -> bytes:
        """Return an immutable copy of the full contents."""
        return bytes(self._data)

    def load_bytes(self, image: bytes, addr: int = 0) -> None:
        """Load a raw byte image at ``addr`` (host-side copy; dirties
        pages but raises no EPT first-touch events)."""
        self._check(addr, len(image))
        self._mark_dirty(addr, len(image))
        self._data[addr : addr + len(image)] = image

    def __len__(self) -> int:
        return self.size
