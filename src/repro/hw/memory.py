"""Guest physical memory.

A :class:`GuestMemory` is a flat ``bytearray`` with 4 KB page-granular
first-touch tracking.  First-touch tracking is what makes the paper's
"Paging identity mapping" cost (Table 1) *emerge* rather than being a
canned constant: the first store to each previously-untouched guest page
raises an EPT-violation event, and the attached machine charges
``EPT_FIRST_TOUCH_FAULT`` for it (see :mod:`repro.hw.vmx`).
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class GuestMemoryError(Exception):
    """An out-of-range guest physical access."""


class GuestMemory:
    """Flat guest physical memory with first-touch page tracking."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE != 0:
            raise ValueError(f"memory size must be a positive multiple of 4096, got {size}")
        self.size = size
        self._data = bytearray(size)
        self._touched: set[int] = set()
        self._dirty: set[int] = set()
        self._cow_pending: set[int] = set()
        #: Optional callback invoked with the page number on first touch.
        self.on_first_touch: Callable[[int], None] | None = None
        #: Optional callback invoked when a copy-on-write page is first
        #: written after a CoW snapshot restore.
        self.on_cow_break: Callable[[int], None] | None = None

    # -- bounds & tracking -------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise GuestMemoryError(
                f"guest physical access [{addr:#x}, {addr + length:#x}) "
                f"outside memory of size {self.size:#x}"
            )

    def _touch(self, addr: int, length: int) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + max(length - 1, 0)) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._dirty.add(page)
            if page in self._cow_pending:
                self._cow_pending.discard(page)
                if self.on_cow_break is not None:
                    self.on_cow_break(page)
            if page not in self._touched:
                self._touched.add(page)
                if self.on_first_touch is not None:
                    self.on_first_touch(page)

    def _mark_dirty(self, addr: int, length: int) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + max(length - 1, 0)) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._dirty.add(page)
            if page in self._cow_pending:
                self._cow_pending.discard(page)
                if self.on_cow_break is not None:
                    self.on_cow_break(page)

    @property
    def touched_pages(self) -> int:
        """Number of guest pages that have ever been written."""
        return len(self._touched)

    def reset_touch_tracking(self) -> None:
        """Forget first-touch history (used when recycling a shell)."""
        self._touched.clear()

    def mark_touched(self, pages: Iterable[int]) -> None:
        """Record pages as already EPT-mapped (host-side population)."""
        self._touched.update(pages)

    # -- raw access ----------------------------------------------------------
    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at guest physical ``addr``."""
        self._check(addr, length)
        return bytes(self._data[addr : addr + length])

    def write(self, addr: int, data: bytes | bytearray) -> None:
        """Write ``data`` at guest physical ``addr``."""
        self._check(addr, len(data))
        self._touch(addr, len(data))
        self._data[addr : addr + len(data)] = data

    # -- integer helpers -------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def read_u16(self, addr: int) -> int:
        return struct.unpack_from("<H", self._guarded(addr, 2))[0]

    def read_u32(self, addr: int) -> int:
        return struct.unpack_from("<I", self._guarded(addr, 4))[0]

    def read_u64(self, addr: int) -> int:
        return struct.unpack_from("<Q", self._guarded(addr, 8))[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes([value & 0xFF]))

    def write_u16(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<H", value & 0xFFFF))

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<I", value & 0xFFFFFFFF))

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def _guarded(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._data[addr : addr + length])

    # -- dirty-page tracking ------------------------------------------------------
    @property
    def dirty_pages(self) -> frozenset[int]:
        """Pages written since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        """Bytes that a clean (memset of dirty pages) would touch."""
        return len(self._dirty) * PAGE_SIZE

    def clear_dirty(self) -> int:
        """Zero every dirty page; returns the number of bytes cleared.

        Callers charge ``memset(returned bytes)``; this is how Wasp's
        shell cleaning avoids paying for the full guest memory.
        """
        zero_page = bytes(PAGE_SIZE)
        for page in self._dirty:
            start = page << PAGE_SHIFT
            self._data[start : start + PAGE_SIZE] = zero_page
        cleared = len(self._dirty) * PAGE_SIZE
        # Still-shared CoW pages were never privately materialised:
        # dropping the read-only mapping reverts them for free (their
        # bytes are excluded from the returned scrub cost).
        for page in self._cow_pending:
            start = page << PAGE_SHIFT
            self._data[start : start + PAGE_SIZE] = zero_page
        self._cow_pending.clear()
        self._dirty.clear()
        return cleared

    def capture_dirty(self) -> dict[int, bytes]:
        """Copy out the contents of every dirty page (snapshot capture)."""
        result: dict[int, bytes] = {}
        for page in self._dirty:
            start = page << PAGE_SHIFT
            result[page] = bytes(self._data[start : start + PAGE_SIZE])
        return result

    def restore_pages(self, pages: dict[int, bytes]) -> None:
        """Write back pages captured by :meth:`capture_dirty`.

        Marks exactly those pages dirty (host-side copy, no EPT events).
        """
        for page, contents in pages.items():
            start = page << PAGE_SHIFT
            self._check(start, PAGE_SIZE)
            self._data[start : start + PAGE_SIZE] = contents
        self._dirty.update(pages)

    def restore_pages_cow(self, pages: dict[int, bytes]) -> None:
        """Copy-on-write restore: map the snapshot pages shared/read-only.

        Contents become visible immediately (reads are shared with the
        snapshot), but each page remains *pending*: the first write to it
        fires :attr:`on_cow_break`, which is where the per-page copy cost
        is charged -- and only then does the page count as dirty (a page
        never written stays the snapshot's and needs no scrub).  This is
        the SEUSS-style restore the paper expects to "drop [the snapshot
        cost] drastically" (Section 7.2).
        """
        for page, contents in pages.items():
            start = page << PAGE_SHIFT
            self._check(start, PAGE_SIZE)
            self._data[start : start + PAGE_SIZE] = contents
        self._cow_pending.update(pages)

    @property
    def cow_pending_pages(self) -> frozenset[int]:
        """Pages still sharing snapshot storage (unwritten since restore)."""
        return frozenset(self._cow_pending)

    # -- bulk operations ---------------------------------------------------------
    def fill(self, value: int = 0) -> None:
        """Clear (or fill) the entire memory.

        Note: callers are responsible for charging the memset cost; this
        only mutates state.
        """
        self._data = bytearray([value & 0xFF]) * self.size if value else bytearray(self.size)
        self._dirty.clear()
        self._cow_pending.clear()

    def copy_from(self, other: "GuestMemory") -> None:
        """Replace contents with a copy of ``other`` (sizes must match)."""
        if other.size != self.size:
            raise ValueError(
                f"cannot copy between differently sized memories "
                f"({other.size:#x} -> {self.size:#x})"
            )
        self._data[:] = other._data
        self._dirty = set(other._dirty)

    def snapshot_bytes(self) -> bytes:
        """Return an immutable copy of the full contents."""
        return bytes(self._data)

    def load_bytes(self, image: bytes, addr: int = 0) -> None:
        """Load a raw byte image at ``addr`` (host-side copy; dirties
        pages but raises no EPT first-touch events)."""
        self._check(addr, len(image))
        self._mark_dirty(addr, len(image))
        self._data[addr : addr + len(image)] = image

    def __len__(self) -> int:
        return self.size
