"""The calibrated cycle-cost model.

Every cycle charged anywhere in the simulation traces back to a constant in
this module.  The constants are calibrated against the numbers the paper
reports for its primary testbed *tinker* (AMD EPYC 7281, 2.69 GHz,
Linux 5.9.12 with KVM):

=============================  =====================  =======================
Paper source                   Reported value         Constant(s) here
=============================  =====================  =======================
Table 1, ident-map paging      28,109 cycles          emerges from
                                                      ``EPT_FIRST_TOUCH_FAULT``
                                                      + per-store costs in the
                                                      boot code (3 table pages
                                                      zeroed + 514 entries)
Table 1, protected transition  3,217 cycles           ``CR0_PE_FLIP``
Table 1, long transition       681 cycles             ``LGDT_PROTECTED``
Table 1, jump to 32-bit        175 cycles             ``LJMP_TO_32``
Table 1, jump to 64-bit        190 cycles             ``LJMP_TO_64``
Table 1, load 32-bit GDT       4,118 cycles           ``LGDT_REAL``
Table 1, first instruction     74 cycles              ``FIRST_INSTRUCTION``
Fig. 2 "function"              ~30 cycles             ``FUNCTION_CALL``
Fig. 2 "vmrun"                 few thousand cycles    ``VMRUN_ENTRY`` +
                                                      ``VMRUN_EXIT`` +
                                                      ``IOCTL_OVERHEAD``
Fig. 2 "Linux pthread"         tens of thousands      ``PTHREAD_CREATE_JOIN``
Fig. 2 "KVM" (create + hlt)    hundreds of thousands  ``KVM_CREATE_VM_BASE``…
Fig. 8 "Linux process"         ~1 ms                  ``PROCESS_SPAWN``
Fig. 8 "SGX Create"/"ECALL"    ms / ~10 K cycles      ``SGX_CREATE``,
                                                      ``SGX_ECALL``
Sec. 6.2 memcpy bandwidth      6.7 GB/s               ``MEMCPY_CYCLES_PER_BYTE``
Sec. 6.3 hypercall exits       "doubly expensive"     ``RING_TRANSITION``
                               (ring transitions)     charged twice per
                                                      hypercall round trip
=============================  =====================  =======================

The higher-level results (pool hit latency within 4 % of vmrun, the 100 us
amortisation point, the 1-2 MB memcpy knee, HTTP/JS slowdowns, serverless
tail behaviour) are *not* constants -- they emerge from executing the real
Wasp code paths against this table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import gb_per_s_to_cycles_per_byte, us_to_cycles


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for the simulated platform (immutable).

    A single shared instance (:data:`COSTS`) is used throughout; tests may
    construct modified copies with :func:`dataclasses.replace` to explore
    sensitivity (e.g. the ablation benchmarks).
    """

    # --- plain instruction execution -------------------------------------
    #: Base cost of one simple ALU/branch instruction.
    INSN_BASE: int = 1
    #: Extra cost of an instruction with a memory operand.
    INSN_MEM: int = 4
    #: Extra cost of a call/ret pair's stack traffic (each side).
    INSN_CALL: int = 5
    #: Cost of a null function call + return on the host ("function" in
    #: Figure 2).
    FUNCTION_CALL: int = 30

    # --- mode transitions (Table 1) ---------------------------------------
    #: ``mov cr0`` flipping CR0.PE (protected-mode transition).
    CR0_PE_FLIP: int = 3217
    #: ``lgdt`` executed from real mode (emulated slowly; "Load 32-bit GDT").
    LGDT_REAL: int = 4118
    #: ``lgdt`` executed from protected/long mode ("Long transition").
    LGDT_PROTECTED: int = 681
    #: Far jump that completes the switch into 32-bit protected mode.
    LJMP_TO_32: int = 175
    #: Far jump that completes the switch into 64-bit long mode.
    LJMP_TO_64: int = 190
    #: Cost to fetch/decode the very first instruction after VM entry.
    FIRST_INSTRUCTION: int = 74
    #: ``mov cr3`` (page-table base install, includes TLB flush).
    CR3_LOAD: int = 350
    #: ``mov cr4`` / ``wrmsr EFER`` style control-register writes.
    CR_WRITE: int = 120
    #: Enabling CR0.PG (paging on; the walk of the first mapping).
    CR0_PG_FLIP: int = 450

    # --- memory system -----------------------------------------------------
    #: First-touch cost of a guest page: EPT violation exit, host-side
    #: allocation, and EPT entry construction inside KVM.  Three page-table
    #: pages are touched while building the identity map, so this constant
    #: dominates Table 1's 28,109-cycle "Paging identity mapping" row.
    EPT_FIRST_TOUCH_FAULT: int = 7265
    #: Cost of an 8-byte guest store (beyond INSN_BASE/INSN_MEM).
    STORE8: int = 2
    #: memcpy/memset cost per byte (tinker measures 6.7 GB/s, Section 6.2).
    MEMCPY_CYCLES_PER_BYTE: float = gb_per_s_to_cycles_per_byte(6.7)
    #: Copy-on-write restore: establishing one shared, read-only mapping
    #: to a snapshot page (page-table entry write + bookkeeping).
    COW_MAP_PER_PAGE: int = 110
    #: Copy-on-write break: the write-protection fault taken on the
    #: first store to a shared page (the 4 KB copy is charged on top).
    COW_BREAK_FAULT: int = 2200
    #: Integrity-checksum cost per byte (hardware ``crc32`` sustains
    #: ~8 bytes/cycle; snapshot verification before restore).
    CHECKSUM_CYCLES_PER_BYTE: float = 0.125

    # --- host kernel -------------------------------------------------------
    #: User->kernel->user ring transition pair for one syscall.
    RING_TRANSITION: int = 700
    #: Fixed in-kernel dispatch overhead of an ioctl beyond the ring cost.
    IOCTL_OVERHEAD: int = 400
    #: In-kernel work for an ordinary syscall (read/write/stat/...).
    SYSCALL_BODY: int = 600
    #: pthread_create + pthread_join round trip ("Linux pthread", Fig. 2).
    PTHREAD_CREATE_JOIN: int = 27000
    #: fork+exec of a minimal process ("Linux process", Fig. 8).
    PROCESS_SPAWN: int = us_to_cycles(380.0)
    #: Container creation on top of a process (namespaces, cgroups, rootfs).
    CONTAINER_EXTRA: int = us_to_cycles(120_000.0)  # ~120 ms cold start

    # --- hardware virtualization -------------------------------------------
    #: Host-side KVM_CREATE_VM: VM file descriptor, VMCB/VMCS allocation.
    KVM_CREATE_VM_BASE: int = 180_000
    #: KVM_CREATE_VCPU: vCPU state allocation.
    KVM_CREATE_VCPU: int = 65_000
    #: KVM_SET_USER_MEMORY_REGION: memslot registration.
    KVM_SET_MEMORY_REGION: int = 30_000
    #: Hardware ``vmrun``/VMLAUNCH world switch into the guest.
    VMRUN_ENTRY: int = 1000
    #: Hardware ``#VMEXIT`` world switch back to the host.
    VMRUN_EXIT: int = 1100
    #: KVM sanity checks on the KVM_RUN path before vmrun.
    KVM_RUN_CHECKS: int = 400
    #: Wasp-side bookkeeping to pop/push a shell on the pool free list.
    #: Small by design: this is what keeps "Wasp+CA" within 4 % of a bare
    #: vmrun (Section 5.2).
    POOL_BOOKKEEPING: int = 60

    # --- isolation-backend cost classes (Table 2 spectrum) -----------------
    # Per the timing-simulation argument (Mhatre & Chandran, PAPERS.md),
    # each mechanism's boundary crossings get their own calibrated cost
    # classes rather than sharing one generic "switch" constant.
    #: Scheduler context switch between host threads/processes (dequeue,
    #: state save/restore, wakeup latency) -- one direction.
    CONTEXT_SWITCH: int = 6000
    #: ``prctl(PR_SET_SYSCALL_USER_DISPATCH, ...)`` registration: one
    #: syscall plus the kernel-side selector bookkeeping.  This is the
    #: whole creation cost of an in-process SUD context -- near zero.
    PRCTL_SUD_SETUP: int = 900
    #: A store to the per-thread SUD selector byte (allow <-> block).
    SUD_SELECTOR_WRITE: int = 6
    #: SIGSYS delivery for a syscall trapped by Syscall User Dispatch:
    #: kernel signal frame setup + handler entry.
    SIGSYS_TRAP: int = 3600
    #: ``sigreturn`` back out of the trap handler.
    SIGRETURN: int = 1400
    #: One ``mprotect`` call over a privileged region (syscall + page
    #: table update + TLB shootdown).
    MPROTECT_REGION: int = 1800
    #: Userland scheduler decision after a trap bounces control back
    #: (the vk_isolate-style "hand control to a scheduler callback").
    SCHED_BOUNCE: int = 250
    #: ``unshare``/``clone`` flags for one namespace (mnt/pid/net/ipc/uts).
    NAMESPACE_CLONE: int = us_to_cycles(180.0)
    #: cgroup hierarchy setup for a fresh sandbox.
    CGROUP_SETUP: int = us_to_cycles(350.0)
    #: ``pivot_root`` + minimal rootfs bind mounts.
    ROOTFS_PIVOT: int = us_to_cycles(600.0)
    #: Installing one seccomp-BPF filter rule (load-time, per rule).
    SECCOMP_LOAD_PER_RULE: int = 320
    #: Evaluating one rule of the seccomp filter chain (per syscall).
    SECCOMP_EVAL_PER_RULE: int = 18
    #: Fixed per-syscall seccomp entry overhead before the chain walks.
    SECCOMP_EVAL_BASE: int = 260

    # --- SGX comparison (Fig. 8, measured on the Comet Lake machine) -------
    #: ECREATE/EADD/EINIT for a minimal enclave.
    SGX_CREATE: int = us_to_cycles(5600.0)
    #: One ECALL into an existing enclave.
    SGX_ECALL: int = 14_000

    # --- guest application cost model ---------------------------------------
    #: Cycles charged per *hosted-guest* Python-level call.  Chosen so a
    #: recursive ``fib(20)`` costs ~100 us of guest work, matching the knee
    #: of Figure 11 (virtine overheads amortised by ~100 us of work).
    GUEST_CALL: int = 12
    #: Cycles charged per byte processed by bulk guest compute loops
    #: (cipher rounds, base64, string handling), beyond explicit charges.
    GUEST_BYTE: float = 0.5
    #: One-time initialisation of the guest libc (the newlib-analog's
    #: startup: heap setup, stdio structures, reentrancy state).  This is
    #: the work snapshotting elides for C-extension virtines (Figure 7).
    GUEST_LIBC_INIT: int = 15_000
    #: Per-argument marshalling bookkeeping on top of the byte copies.
    MARSHAL_PER_ARG: int = 80

    # --- network loopback model ---------------------------------------------
    #: One-way latency for a loopback packet beyond the syscall costs
    #: (kernel network stack traversal, softirq delivery, wakeup).  Sized
    #: to a realistic localhost TCP hop so the HTTP experiments' fixed
    #: virtine overhead sits in the paper's proportion of a request.
    LOOPBACK_LATENCY: int = us_to_cycles(55.0)

    # Derived helpers --------------------------------------------------------
    def memcpy(self, nbytes: int) -> int:
        """Cycles to copy ``nbytes`` at tinker's memcpy bandwidth."""
        return int(nbytes * self.MEMCPY_CYCLES_PER_BYTE)

    def memset(self, nbytes: int) -> int:
        """Cycles to clear ``nbytes`` (same bandwidth as memcpy)."""
        return int(nbytes * self.MEMCPY_CYCLES_PER_BYTE)

    def checksum(self, nbytes: int) -> int:
        """Cycles to checksum ``nbytes`` (snapshot integrity checks)."""
        return int(nbytes * self.CHECKSUM_CYCLES_PER_BYTE)

    def syscall(self) -> int:
        """Cycles for one ordinary host syscall round trip."""
        return self.RING_TRANSITION + self.SYSCALL_BODY

    def ioctl(self) -> int:
        """Cycles for one ioctl round trip (excluding in-kernel work)."""
        return self.RING_TRANSITION + self.IOCTL_OVERHEAD

    def vmrun_roundtrip(self) -> int:
        """The "hardware limit": KVM_RUN ioctl + vmrun + immediate exit.

        This is the "vmrun" series of Figures 2 and 8 -- entering an
        already-constructed virtual context and exiting immediately.
        """
        return (
            self.ioctl() + self.KVM_RUN_CHECKS + self.VMRUN_ENTRY + self.VMRUN_EXIT
        )


#: The shared, calibrated cost model instance.
COSTS = CostModel()
