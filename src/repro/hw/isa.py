"""A small x86-flavoured instruction set: assembler and interpreter.

The minimal virtine runtime environments are "roughly 160 lines of
assembly" (Section 4.2).  To make the boot-cost experiments *emerge* from
executing real operations -- rather than from canned constants -- the
guest boot code in this reproduction is written in a NASM-flavoured
assembly dialect, assembled by :class:`Assembler` into a byte image, and
executed instruction-by-instruction by :class:`Interpreter` with each
instruction charging cycles from the cost model.

Supported instruction classes:

* data movement: ``mov``, ``push``, ``pop``, ``stos64``
* ALU: ``add``, ``sub``, ``and``, ``or``, ``xor``, ``shl``, ``shr``,
  ``inc``, ``dec``, ``cmp``, ``test``
* control flow: ``jmp``, conditional jumps, ``call``, ``ret``
* system: ``hlt``, ``cli``, ``sti``, ``lgdt``, ``ljmp`` (mode switch),
  ``wrmsr``, ``rdmsr``, moves to/from CR0/CR3/CR4
* I/O: ``out``/``in`` on virtual ports (the hypercall mechanism)

Mode transitions (real -> protected -> long) follow the architectural
requirements enforced by :class:`repro.hw.cpu.CPU`.
"""

from __future__ import annotations

import re
import struct
from collections import deque
from dataclasses import dataclass, field

from repro.hw.costs import COSTS, CostModel
from repro.hw.clock import Clock
from repro.hw.cpu import CPU, CpuFault, GPRS, MSR_EFER, Mode
from repro.hw.memory import GuestMemory
from repro.hw.paging import PageFault, translate
from repro.trace.tracer import NO_TRACE, Category, Tracer


class AssemblyError(Exception):
    """A problem assembling source text."""


class ExecutionError(Exception):
    """A problem during guest execution (bad fetch, unmapped code, ...)."""


# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand."""

    name: str


@dataclass(frozen=True)
class CtrlReg:
    """A control-register operand (cr0/cr3/cr4)."""

    name: str


@dataclass(frozen=True)
class Imm:
    """An immediate operand (label references resolve to these)."""

    value: int


@dataclass(frozen=True)
class MemRef:
    """A memory operand: ``[base + disp]`` (base may be omitted)."""

    base: str | None
    disp: int


Operand = Reg | CtrlReg | Imm | MemRef


@dataclass(frozen=True)
class Instr:
    """One assembled instruction."""

    op: str
    operands: tuple[Operand, ...]
    addr: int
    size: int
    line: str = ""


@dataclass
class Program:
    """An assembled program: instructions, labels, and the byte image."""

    instructions: list[Instr]
    labels: dict[str, int]  # label -> address
    image: bytes
    base: int

    @property
    def size(self) -> int:
        return len(self.image)

    def entry(self, label: str = "_start") -> int:
        """Address of a label (default ``_start``; falls back to base)."""
        if label in self.labels:
            return self.labels[label]
        if label == "_start":
            return self.base
        raise AssemblyError(f"no such label: {label}")


# --------------------------------------------------------------------------
# Assembler
# --------------------------------------------------------------------------

_OPCODES = {
    "mov": 0x01, "add": 0x02, "sub": 0x03, "and": 0x04, "or": 0x05,
    "xor": 0x06, "shl": 0x07, "shr": 0x08, "inc": 0x09, "dec": 0x0A,
    "cmp": 0x0B, "test": 0x0C, "jmp": 0x0D, "je": 0x0E, "jne": 0x0F,
    "jl": 0x10, "jle": 0x11, "jg": 0x12, "jge": 0x13, "jc": 0x14,
    "jnc": 0x15, "call": 0x16, "ret": 0x17, "push": 0x18, "pop": 0x19,
    "hlt": 0x1A, "out": 0x1B, "in": 0x1C, "cli": 0x1D, "sti": 0x1E,
    "lgdt": 0x1F, "ljmp": 0x20, "wrmsr": 0x21, "rdmsr": 0x22,
    "stos64": 0x23, "nop": 0x24, "mul": 0x25,
}

_JCC_ALIASES = {"jz": "je", "jnz": "jne", "jb": "jc", "jae": "jnc"}

_CTRL_REGS = {"cr0", "cr3", "cr4"}

_MEM_RE = re.compile(
    r"^\[\s*(?:(?P<base>[a-z][a-z0-9]*)\s*)?"
    r"(?:(?P<sign>[+-])\s*)?(?P<disp>0x[0-9a-fA-F]+|\d+)?\s*\]$"
)


def _parse_int(text: str) -> int:
    text = text.strip()
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text, 10)


def _operand_size(operand: Operand) -> int:
    """Byte size of an operand in our simple encoding."""
    if isinstance(operand, (Reg, CtrlReg)):
        return 1
    if isinstance(operand, Imm):
        return 8
    return 9  # MemRef: 1 base byte + 8 disp bytes


def _encode_operand(operand: Operand) -> bytes:
    if isinstance(operand, Reg):
        return bytes([0x80 | GPRS.index(operand.name)])
    if isinstance(operand, CtrlReg):
        return bytes([0xC0 | ("cr0", "cr3", "cr4").index(operand.name)])
    if isinstance(operand, Imm):
        return struct.pack("<q", operand.value & 0xFFFFFFFFFFFFFFFF if operand.value >= 0 else operand.value)
    base_code = 0xFF if operand.base is None else GPRS.index(operand.base)
    return bytes([base_code]) + struct.pack("<q", operand.disp)


class Assembler:
    """Two-pass assembler for the mini-ISA dialect."""

    def __init__(self, base: int = 0x8000) -> None:
        self.base = base

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` into a :class:`Program` based at ``base``."""
        lines = self._clean(source)
        # Pass 1: lay out instructions, collect label addresses.
        addr = self.base
        labels: dict[str, int] = {}
        pending: list[tuple[str, list[str], int, str]] = []
        for line in lines:
            if line.endswith(":"):
                label = line[:-1].strip()
                if not label or not re.match(r"^[A-Za-z_.][\w.]*$", label):
                    raise AssemblyError(f"bad label: {line!r}")
                if label in labels:
                    raise AssemblyError(f"duplicate label: {label}")
                labels[label] = addr
                continue
            op, raw_operands = self._split(line)
            size = 1 + sum(
                _operand_size(self._parse_operand(tok, labels, resolve=False))
                for tok in raw_operands
            )
            pending.append((op, raw_operands, addr, line))
            addr += size
        # Pass 2: resolve labels, encode.
        instructions: list[Instr] = []
        image = bytearray()
        for op, raw_operands, insn_addr, line in pending:
            operands = tuple(
                self._parse_operand(tok, labels, resolve=True) for tok in raw_operands
            )
            self._validate(op, operands, line)
            encoded = bytes([_OPCODES[op]]) + b"".join(
                _encode_operand(o) for o in operands
            )
            instructions.append(
                Instr(op=op, operands=operands, addr=insn_addr, size=len(encoded), line=line)
            )
            image.extend(encoded)
        return Program(
            instructions=instructions, labels=labels, image=bytes(image), base=self.base
        )

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _clean(source: str) -> list[str]:
        cleaned = []
        for raw in source.splitlines():
            line = raw.split(";", 1)[0].strip()
            if line:
                cleaned.append(line)
        return cleaned

    @staticmethod
    def _split(line: str) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        op = parts[0].lower()
        op = _JCC_ALIASES.get(op, op)
        if op not in _OPCODES:
            raise AssemblyError(f"unknown mnemonic {op!r} in {line!r}")
        if len(parts) == 1:
            return op, []
        operands = [tok.strip() for tok in parts[1].split(",")]
        return op, operands

    def _parse_operand(self, token: str, labels: dict[str, int], resolve: bool) -> Operand:
        token = token.strip()
        lowered = token.lower()
        if lowered in GPRS:
            return Reg(lowered)
        if lowered in _CTRL_REGS:
            return CtrlReg(lowered)
        if lowered in ("mode32", "mode64"):
            return Imm(32 if lowered == "mode32" else 64)
        if token.startswith("["):
            match = _MEM_RE.match(lowered)
            if not match:
                raise AssemblyError(f"bad memory operand {token!r}")
            base = match.group("base")
            disp_text = match.group("disp")
            if base is not None and base not in GPRS:
                # "[label]" form: the base is actually a symbol.
                if disp_text is None:
                    return MemRef(None, self._symbol(base, labels, resolve))
                raise AssemblyError(f"bad base register {base!r} in {token!r}")
            disp = _parse_int(disp_text) if disp_text else 0
            if match.group("sign") == "-":
                disp = -disp
            return MemRef(base, disp)
        try:
            return Imm(_parse_int(token))
        except ValueError:
            return Imm(self._symbol(token, labels, resolve))

    @staticmethod
    def _symbol(name: str, labels: dict[str, int], resolve: bool) -> int:
        if not resolve:
            return 0
        if name not in labels:
            raise AssemblyError(f"undefined symbol {name!r}")
        return labels[name]

    @staticmethod
    def _validate(op: str, operands: tuple[Operand, ...], line: str) -> None:
        arity = {
            "mov": 2, "add": 2, "sub": 2, "and": 2, "or": 2, "xor": 2,
            "shl": 2, "shr": 2, "cmp": 2, "test": 2, "out": 2, "in": 2,
            "ljmp": 2, "mul": 2,
            "inc": 1, "dec": 1, "jmp": 1, "je": 1, "jne": 1, "jl": 1,
            "jle": 1, "jg": 1, "jge": 1, "jc": 1, "jnc": 1, "call": 1,
            "push": 1, "pop": 1, "lgdt": 1,
            "ret": 0, "hlt": 0, "cli": 0, "sti": 0, "wrmsr": 0,
            "rdmsr": 0, "stos64": 0, "nop": 0,
        }[op]
        if len(operands) != arity:
            raise AssemblyError(f"{op} expects {arity} operand(s): {line!r}")


# --------------------------------------------------------------------------
# VM exits raised by the interpreter
# --------------------------------------------------------------------------


class GuestExit(Exception):
    """Base class for events that return control to the hypervisor."""


class HaltExit(GuestExit):
    """The guest executed ``hlt``."""


@dataclass
class IOOutExit(GuestExit):
    """The guest executed ``out port, reg`` (a hypercall)."""

    port: int
    value: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"out(port={self.port:#x}, value={self.value:#x})"


@dataclass
class IOInExit(GuestExit):
    """The guest executed ``in reg, port`` and awaits a value."""

    port: int
    dest: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"in(port={self.port:#x} -> {self.dest})"


class TripleFault(GuestExit):
    """An unrecoverable guest fault (shuts the context down)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------------
# Interpreter
# --------------------------------------------------------------------------


class Interpreter:
    """Executes an assembled :class:`Program` against CPU + memory.

    Each step charges cycles on the shared clock according to the cost
    model; mode transitions charge the Table 1 component costs.  Component
    costs are additionally tallied into :attr:`component_cycles` keyed by
    the Table 1 row names, which is how the boot-breakdown benchmark
    recovers the per-component numbers.
    """

    STACK_WIDTH = {Mode.REAL16: 2, Mode.PROT32: 4, Mode.LONG64: 8}

    def __init__(
        self,
        cpu: CPU,
        memory: GuestMemory,
        clock: Clock,
        costs: CostModel = COSTS,
        tracer: Tracer | None = None,
    ) -> None:
        self.cpu = cpu
        self.memory = memory
        self.clock = clock
        self.costs = costs
        #: Cycle tracer (disabled by default; never charges cycles).
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.program: Program | None = None
        self._by_addr: dict[int, Instr] = {}
        self.instructions_retired = 0
        self.component_cycles: dict[str, int] = {}
        self._first_instruction_pending = True
        self._trace: "deque[str] | None" = None

    # -- program management ---------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Attach ``program`` and write its image into guest memory."""
        self.memory.load_bytes(program.image, program.base)
        self.attach_program(program)

    def attach_program(self, program: Program, reset_rip: bool = True) -> None:
        """Attach ``program`` without rewriting memory (snapshot resume)."""
        self.program = program
        self._by_addr = {insn.addr: insn for insn in program.instructions}
        if reset_rip:
            self.cpu.rip = program.entry()
        self._first_instruction_pending = True

    def mark_entry(self) -> None:
        """Charge the first-instruction fetch cost on the next step."""
        self._first_instruction_pending = True

    # -- execution tracing (debugging aid) -------------------------------------
    def enable_trace(self, depth: int = 32) -> None:
        """Keep a ring buffer of the last ``depth`` executed instructions.

        The trace is what you want when a guest triple-faults: the last
        few instructions before the bad fetch.  Disabled by default (it
        costs Python time, never simulated cycles).
        """
        if depth <= 0:
            raise ValueError("trace depth must be positive")
        self._trace = deque(maxlen=depth)

    def disable_trace(self) -> None:
        self._trace = None

    def trace(self) -> list[str]:
        """The recorded instruction history, oldest first."""
        return list(self._trace) if self._trace is not None else []

    # -- address translation -----------------------------------------------------
    def _phys(self, vaddr: int) -> int:
        if self.cpu.paging_enabled:
            try:
                return translate(self.memory, self.cpu.cr3, vaddr)
            except PageFault as fault:
                raise TripleFault(str(fault)) from fault
        return vaddr

    def _load(self, vaddr: int, width: int) -> int:
        addr = self._phys(vaddr)
        readers = {1: self.memory.read_u8, 2: self.memory.read_u16,
                   4: self.memory.read_u32, 8: self.memory.read_u64}
        return readers[width](addr)

    def _store(self, vaddr: int, value: int, width: int) -> None:
        addr = self._phys(vaddr)
        writers = {1: self.memory.write_u8, 2: self.memory.write_u16,
                   4: self.memory.write_u32, 8: self.memory.write_u64}
        writers[width](addr, value)

    # -- operand evaluation --------------------------------------------------------
    def _effective_addr(self, ref: MemRef) -> int:
        base = self.cpu.read_reg(ref.base) if ref.base else 0
        return (base + ref.disp) & 0xFFFFFFFFFFFFFFFF

    def _read_operand(self, operand: Operand) -> int:
        if isinstance(operand, Reg):
            return self.cpu.read_reg(operand.name)
        if isinstance(operand, CtrlReg):
            return self.cpu.read_cr(operand.name)
        if isinstance(operand, Imm):
            return operand.value & self.cpu.mode.mask
        self.clock.advance(self.costs.INSN_MEM)
        width = self.cpu.mode.value // 8
        return self._load(self._effective_addr(operand), width)

    def _write_operand(self, operand: Operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.cpu.write_reg(operand.name, value)
            return
        if isinstance(operand, CtrlReg):
            self._write_ctrl(operand.name, value)
            return
        if isinstance(operand, Imm):
            raise ExecutionError("cannot write to an immediate")
        self.clock.advance(self.costs.INSN_MEM + self.costs.STORE8)
        width = self.cpu.mode.value // 8
        self._store(self._effective_addr(operand), value & self.cpu.mode.mask, width)

    def _write_ctrl(self, name: str, value: int) -> None:
        costs = self.costs
        events = self.cpu.write_cr(name, value)
        if name == "cr3":
            self._charge_component("cr3 load", costs.CR3_LOAD)
        else:
            self.clock.advance(costs.CR_WRITE)
        if events.get("pe_set"):
            self._charge_component("protected transition", costs.CR0_PE_FLIP)
        if events.get("pg_set"):
            self._charge_component("paging enable", costs.CR0_PG_FLIP)

    def _charge_component(self, component: str, cycles: int) -> None:
        self.clock.advance(cycles)
        self.component_cycles[component] = (
            self.component_cycles.get(component, 0) + cycles
        )
        self.tracer.component(component, cycles)

    # -- stack ---------------------------------------------------------------------
    def _push(self, value: int) -> None:
        width = self.STACK_WIDTH[self.cpu.mode]
        sp = (self.cpu.read_reg("sp") - width) & self.cpu.mode.mask
        self.cpu.write_reg("sp", sp)
        self.clock.advance(self.costs.INSN_MEM + self.costs.STORE8)
        self._store(sp, value & self.cpu.mode.mask, width)

    def _pop(self) -> int:
        width = self.STACK_WIDTH[self.cpu.mode]
        sp = self.cpu.read_reg("sp")
        self.clock.advance(self.costs.INSN_MEM)
        value = self._load(sp, width)
        self.cpu.write_reg("sp", (sp + width) & self.cpu.mode.mask)
        return value

    # -- signed helpers -----------------------------------------------------------
    def _signed(self, value: int) -> int:
        mask = self.cpu.mode.mask
        sign_bit = (mask + 1) >> 1
        return value - (mask + 1) if value & sign_bit else value

    # -- execution --------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (raises a :class:`GuestExit` on exits)."""
        if self.program is None:
            raise ExecutionError("no program loaded")
        if self.cpu.halted:
            raise HaltExit()
        insn = self._by_addr.get(self.cpu.rip)
        if insn is None:
            raise TripleFault(f"instruction fetch from unmapped rip {self.cpu.rip:#x}")
        if self._first_instruction_pending:
            self._first_instruction_pending = False
            self._charge_component("first instruction", self.costs.FIRST_INSTRUCTION)
        if self._trace is not None:
            self._trace.append(f"{insn.addr:#06x}: {insn.line or insn.op}")
        self.clock.advance(self.costs.INSN_BASE)
        self.instructions_retired += 1
        next_rip = insn.addr + insn.size
        self.cpu.rip = next_rip  # may be overwritten by control flow
        self._dispatch(insn)

    def _dispatch(self, insn: Instr) -> None:
        op = insn.op
        ops = insn.operands
        cpu = self.cpu
        costs = self.costs

        if op == "nop":
            return
        if op == "mov":
            self._write_operand(ops[0], self._read_operand(ops[1]))
            return
        if op in ("add", "sub", "and", "or", "xor", "shl", "shr", "mul"):
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            result = {
                "add": lhs + rhs,
                "sub": lhs - rhs,
                "and": lhs & rhs,
                "or": lhs | rhs,
                "xor": lhs ^ rhs,
                "shl": lhs << (rhs & 63),
                "shr": lhs >> (rhs & 63),
                "mul": lhs * rhs,
            }[op]
            cpu.flags.set_from_result(result, cpu.mode.mask)
            self._write_operand(ops[0], result & cpu.mode.mask)
            return
        if op in ("inc", "dec"):
            value = self._read_operand(ops[0])
            result = value + 1 if op == "inc" else value - 1
            cpu.flags.set_from_result(result, cpu.mode.mask)
            self._write_operand(ops[0], result & cpu.mode.mask)
            return
        if op == "cmp":
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            cpu.flags.set_from_result(lhs - rhs, cpu.mode.mask)
            cpu.flags.sign = self._signed(lhs) - self._signed(rhs) < 0
            return
        if op == "test":
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            cpu.flags.set_from_result(lhs & rhs, cpu.mode.mask)
            return
        if op == "jmp":
            cpu.rip = self._read_operand(ops[0])
            return
        if op in ("je", "jne", "jl", "jle", "jg", "jge", "jc", "jnc"):
            flags = cpu.flags
            taken = {
                "je": flags.zero,
                "jne": not flags.zero,
                "jl": flags.sign,
                "jle": flags.sign or flags.zero,
                "jg": not flags.sign and not flags.zero,
                "jge": not flags.sign,
                "jc": flags.carry,
                "jnc": not flags.carry,
            }[op]
            if taken:
                cpu.rip = self._read_operand(ops[0])
            return
        if op == "call":
            self.clock.advance(costs.INSN_CALL)
            target = self._read_operand(ops[0])
            self._push(cpu.rip)
            cpu.rip = target
            return
        if op == "ret":
            self.clock.advance(costs.INSN_CALL)
            cpu.rip = self._pop()
            return
        if op == "push":
            self._push(self._read_operand(ops[0]))
            return
        if op == "pop":
            if not isinstance(ops[0], Reg):
                raise ExecutionError("pop requires a register operand")
            cpu.write_reg(ops[0].name, self._pop())
            return
        if op == "hlt":
            cpu.halted = True
            raise HaltExit()
        if op == "out":
            port = self._read_operand(ops[0])
            value = self._read_operand(ops[1])
            raise IOOutExit(port=port, value=value)
        if op == "in":
            if not isinstance(ops[0], Reg):
                raise ExecutionError("in requires a register destination")
            port = self._read_operand(ops[1])
            raise IOInExit(port=port, dest=ops[0].name)
        if op == "cli":
            cpu.flags.interrupts = False
            return
        if op == "sti":
            cpu.flags.interrupts = True
            return
        if op == "lgdt":
            base = self._read_operand(ops[0])
            cost = costs.LGDT_REAL if cpu.mode is Mode.REAL16 else costs.LGDT_PROTECTED
            label = (
                "load 32-bit gdt (lgdt)"
                if cpu.mode is Mode.REAL16
                else "long transition (lgdt)"
            )
            self._charge_component(label, cost)
            cpu.gdtr.base = base
            cpu.gdtr.limit = 0xFFFF
            cpu.gdtr.loaded = True
            return
        if op == "ljmp":
            bits = self._read_operand(ops[0])
            target = ops[1]
            target_addr = (
                target.value if isinstance(target, Imm) else self._read_operand(target)
            )
            if bits == 32:
                self._charge_component("jump to 32-bit (ljmp)", costs.LJMP_TO_32)
                cpu.far_jump(Mode.PROT32, target_addr)
                self.tracer.instant("cpu.mode:PROT32", Category.BOOT)
            elif bits == 64:
                self._charge_component("jump to 64-bit (ljmp)", costs.LJMP_TO_64)
                cpu.far_jump(Mode.LONG64, target_addr)
                self.tracer.instant("cpu.mode:LONG64", Category.BOOT)
            else:
                raise ExecutionError(f"ljmp to unsupported width {bits}")
            return
        if op == "wrmsr":
            self.clock.advance(costs.CR_WRITE)
            msr = cpu.read_reg("cx") if cpu.mode is not Mode.REAL16 else cpu.regs["cx"]
            value = (cpu.regs["dx"] << 32) | (cpu.regs["ax"] & 0xFFFFFFFF)
            cpu.wrmsr(msr if msr else MSR_EFER, value)
            return
        if op == "rdmsr":
            self.clock.advance(costs.CR_WRITE)
            msr = cpu.regs["cx"] or MSR_EFER
            value = cpu.rdmsr(msr)
            cpu.regs["ax"] = value & 0xFFFFFFFF
            cpu.regs["dx"] = value >> 32
            return
        if op == "stos64":
            di = cpu.read_reg("di")
            self.clock.advance(costs.INSN_MEM + costs.STORE8)
            self._store(di, cpu.regs["ax"], 8)
            cpu.write_reg("di", di + 8)
            return
        raise ExecutionError(f"unimplemented op {op!r}")  # pragma: no cover

    def run(self, max_steps: int = 50_000_000) -> GuestExit:
        """Run until the guest exits; returns the exit event."""
        for _ in range(max_steps):
            try:
                self.step()
            except GuestExit as exit_event:
                return exit_event
        raise ExecutionError(f"guest did not exit within {max_steps} steps")

    def resume_with_input(self, dest: str, value: int) -> None:
        """Complete a pending ``in`` by writing the port value to ``dest``."""
        self.cpu.write_reg(dest, value)
