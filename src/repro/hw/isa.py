"""A small x86-flavoured instruction set: assembler and interpreter.

The minimal virtine runtime environments are "roughly 160 lines of
assembly" (Section 4.2).  To make the boot-cost experiments *emerge* from
executing real operations -- rather than from canned constants -- the
guest boot code in this reproduction is written in a NASM-flavoured
assembly dialect, assembled by :class:`Assembler` into a byte image, and
executed instruction-by-instruction by :class:`Interpreter` with each
instruction charging cycles from the cost model.

Supported instruction classes:

* data movement: ``mov``, ``push``, ``pop``, ``stos64``
* ALU: ``add``, ``sub``, ``and``, ``or``, ``xor``, ``shl``, ``shr``,
  ``inc``, ``dec``, ``cmp``, ``test``
* control flow: ``jmp``, conditional jumps, ``call``, ``ret``
* system: ``hlt``, ``cli``, ``sti``, ``lgdt``, ``ljmp`` (mode switch),
  ``wrmsr``, ``rdmsr``, moves to/from CR0/CR3/CR4
* I/O: ``out``/``in`` on virtual ports (the hypercall mechanism)

Mode transitions (real -> protected -> long) follow the architectural
requirements enforced by :class:`repro.hw.cpu.CPU`.
"""

from __future__ import annotations

import re
import struct
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.hw.costs import COSTS, CostModel
from repro.hw.clock import Clock
from repro.hw.cpu import CPU, CR0_PG, CpuFault, GPRS, MSR_EFER, Mode
from repro.hw.jit import JitDomain, compile_block
from repro.hw.memory import GuestMemory
from repro.hw.paging import PageFault, translate, translate_watched
from repro.trace.tracer import NO_TRACE, Category, Tracer


class AssemblyError(Exception):
    """A problem assembling source text."""


class ExecutionError(Exception):
    """A problem during guest execution (bad fetch, unmapped code, ...)."""


# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand."""

    name: str


@dataclass(frozen=True)
class CtrlReg:
    """A control-register operand (cr0/cr3/cr4)."""

    name: str


@dataclass(frozen=True)
class Imm:
    """An immediate operand (label references resolve to these)."""

    value: int


@dataclass(frozen=True)
class MemRef:
    """A memory operand: ``[base + disp]`` (base may be omitted)."""

    base: str | None
    disp: int


Operand = Reg | CtrlReg | Imm | MemRef


@dataclass(frozen=True)
class Instr:
    """One assembled instruction."""

    op: str
    operands: tuple[Operand, ...]
    addr: int
    size: int
    line: str = ""


@dataclass
class Program:
    """An assembled program: instructions, labels, and the byte image."""

    instructions: list[Instr]
    labels: dict[str, int]  # label -> address
    image: bytes
    base: int

    @property
    def size(self) -> int:
        return len(self.image)

    def entry(self, label: str = "_start") -> int:
        """Address of a label (default ``_start``; falls back to base)."""
        if label in self.labels:
            return self.labels[label]
        if label == "_start":
            return self.base
        raise AssemblyError(f"no such label: {label}")


# --------------------------------------------------------------------------
# Assembler
# --------------------------------------------------------------------------

_OPCODES = {
    "mov": 0x01, "add": 0x02, "sub": 0x03, "and": 0x04, "or": 0x05,
    "xor": 0x06, "shl": 0x07, "shr": 0x08, "inc": 0x09, "dec": 0x0A,
    "cmp": 0x0B, "test": 0x0C, "jmp": 0x0D, "je": 0x0E, "jne": 0x0F,
    "jl": 0x10, "jle": 0x11, "jg": 0x12, "jge": 0x13, "jc": 0x14,
    "jnc": 0x15, "call": 0x16, "ret": 0x17, "push": 0x18, "pop": 0x19,
    "hlt": 0x1A, "out": 0x1B, "in": 0x1C, "cli": 0x1D, "sti": 0x1E,
    "lgdt": 0x1F, "ljmp": 0x20, "wrmsr": 0x21, "rdmsr": 0x22,
    "stos64": 0x23, "nop": 0x24, "mul": 0x25,
}

_JCC_ALIASES = {"jz": "je", "jnz": "jne", "jb": "jc", "jae": "jnc"}

_CTRL_REGS = {"cr0", "cr3", "cr4"}

_MEM_RE = re.compile(
    r"^\[\s*(?:(?P<base>[a-z][a-z0-9]*)\s*)?"
    r"(?:(?P<sign>[+-])\s*)?(?P<disp>0x[0-9a-fA-F]+|\d+)?\s*\]$"
)


def _parse_int(text: str) -> int:
    text = text.strip()
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text, 10)


def _operand_size(operand: Operand) -> int:
    """Byte size of an operand in our simple encoding."""
    if isinstance(operand, (Reg, CtrlReg)):
        return 1
    if isinstance(operand, Imm):
        return 8
    return 9  # MemRef: 1 base byte + 8 disp bytes


def _encode_operand(operand: Operand) -> bytes:
    if isinstance(operand, Reg):
        return bytes([0x80 | GPRS.index(operand.name)])
    if isinstance(operand, CtrlReg):
        return bytes([0xC0 | ("cr0", "cr3", "cr4").index(operand.name)])
    if isinstance(operand, Imm):
        return struct.pack("<q", operand.value & 0xFFFFFFFFFFFFFFFF if operand.value >= 0 else operand.value)
    base_code = 0xFF if operand.base is None else GPRS.index(operand.base)
    return bytes([base_code]) + struct.pack("<q", operand.disp)


class Assembler:
    """Two-pass assembler for the mini-ISA dialect."""

    def __init__(self, base: int = 0x8000) -> None:
        self.base = base

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` into a :class:`Program` based at ``base``."""
        lines = self._clean(source)
        # Pass 1: lay out instructions, collect label addresses.
        addr = self.base
        labels: dict[str, int] = {}
        pending: list[tuple[str, list[str], int, str]] = []
        for line in lines:
            if line.endswith(":"):
                label = line[:-1].strip()
                if not label or not re.match(r"^[A-Za-z_.][\w.]*$", label):
                    raise AssemblyError(f"bad label: {line!r}")
                if label in labels:
                    raise AssemblyError(f"duplicate label: {label}")
                labels[label] = addr
                continue
            op, raw_operands = self._split(line)
            size = 1 + sum(
                _operand_size(self._parse_operand(tok, labels, resolve=False))
                for tok in raw_operands
            )
            pending.append((op, raw_operands, addr, line))
            addr += size
        # Pass 2: resolve labels, encode.
        instructions: list[Instr] = []
        image = bytearray()
        for op, raw_operands, insn_addr, line in pending:
            operands = tuple(
                self._parse_operand(tok, labels, resolve=True) for tok in raw_operands
            )
            self._validate(op, operands, line)
            encoded = bytes([_OPCODES[op]]) + b"".join(
                _encode_operand(o) for o in operands
            )
            instructions.append(
                Instr(op=op, operands=operands, addr=insn_addr, size=len(encoded), line=line)
            )
            image.extend(encoded)
        return Program(
            instructions=instructions, labels=labels, image=bytes(image), base=self.base
        )

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _clean(source: str) -> list[str]:
        cleaned = []
        for raw in source.splitlines():
            line = raw.split(";", 1)[0].strip()
            if line:
                cleaned.append(line)
        return cleaned

    @staticmethod
    def _split(line: str) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        op = parts[0].lower()
        op = _JCC_ALIASES.get(op, op)
        if op not in _OPCODES:
            raise AssemblyError(f"unknown mnemonic {op!r} in {line!r}")
        if len(parts) == 1:
            return op, []
        operands = [tok.strip() for tok in parts[1].split(",")]
        return op, operands

    def _parse_operand(self, token: str, labels: dict[str, int], resolve: bool) -> Operand:
        token = token.strip()
        lowered = token.lower()
        if lowered in GPRS:
            return Reg(lowered)
        if lowered in _CTRL_REGS:
            return CtrlReg(lowered)
        if lowered in ("mode32", "mode64"):
            return Imm(32 if lowered == "mode32" else 64)
        if token.startswith("["):
            match = _MEM_RE.match(lowered)
            if not match:
                raise AssemblyError(f"bad memory operand {token!r}")
            base = match.group("base")
            disp_text = match.group("disp")
            if base is not None and base not in GPRS:
                # "[label]" form: the base is actually a symbol.
                if disp_text is None:
                    return MemRef(None, self._symbol(base, labels, resolve))
                raise AssemblyError(f"bad base register {base!r} in {token!r}")
            disp = _parse_int(disp_text) if disp_text else 0
            if match.group("sign") == "-":
                disp = -disp
            return MemRef(base, disp)
        try:
            return Imm(_parse_int(token))
        except ValueError:
            return Imm(self._symbol(token, labels, resolve))

    @staticmethod
    def _symbol(name: str, labels: dict[str, int], resolve: bool) -> int:
        if not resolve:
            return 0
        if name not in labels:
            raise AssemblyError(f"undefined symbol {name!r}")
        return labels[name]

    @staticmethod
    def _validate(op: str, operands: tuple[Operand, ...], line: str) -> None:
        arity = {
            "mov": 2, "add": 2, "sub": 2, "and": 2, "or": 2, "xor": 2,
            "shl": 2, "shr": 2, "cmp": 2, "test": 2, "out": 2, "in": 2,
            "ljmp": 2, "mul": 2,
            "inc": 1, "dec": 1, "jmp": 1, "je": 1, "jne": 1, "jl": 1,
            "jle": 1, "jg": 1, "jge": 1, "jc": 1, "jnc": 1, "call": 1,
            "push": 1, "pop": 1, "lgdt": 1,
            "ret": 0, "hlt": 0, "cli": 0, "sti": 0, "wrmsr": 0,
            "rdmsr": 0, "stos64": 0, "nop": 0,
        }[op]
        if len(operands) != arity:
            raise AssemblyError(f"{op} expects {arity} operand(s): {line!r}")


# --------------------------------------------------------------------------
# VM exits raised by the interpreter
# --------------------------------------------------------------------------


class GuestExit(Exception):
    """Base class for events that return control to the hypervisor."""


class HaltExit(GuestExit):
    """The guest executed ``hlt``."""


@dataclass
class IOOutExit(GuestExit):
    """The guest executed ``out port, reg`` (a hypercall)."""

    port: int
    value: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"out(port={self.port:#x}, value={self.value:#x})"


@dataclass
class IOInExit(GuestExit):
    """The guest executed ``in reg, port`` and awaits a value."""

    port: int
    dest: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"in(port={self.port:#x} -> {self.dest})"


class TripleFault(GuestExit):
    """An unrecoverable guest fault (shuts the context down)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------------
# Interpreter
# --------------------------------------------------------------------------

#: ALU semantics, looked up once per instruction (or once at predecode);
#: only the selected operation is ever evaluated.
_ALU_OPS: dict[str, Callable[[int, int], int]] = {
    "add": lambda lhs, rhs: lhs + rhs,
    "sub": lambda lhs, rhs: lhs - rhs,
    "and": lambda lhs, rhs: lhs & rhs,
    "or": lambda lhs, rhs: lhs | rhs,
    "xor": lambda lhs, rhs: lhs ^ rhs,
    "shl": lambda lhs, rhs: lhs << (rhs & 63),
    "shr": lambda lhs, rhs: lhs >> (rhs & 63),
    "mul": lambda lhs, rhs: lhs * rhs,
}

#: Conditional-jump predicates over the flags register.
_JCC: dict[str, Callable[..., bool]] = {
    "je": lambda f: f.zero,
    "jne": lambda f: not f.zero,
    "jl": lambda f: f.sign,
    "jle": lambda f: f.sign or f.zero,
    "jg": lambda f: not f.sign and not f.zero,
    "jge": lambda f: not f.sign,
    "jc": lambda f: f.carry,
    "jnc": lambda f: not f.carry,
}


class Interpreter:
    """Executes an assembled :class:`Program` against CPU + memory.

    Each step charges cycles on the shared clock according to the cost
    model; mode transitions charge the Table 1 component costs.  Component
    costs are additionally tallied into :attr:`component_cycles` keyed by
    the Table 1 row names, which is how the boot-breakdown benchmark
    recovers the per-component numbers.
    """

    STACK_WIDTH = {Mode.REAL16: 2, Mode.PROT32: 4, Mode.LONG64: 8}

    #: Predecode results kept per program object (LRU); shells re-attach
    #: the same ``Program`` on every snapshot restore, so the compile cost
    #: is paid once per image rather than once per launch.
    DECODE_CACHE_PROGRAMS = 8

    def __init__(
        self,
        cpu: CPU,
        memory: GuestMemory,
        clock: Clock,
        costs: CostModel = COSTS,
        tracer: Tracer | None = None,
        *,
        fast_paths: bool = True,
        jit: bool = True,
        jit_domain: JitDomain | None = None,
    ) -> None:
        self.cpu = cpu
        self.memory = memory
        self.clock = clock
        self.costs = costs
        #: Cycle tracer (disabled by default; never charges cycles).
        self.tracer = tracer if tracer is not None else NO_TRACE
        #: Escape hatch: ``False`` disables the software TLB and the
        #: predecoded dispatch, reverting to the reference interpretation
        #: path.  Simulated cycles are identical either way (the
        #: golden-equivalence test enforces this).
        self.fast_paths = fast_paths
        self.program: Program | None = None
        self._by_addr: dict[int, Instr] = {}
        self._decoded: dict[int, Callable[[], None]] = {}
        self._decode_cache: "OrderedDict[int, tuple[Program, dict]]" = OrderedDict()
        self.instructions_retired = 0
        self.component_cycles: dict[str, int] = {}
        #: Optional component-charge observer ``(name, cycles) -> None``
        #: (the boundary recorder's in-guest attribution tap).
        self.on_component: Callable[[str, int], None] | None = None
        self._first_instruction_pending = True
        self._trace: "deque[str] | None" = None
        # Width -> preresolved memory accessors (hoisted out of _load/_store).
        self._mem_read = {1: memory.read_u8, 2: memory.read_u16,
                          4: memory.read_u32, 8: memory.read_u64}
        self._mem_write = {1: memory.write_u8, 2: memory.write_u16,
                           4: memory.write_u32, 8: memory.write_u64}
        # Software TLB: virtual page -> physical frame.  The memory clears
        # it directly (push invalidation) whenever a watched page-table
        # page is written or a bulk mutation rewrites memory, so lookups
        # need no validity check.
        self._tlb: dict[int, int] | None = {} if fast_paths else None
        if self._tlb is not None:
            memory.register_tlb(self._tlb)
            # Fused accessors shadow the _load/_store methods: TLB lookup
            # inlined, one call layer fewer per guest memory access.
            self._load, self._store = self._build_fast_mem()
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.tlb_flushes = 0
        #: Instructions completed before the exception in the last
        #: :meth:`run_steps` call (exact step-budget accounting for the VM).
        self.last_run_steps = 0
        #: Superblock JIT (DESIGN.md SS15): only meaningful on the fast
        #: path -- the reference path is the thing the JIT is verified
        #: against, so ``fast_paths=False`` disables both.
        # Generated superblocks advance the clock by mutating
        # ``clock._cycles`` directly (no bound-method call per flush),
        # which is only equivalent while ``advance`` is the base class's
        # pure accumulator -- a subclass that overrides it (observing or
        # transforming advances) silently falls back to the interpreter.
        self.jit = (bool(jit) and fast_paths
                    and type(clock).advance is Clock.advance)
        self._jit_domain: JitDomain | None = None
        self._jit_cache = None
        self._jit_blocks: dict[int, object] = {}
        self._jit_counts: dict[int, int] = {}
        self._jit_exits: dict[str, int] = {}
        #: Instructions fully completed inside the currently-running
        #: superblock before a raising operation; ``-1`` outside blocks.
        #: The run loop folds it into exact step accounting on exits.
        self._sb_steps = -1
        if self.jit:
            self._jit_domain = (jit_domain if jit_domain is not None
                                else JitDomain())
            self._jit_exits = self._jit_domain.side_exits
            memory.add_code_watch_listener(self._jit_invalidate_page)
            # Superblock prologue context: one tuple unpack binds every
            # per-interpreter object the generated code needs.  All of
            # these are identity-stable for the interpreter's lifetime
            # (cpu.regs is updated in place by reset()/load_state();
            # cpu.flags is NOT in here because those paths replace it).
            self._sb_ctx = (cpu, cpu.regs, clock,
                            self._tlb.get if self._tlb is not None else None,
                            self._phys, self._mem_read, self._mem_write,
                            memory)

    # -- program management ---------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Attach ``program`` and write its image into guest memory."""
        self.memory.load_bytes(program.image, program.base)
        self.attach_program(program)

    def attach_program(self, program: Program, reset_rip: bool = True) -> None:
        """Attach ``program`` without rewriting memory (snapshot resume)."""
        self.program = program
        self._by_addr = {insn.addr: insn for insn in program.instructions}
        self._decoded = self._predecode(program) if self.fast_paths else {}
        if self.jit and self._decoded:
            # Bind the per-image compiled-block cache (content-hash keyed,
            # shared across every shell of the image in this domain):
            # pooled and COW-restored shells re-attach here and start
            # with whatever superblocks previous launches compiled.
            cache = self._jit_domain.image_cache(program, self.costs)
            cache.note_attach()
            self._jit_cache = cache
            self._jit_blocks = cache.blocks
            self._jit_counts = cache.counts
            pages = cache.watched_pages()
            if pages:
                self.memory.watch_code_pages(pages)
        else:
            self._jit_cache = None
            self._jit_blocks = {}
            self._jit_counts = {}
        if reset_rip:
            self.cpu.rip = program.entry()
        self._first_instruction_pending = True
        self.tlb_flush()

    def _jit_invalidate_page(self, page: int) -> None:
        """Push invalidation: a guest store touched a compiled code page."""
        cache = self._jit_cache
        if cache is not None:
            cache.invalidate_page(page)

    def mark_entry(self) -> None:
        """Charge the first-instruction fetch cost on the next step."""
        self._first_instruction_pending = True
        self.tlb_flush()

    # -- execution tracing (debugging aid) -------------------------------------
    def enable_trace(self, depth: int = 32) -> None:
        """Keep a ring buffer of the last ``depth`` executed instructions.

        The trace is what you want when a guest triple-faults: the last
        few instructions before the bad fetch.  Disabled by default (it
        costs Python time, never simulated cycles).
        """
        if depth <= 0:
            raise ValueError("trace depth must be positive")
        self._trace = deque(maxlen=depth)

    def disable_trace(self) -> None:
        self._trace = None

    def trace(self) -> list[str]:
        """The recorded instruction history, oldest first."""
        return list(self._trace) if self._trace is not None else []

    # -- address translation -----------------------------------------------------
    def tlb_flush(self) -> None:
        """Drop every cached translation.

        Called on CR0/CR3/CR4 writes, EFER updates (``wrmsr``), program
        (re)attachment, and shell re-entry -- a superset of the
        architectural invalidation points, which is always safe (a flush
        never changes simulated cycles; translations are free either way).
        """
        if self._tlb:
            self._tlb.clear()
            self.tlb_flushes += 1
        self.memory.clear_translation_watch()

    def _phys(self, vaddr: int) -> int:
        cpu = self.cpu
        if not cpu.cr0 & CR0_PG:
            return vaddr
        tlb = self._tlb
        if tlb is None:
            try:
                return translate(self.memory, cpu.cr3, vaddr)
            except PageFault as fault:
                raise TripleFault(str(fault)) from fault
        frame = tlb.get(vaddr >> 12)
        if frame is not None:
            self.tlb_hits += 1
            return frame | (vaddr & 0xFFF)
        self.tlb_misses += 1
        try:
            phys = translate_watched(self.memory, cpu.cr3, vaddr)
        except PageFault as fault:
            raise TripleFault(str(fault)) from fault
        # Low 12 bits of the translation track the virtual offset for both
        # 4 KB and 2 MB mappings, so caching the 4 KB frame is exact.
        tlb[vaddr >> 12] = phys & ~0xFFF
        return phys

    def _load(self, vaddr: int, width: int) -> int:
        return self._mem_read[width](self._phys(vaddr))

    def _store(self, vaddr: int, value: int, width: int) -> None:
        self._mem_write[width](self._phys(vaddr), value)

    def _build_fast_mem(self) -> tuple[Callable[[int, int], int],
                                       Callable[[int, int, int], None]]:
        """Load/store closures with the TLB hit path inlined.

        Semantics (including miss handling, fault wrapping, and the
        hit/miss counters) match the ``_load``/``_store`` methods these
        shadow; only the call layering differs.
        """
        cpu = self.cpu
        tlb_get = self._tlb.get
        walk = self._phys  # miss path: walks, caches, counts, wraps faults
        mem_read = self._mem_read
        mem_write = self._mem_write

        def fast_load(vaddr: int, width: int) -> int:
            if cpu.cr0 & CR0_PG:
                frame = tlb_get(vaddr >> 12)
                if frame is None:
                    phys = walk(vaddr)
                else:
                    self.tlb_hits += 1
                    phys = frame | (vaddr & 0xFFF)
            else:
                phys = vaddr
            return mem_read[width](phys)

        def fast_store(vaddr: int, value: int, width: int) -> None:
            if cpu.cr0 & CR0_PG:
                frame = tlb_get(vaddr >> 12)
                if frame is None:
                    phys = walk(vaddr)
                else:
                    self.tlb_hits += 1
                    phys = frame | (vaddr & 0xFFF)
            else:
                phys = vaddr
            mem_write[width](phys, value)

        return fast_load, fast_store

    # -- operand evaluation --------------------------------------------------------
    def _effective_addr(self, ref: MemRef) -> int:
        base = self.cpu.read_reg(ref.base) if ref.base else 0
        return (base + ref.disp) & 0xFFFFFFFFFFFFFFFF

    def _read_operand(self, operand: Operand) -> int:
        if isinstance(operand, Reg):
            return self.cpu.read_reg(operand.name)
        if isinstance(operand, CtrlReg):
            return self.cpu.read_cr(operand.name)
        if isinstance(operand, Imm):
            return operand.value & self.cpu.mode.mask
        self.clock.advance(self.costs.INSN_MEM)
        width = self.cpu.mode.value // 8
        return self._load(self._effective_addr(operand), width)

    def _write_operand(self, operand: Operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.cpu.write_reg(operand.name, value)
            return
        if isinstance(operand, CtrlReg):
            self._write_ctrl(operand.name, value)
            return
        if isinstance(operand, Imm):
            raise ExecutionError("cannot write to an immediate")
        self.clock.advance(self.costs.INSN_MEM + self.costs.STORE8)
        width = self.cpu.mode.value // 8
        self._store(self._effective_addr(operand), value & self.cpu.mode.mask, width)

    def _write_ctrl(self, name: str, value: int) -> None:
        costs = self.costs
        events = self.cpu.write_cr(name, value)
        # Any control-register write is a TLB invalidation point (CR3
        # reload, CR0.PG flip, CR4.PAE change).
        self.tlb_flush()
        if name == "cr3":
            self._charge_component("cr3 load", costs.CR3_LOAD)
        else:
            self.clock.advance(costs.CR_WRITE)
        if events.get("pe_set"):
            self._charge_component("protected transition", costs.CR0_PE_FLIP)
        if events.get("pg_set"):
            self._charge_component("paging enable", costs.CR0_PG_FLIP)

    def _charge_component(self, component: str, cycles: int) -> None:
        self.clock.advance(cycles)
        self.component_cycles[component] = (
            self.component_cycles.get(component, 0) + cycles
        )
        if self.on_component is not None:
            self.on_component(component, cycles)
        self.tracer.component(component, cycles)

    # -- stack ---------------------------------------------------------------------
    def _push(self, value: int) -> None:
        width = self.STACK_WIDTH[self.cpu.mode]
        sp = (self.cpu.read_reg("sp") - width) & self.cpu.mode.mask
        self.cpu.write_reg("sp", sp)
        self.clock.advance(self.costs.INSN_MEM + self.costs.STORE8)
        self._store(sp, value & self.cpu.mode.mask, width)

    def _pop(self) -> int:
        width = self.STACK_WIDTH[self.cpu.mode]
        sp = self.cpu.read_reg("sp")
        self.clock.advance(self.costs.INSN_MEM)
        value = self._load(sp, width)
        self.cpu.write_reg("sp", (sp + width) & self.cpu.mode.mask)
        return value

    # -- signed helpers -----------------------------------------------------------
    def _signed(self, value: int) -> int:
        mask = self.cpu.mask
        sign_bit = (mask + 1) >> 1
        return value - (mask + 1) if value & sign_bit else value

    # -- predecode (fast-path dispatch) --------------------------------------------
    def _predecode(self, program: Program) -> dict[int, Callable[[], None]]:
        """Bind every instruction to a specialized handler closure.

        Keyed by program object identity: shells re-attach the same
        ``Program`` on every snapshot restore and pool reuse, so the hot
        path pays the closure construction once per image.
        """
        key = id(program)
        cached = self._decode_cache.get(key)
        if cached is not None and cached[0] is program:
            self._decode_cache.move_to_end(key)
            return cached[1]
        decoded = {insn.addr: self._compile(insn)
                   for insn in program.instructions}
        self._decode_cache[key] = (program, decoded)
        while len(self._decode_cache) > self.DECODE_CACHE_PROGRAMS:
            self._decode_cache.popitem(last=False)
        return decoded

    def _compile_read(self, operand: Operand) -> Callable[[], int]:
        """Resolve one operand to a zero-argument reader closure.

        Charges and masking match ``_read_operand`` exactly; the operand
        type test and name lookups happen here, once, instead of per step.
        """
        cpu = self.cpu
        if type(operand) is Reg:
            name = operand.name
            regs = cpu.regs  # stable: load_state updates it in place
            return lambda: regs[name] & cpu.mask
        if type(operand) is CtrlReg:
            name = operand.name
            read_cr = cpu.read_cr
            return lambda: read_cr(name)
        if type(operand) is Imm:
            value = operand.value
            return lambda: value & cpu.mask
        clock = self.clock
        mem_charge = self.costs.INSN_MEM
        load = self._load
        disp = operand.disp
        if operand.base is None:
            addr = disp & 0xFFFFFFFFFFFFFFFF

            def read_mem_abs() -> int:
                clock.advance(mem_charge)
                return load(addr, cpu.nbytes)

            return read_mem_abs
        base = operand.base
        regs = cpu.regs

        def read_mem() -> int:
            clock.advance(mem_charge)
            return load(((regs[base] & cpu.mask) + disp) & 0xFFFFFFFFFFFFFFFF,
                        cpu.nbytes)

        return read_mem

    def _compile_write(self, operand: Operand) -> Callable[[int], None]:
        """Resolve one operand to a single-argument writer closure."""
        cpu = self.cpu
        if type(operand) is Reg:
            name = operand.name
            regs = cpu.regs

            def write_reg(value: int) -> None:
                regs[name] = value & cpu.mask

            return write_reg
        if type(operand) is CtrlReg:
            name = operand.name
            write_ctrl = self._write_ctrl
            return lambda value: write_ctrl(name, value)
        if type(operand) is Imm:
            def write_imm(value: int) -> None:
                raise ExecutionError("cannot write to an immediate")

            return write_imm
        clock = self.clock
        charge = self.costs.INSN_MEM + self.costs.STORE8
        store = self._store
        disp = operand.disp
        if operand.base is None:
            addr = disp & 0xFFFFFFFFFFFFFFFF

            def write_mem_abs(value: int) -> None:
                clock.advance(charge)
                store(addr, value & cpu.mask, cpu.nbytes)

            return write_mem_abs
        base = operand.base
        regs = cpu.regs

        def write_mem(value: int) -> None:
            clock.advance(charge)
            store(((regs[base] & cpu.mask) + disp) & 0xFFFFFFFFFFFFFFFF,
                  value & cpu.mask, cpu.nbytes)

        return write_mem

    def _compile(self, insn: Instr) -> Callable[[], None]:
        """Specialize one instruction into a handler closure.

        Every handler first sets RIP to the fall-through address (control
        flow then overwrites it) and charges ``INSN_BASE`` itself -- merged
        into its first fixed charge, so the run loop pays one ``advance``
        per instruction instead of two.  No trace or component event can
        fire between the merged charges, so cumulative cycles at every
        observable point match ``_dispatch`` exactly.
        """
        op = insn.op
        ops = insn.operands
        cpu = self.cpu
        costs = self.costs
        advance = self.clock.advance
        base = costs.INSN_BASE
        next_rip = insn.addr + insn.size

        if op == "nop":
            def h_nop() -> None:
                cpu.rip = next_rip
                advance(base)

            return h_nop
        if op == "mov":
            # Reg <- Reg/Imm moves (the bulk of any instruction stream)
            # collapse to a single dict store; charges are just INSN_BASE
            # either way, so the specialization is cycle-invisible.
            if type(ops[0]) is Reg and type(ops[1]) in (Reg, Imm):
                regs = cpu.regs
                dname = ops[0].name
                if type(ops[1]) is Imm:
                    const = ops[1].value

                    def h_mov_ri() -> None:
                        cpu.rip = next_rip
                        advance(base)
                        regs[dname] = const & cpu.mask

                    return h_mov_ri
                sname = ops[1].name

                def h_mov_rr() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    regs[dname] = regs[sname] & cpu.mask

                return h_mov_rr
            write = self._compile_write(ops[0])
            read = self._compile_read(ops[1])

            def h_mov() -> None:
                cpu.rip = next_rip
                advance(base)
                write(read())

            return h_mov
        alu = _ALU_OPS.get(op)
        if alu is not None:
            if type(ops[0]) is Reg and type(ops[1]) in (Reg, Imm):
                regs = cpu.regs
                dname = ops[0].name
                if type(ops[1]) is Imm:
                    const = ops[1].value

                    def h_alu_ri() -> None:
                        cpu.rip = next_rip
                        advance(base)
                        mask = cpu.mask
                        result = alu(regs[dname] & mask, const & mask)
                        cpu.flags.set_from_result(result, mask)
                        regs[dname] = result & mask

                    return h_alu_ri
                sname = ops[1].name

                def h_alu_rr() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    mask = cpu.mask
                    result = alu(regs[dname] & mask, regs[sname] & mask)
                    cpu.flags.set_from_result(result, mask)
                    regs[dname] = result & mask

                return h_alu_rr
            read_dst = self._compile_read(ops[0])
            read_src = self._compile_read(ops[1])
            write_dst = self._compile_write(ops[0])

            def h_alu() -> None:
                cpu.rip = next_rip
                advance(base)
                result = alu(read_dst(), read_src())
                cpu.flags.set_from_result(result, cpu.mask)
                write_dst(result & cpu.mask)

            return h_alu
        if op in ("inc", "dec"):
            delta = 1 if op == "inc" else -1
            if type(ops[0]) is Reg:
                regs = cpu.regs
                rname = ops[0].name

                def h_step_r() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    mask = cpu.mask
                    result = (regs[rname] & mask) + delta
                    cpu.flags.set_from_result(result, mask)
                    regs[rname] = result & mask

                return h_step_r
            read = self._compile_read(ops[0])
            write = self._compile_write(ops[0])

            def h_step() -> None:
                cpu.rip = next_rip
                advance(base)
                result = read() + delta
                cpu.flags.set_from_result(result, cpu.mask)
                write(result & cpu.mask)

            return h_step
        if op == "cmp":
            # Reg vs Reg/Imm comparisons inline the signed interpretation
            # (_signed) as well; flag results are bit-identical.
            if type(ops[0]) is Reg and type(ops[1]) in (Reg, Imm):
                regs = cpu.regs
                lname = ops[0].name
                if type(ops[1]) is Imm:
                    const = ops[1].value

                    def h_cmp_ri() -> None:
                        cpu.rip = next_rip
                        advance(base)
                        mask = cpu.mask
                        lhs = regs[lname] & mask
                        rhs = const & mask
                        cpu.flags.set_from_result(lhs - rhs, mask)
                        half = (mask + 1) >> 1
                        slhs = lhs - mask - 1 if lhs & half else lhs
                        srhs = rhs - mask - 1 if rhs & half else rhs
                        cpu.flags.sign = slhs - srhs < 0

                    return h_cmp_ri
                rname = ops[1].name

                def h_cmp_rr() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    mask = cpu.mask
                    lhs = regs[lname] & mask
                    rhs = regs[rname] & mask
                    cpu.flags.set_from_result(lhs - rhs, mask)
                    half = (mask + 1) >> 1
                    slhs = lhs - mask - 1 if lhs & half else lhs
                    srhs = rhs - mask - 1 if rhs & half else rhs
                    cpu.flags.sign = slhs - srhs < 0

                return h_cmp_rr
            read_lhs = self._compile_read(ops[0])
            read_rhs = self._compile_read(ops[1])
            signed = self._signed

            def h_cmp() -> None:
                cpu.rip = next_rip
                advance(base)
                lhs = read_lhs()
                rhs = read_rhs()
                cpu.flags.set_from_result(lhs - rhs, cpu.mask)
                cpu.flags.sign = signed(lhs) - signed(rhs) < 0

            return h_cmp
        if op == "test":
            read_lhs = self._compile_read(ops[0])
            read_rhs = self._compile_read(ops[1])

            def h_test() -> None:
                cpu.rip = next_rip
                advance(base)
                cpu.flags.set_from_result(read_lhs() & read_rhs(), cpu.mask)

            return h_test
        if op == "jmp":
            if type(ops[0]) is Imm:
                tconst = ops[0].value

                def h_jmp_c() -> None:
                    advance(base)
                    cpu.rip = tconst & cpu.mask

                return h_jmp_c
            read = self._compile_read(ops[0])

            def h_jmp() -> None:
                cpu.rip = next_rip
                advance(base)
                cpu.rip = read()

            return h_jmp
        jcc = _JCC.get(op)
        if jcc is not None:
            if type(ops[0]) is Imm:
                tconst = ops[0].value

                def h_jcc_c() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    if jcc(cpu.flags):
                        cpu.rip = tconst & cpu.mask

                return h_jcc_c
            read = self._compile_read(ops[0])

            def h_jcc() -> None:
                cpu.rip = next_rip
                advance(base)
                if jcc(cpu.flags):
                    cpu.rip = read()

            return h_jcc
        # The stack ops inline _push/_pop with the width taken from
        # cpu.nbytes (== STACK_WIDTH[mode]: 2/4/8), masking unchanged.
        if op == "call":
            read = self._compile_read(ops[0])
            store = self._store
            regs = cpu.regs
            if type(ops[0]) is MemRef:
                # A memory target charges (and can fault) during read(),
                # so the push charge must stay on its own side of it.
                pre = base + costs.INSN_CALL
                post = costs.INSN_MEM + costs.STORE8

                def h_call_mem() -> None:
                    cpu.rip = next_rip
                    advance(pre)
                    target = read()
                    advance(post)
                    mask = cpu.mask
                    width = cpu.nbytes
                    sp = ((regs["sp"] & mask) - width) & mask
                    regs["sp"] = sp
                    store(sp, next_rip & mask, width)
                    cpu.rip = target

                return h_call_mem
            charge = base + costs.INSN_CALL + costs.INSN_MEM + costs.STORE8
            if type(ops[0]) is Imm:
                tconst = ops[0].value

                def h_call_c() -> None:
                    cpu.rip = next_rip
                    advance(charge)
                    mask = cpu.mask
                    width = cpu.nbytes
                    sp = ((regs["sp"] & mask) - width) & mask
                    regs["sp"] = sp
                    store(sp, next_rip & mask, width)
                    cpu.rip = tconst & mask

                return h_call_c

            def h_call() -> None:
                cpu.rip = next_rip
                advance(charge)
                target = read()
                mask = cpu.mask
                width = cpu.nbytes
                sp = ((regs["sp"] & mask) - width) & mask
                regs["sp"] = sp
                store(sp, next_rip & mask, width)
                cpu.rip = target

            return h_call
        if op == "ret":
            load = self._load
            regs = cpu.regs
            charge = base + costs.INSN_CALL + costs.INSN_MEM

            def h_ret() -> None:
                cpu.rip = next_rip
                advance(charge)
                mask = cpu.mask
                width = cpu.nbytes
                sp = regs["sp"] & mask
                value = load(sp, width)
                regs["sp"] = (sp + width) & mask
                cpu.rip = value

            return h_ret
        if op == "push":
            read = self._compile_read(ops[0])
            store = self._store
            regs = cpu.regs
            if type(ops[0]) is MemRef:
                # As with call: the source read charges (and can fault),
                # so only INSN_BASE may be hoisted ahead of it.
                push_charge = costs.INSN_MEM + costs.STORE8

                def h_push_mem() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    value = read()
                    advance(push_charge)
                    mask = cpu.mask
                    width = cpu.nbytes
                    sp = ((regs["sp"] & mask) - width) & mask
                    regs["sp"] = sp
                    store(sp, value & mask, width)

                return h_push_mem
            charge = base + costs.INSN_MEM + costs.STORE8
            if type(ops[0]) is Reg:
                sname = ops[0].name

                def h_push_r() -> None:
                    cpu.rip = next_rip
                    advance(charge)
                    mask = cpu.mask
                    width = cpu.nbytes
                    sp = ((regs["sp"] & mask) - width) & mask
                    regs["sp"] = sp
                    store(sp, regs[sname] & mask, width)

                return h_push_r

            def h_push() -> None:
                cpu.rip = next_rip
                advance(charge)
                value = read()
                mask = cpu.mask
                width = cpu.nbytes
                sp = ((regs["sp"] & mask) - width) & mask
                regs["sp"] = sp
                store(sp, value & mask, width)

            return h_push
        if op == "pop":
            if not isinstance(ops[0], Reg):
                def h_pop_bad() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    raise ExecutionError("pop requires a register operand")

                return h_pop_bad
            name = ops[0].name
            load = self._load
            regs = cpu.regs
            charge = base + costs.INSN_MEM

            def h_pop() -> None:
                cpu.rip = next_rip
                advance(charge)
                mask = cpu.mask
                width = cpu.nbytes
                sp = regs["sp"] & mask
                value = load(sp, width)
                regs["sp"] = (sp + width) & mask
                regs[name] = value & mask

            return h_pop
        if op == "hlt":
            def h_hlt() -> None:
                cpu.rip = next_rip
                advance(base)
                cpu.halted = True
                raise HaltExit()

            return h_hlt
        if op == "out":
            read_port = self._compile_read(ops[0])
            read_value = self._compile_read(ops[1])

            def h_out() -> None:
                cpu.rip = next_rip
                advance(base)
                raise IOOutExit(port=read_port(), value=read_value())

            return h_out
        if op == "in":
            if not isinstance(ops[0], Reg):
                def h_in_bad() -> None:
                    cpu.rip = next_rip
                    advance(base)
                    raise ExecutionError("in requires a register destination")

                return h_in_bad
            dest = ops[0].name
            read_port = self._compile_read(ops[1])

            def h_in() -> None:
                cpu.rip = next_rip
                advance(base)
                raise IOInExit(port=read_port(), dest=dest)

            return h_in
        if op == "cli":
            def h_cli() -> None:
                cpu.rip = next_rip
                advance(base)
                cpu.flags.interrupts = False

            return h_cli
        if op == "sti":
            def h_sti() -> None:
                cpu.rip = next_rip
                advance(base)
                cpu.flags.interrupts = True

            return h_sti
        if op == "lgdt":
            read = self._compile_read(ops[0])
            charge = self._charge_component
            lgdt_real = costs.LGDT_REAL
            lgdt_prot = costs.LGDT_PROTECTED

            def h_lgdt() -> None:
                cpu.rip = next_rip
                advance(base)
                gdt_base = read()
                if cpu.mode is Mode.REAL16:
                    charge("load 32-bit gdt (lgdt)", lgdt_real)
                else:
                    charge("long transition (lgdt)", lgdt_prot)
                gdtr = cpu.gdtr
                gdtr.base = gdt_base
                gdtr.limit = 0xFFFF
                gdtr.loaded = True

            return h_lgdt
        if op == "ljmp":
            read_bits = self._compile_read(ops[0])
            target = ops[1]
            # ljmp takes the raw Imm target (no mode masking) like _dispatch.
            const_target = target.value if isinstance(target, Imm) else None
            read_target = (None if isinstance(target, Imm)
                           else self._compile_read(target))
            charge = self._charge_component
            tracer = self.tracer

            def h_ljmp() -> None:
                cpu.rip = next_rip
                advance(base)
                bits = read_bits()
                addr = const_target if read_target is None else read_target()
                if bits == 32:
                    charge("jump to 32-bit (ljmp)", costs.LJMP_TO_32)
                    cpu.far_jump(Mode.PROT32, addr)
                    tracer.instant("cpu.mode:PROT32", Category.BOOT)
                elif bits == 64:
                    charge("jump to 64-bit (ljmp)", costs.LJMP_TO_64)
                    cpu.far_jump(Mode.LONG64, addr)
                    tracer.instant("cpu.mode:LONG64", Category.BOOT)
                else:
                    raise ExecutionError(f"ljmp to unsupported width {bits}")

            return h_ljmp
        if op == "wrmsr":
            regs = cpu.regs
            flush = self.tlb_flush
            charge = base + costs.CR_WRITE

            def h_wrmsr() -> None:
                cpu.rip = next_rip
                advance(charge)
                msr = (regs["cx"] & cpu.mask if cpu.mode is not Mode.REAL16
                       else regs["cx"])
                value = (regs["dx"] << 32) | (regs["ax"] & 0xFFFFFFFF)
                cpu.wrmsr(msr if msr else MSR_EFER, value)
                flush()

            return h_wrmsr
        if op == "rdmsr":
            regs = cpu.regs
            charge = base + costs.CR_WRITE

            def h_rdmsr() -> None:
                cpu.rip = next_rip
                advance(charge)
                msr = regs["cx"] or MSR_EFER
                value = cpu.rdmsr(msr)
                regs["ax"] = value & 0xFFFFFFFF
                regs["dx"] = value >> 32

            return h_rdmsr
        if op == "stos64":
            store = self._store
            regs = cpu.regs
            charge = base + costs.INSN_MEM + costs.STORE8

            def h_stos64() -> None:
                cpu.rip = next_rip
                di = regs["di"] & cpu.mask
                advance(charge)
                store(di, regs["ax"], 8)
                regs["di"] = (di + 8) & cpu.mask

            return h_stos64

        def h_unknown() -> None:  # pragma: no cover - assembler validates ops
            cpu.rip = next_rip
            advance(base)
            raise ExecutionError(f"unimplemented op {op!r}")

        return h_unknown

    # -- execution --------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (raises a :class:`GuestExit` on exits)."""
        if self.program is None:
            raise ExecutionError("no program loaded")
        cpu = self.cpu
        if cpu.halted:
            raise HaltExit()
        if self._trace is None and self._decoded:
            # Fast path: the handler closure carries the operand accessors
            # and the fall-through RIP, and charges INSN_BASE itself;
            # charges are identical to _dispatch.
            handler = self._decoded.get(cpu.rip)
            if handler is None:
                raise TripleFault(
                    f"instruction fetch from unmapped rip {cpu.rip:#x}")
            if self._first_instruction_pending:
                self._first_instruction_pending = False
                self._charge_component("first instruction",
                                       self.costs.FIRST_INSTRUCTION)
            self.instructions_retired += 1
            handler()
            return
        insn = self._by_addr.get(cpu.rip)
        if insn is None:
            raise TripleFault(f"instruction fetch from unmapped rip {cpu.rip:#x}")
        if self._first_instruction_pending:
            self._first_instruction_pending = False
            self._charge_component("first instruction", self.costs.FIRST_INSTRUCTION)
        if self._trace is not None:
            self._trace.append(f"{insn.addr:#06x}: {insn.line or insn.op}")
        self.clock.advance(self.costs.INSN_BASE)
        self.instructions_retired += 1
        next_rip = insn.addr + insn.size
        cpu.rip = next_rip  # may be overwritten by control flow
        self._dispatch(insn)

    def _dispatch(self, insn: Instr) -> None:
        op = insn.op
        ops = insn.operands
        cpu = self.cpu
        costs = self.costs

        if op == "nop":
            return
        if op == "mov":
            self._write_operand(ops[0], self._read_operand(ops[1]))
            return
        alu = _ALU_OPS.get(op)
        if alu is not None:
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            result = alu(lhs, rhs)
            cpu.flags.set_from_result(result, cpu.mode.mask)
            self._write_operand(ops[0], result & cpu.mode.mask)
            return
        if op in ("inc", "dec"):
            value = self._read_operand(ops[0])
            result = value + 1 if op == "inc" else value - 1
            cpu.flags.set_from_result(result, cpu.mode.mask)
            self._write_operand(ops[0], result & cpu.mode.mask)
            return
        if op == "cmp":
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            cpu.flags.set_from_result(lhs - rhs, cpu.mode.mask)
            cpu.flags.sign = self._signed(lhs) - self._signed(rhs) < 0
            return
        if op == "test":
            lhs = self._read_operand(ops[0])
            rhs = self._read_operand(ops[1])
            cpu.flags.set_from_result(lhs & rhs, cpu.mode.mask)
            return
        if op == "jmp":
            cpu.rip = self._read_operand(ops[0])
            return
        jcc = _JCC.get(op)
        if jcc is not None:
            if jcc(cpu.flags):
                cpu.rip = self._read_operand(ops[0])
            return
        if op == "call":
            self.clock.advance(costs.INSN_CALL)
            target = self._read_operand(ops[0])
            self._push(cpu.rip)
            cpu.rip = target
            return
        if op == "ret":
            self.clock.advance(costs.INSN_CALL)
            cpu.rip = self._pop()
            return
        if op == "push":
            self._push(self._read_operand(ops[0]))
            return
        if op == "pop":
            if not isinstance(ops[0], Reg):
                raise ExecutionError("pop requires a register operand")
            cpu.write_reg(ops[0].name, self._pop())
            return
        if op == "hlt":
            cpu.halted = True
            raise HaltExit()
        if op == "out":
            port = self._read_operand(ops[0])
            value = self._read_operand(ops[1])
            raise IOOutExit(port=port, value=value)
        if op == "in":
            if not isinstance(ops[0], Reg):
                raise ExecutionError("in requires a register destination")
            port = self._read_operand(ops[1])
            raise IOInExit(port=port, dest=ops[0].name)
        if op == "cli":
            cpu.flags.interrupts = False
            return
        if op == "sti":
            cpu.flags.interrupts = True
            return
        if op == "lgdt":
            base = self._read_operand(ops[0])
            cost = costs.LGDT_REAL if cpu.mode is Mode.REAL16 else costs.LGDT_PROTECTED
            label = (
                "load 32-bit gdt (lgdt)"
                if cpu.mode is Mode.REAL16
                else "long transition (lgdt)"
            )
            self._charge_component(label, cost)
            cpu.gdtr.base = base
            cpu.gdtr.limit = 0xFFFF
            cpu.gdtr.loaded = True
            return
        if op == "ljmp":
            bits = self._read_operand(ops[0])
            target = ops[1]
            target_addr = (
                target.value if isinstance(target, Imm) else self._read_operand(target)
            )
            if bits == 32:
                self._charge_component("jump to 32-bit (ljmp)", costs.LJMP_TO_32)
                cpu.far_jump(Mode.PROT32, target_addr)
                self.tracer.instant("cpu.mode:PROT32", Category.BOOT)
            elif bits == 64:
                self._charge_component("jump to 64-bit (ljmp)", costs.LJMP_TO_64)
                cpu.far_jump(Mode.LONG64, target_addr)
                self.tracer.instant("cpu.mode:LONG64", Category.BOOT)
            else:
                raise ExecutionError(f"ljmp to unsupported width {bits}")
            return
        if op == "wrmsr":
            self.clock.advance(costs.CR_WRITE)
            msr = cpu.read_reg("cx") if cpu.mode is not Mode.REAL16 else cpu.regs["cx"]
            value = (cpu.regs["dx"] << 32) | (cpu.regs["ax"] & 0xFFFFFFFF)
            cpu.wrmsr(msr if msr else MSR_EFER, value)
            self.tlb_flush()  # EFER.LME transitions invalidate translations
            return
        if op == "rdmsr":
            self.clock.advance(costs.CR_WRITE)
            msr = cpu.regs["cx"] or MSR_EFER
            value = cpu.rdmsr(msr)
            cpu.regs["ax"] = value & 0xFFFFFFFF
            cpu.regs["dx"] = value >> 32
            return
        if op == "stos64":
            di = cpu.read_reg("di")
            self.clock.advance(costs.INSN_MEM + costs.STORE8)
            self._store(di, cpu.regs["ax"], 8)
            cpu.write_reg("di", di + 8)
            return
        raise ExecutionError(f"unimplemented op {op!r}")  # pragma: no cover

    def run_steps(self, budget: int) -> int:
        """Execute up to ``budget`` instructions; the VM's inner run loop.

        Returns ``budget`` when the step budget is exhausted; otherwise a
        :class:`GuestExit` propagates exactly as from :meth:`step`.  After
        any exception, :attr:`last_run_steps` holds the number of
        instructions completed *before* the raising one -- the VM's step
        accounting never counts the exiting instruction.
        """
        if budget <= 0:
            self.last_run_steps = 0
            return 0
        if self._trace is not None or not self._decoded:
            # Reference path: per-step dispatch keeps step()'s semantics
            # (and the debug ring buffer) intact.
            completed = 0
            self.last_run_steps = 0
            while completed < budget:
                self.step()
                completed += 1
                self.last_run_steps = completed
            return completed
        cpu = self.cpu
        if cpu.halted:
            self.last_run_steps = 0
            raise HaltExit()
        if self._first_instruction_pending:
            # Fetch is checked before the charge (a bad entry RIP leaves
            # the charge pending), after which the flag stays False for
            # the rest of the run -- so the loop below can skip it.
            if self._decoded.get(cpu.rip) is None:
                self.last_run_steps = 0
                raise TripleFault(
                    f"instruction fetch from unmapped rip {cpu.rip:#x}")
            self._first_instruction_pending = False
            self._charge_component("first instruction",
                                   self.costs.FIRST_INSTRUCTION)
        decoded_get = self._decoded.get
        executed = 0
        fetch_fault = False
        cache = self._jit_cache
        if cache is not None:
            # Superblock dispatch (DESIGN.md SS15): compiled blocks run
            # when their entry guards hold (mode/paging unchanged since
            # compile, remaining budget covers the block); otherwise the
            # per-instruction handler path below takes over for this
            # step.  Cold PCs are profiled; crossing the hotness
            # threshold triggers compilation inline.
            blocks_get = self._jit_blocks.get
            counts = self._jit_counts
            domain = self._jit_domain
            dom_counters = domain.counters
            exits = self._jit_exits
            threshold = domain.threshold
            blacklist = cache.blacklist
            self._sb_steps = -1
            # Mode guards hoisted out of the dispatch loop: only the
            # excluded (per-instruction) ops can change mode or paging,
            # so they are recomputed after each handler() call only.
            mask = cpu.mask
            paging = cpu.cr0 & CR0_PG != 0
            runs = 0
            insns = 0
            try:
                while executed < budget:
                    rip = cpu.rip
                    entry = blocks_get(rip)
                    if entry is not None:
                        fn, length, bmask, bpaging, seg = entry
                        if bmask == mask and bpaging == paging:
                            left = budget - executed
                            if left >= length:
                                ran = fn(self, left, seg)
                                executed += ran
                                runs += 1
                                insns += ran
                                continue
                            exits["budget_guard"] += 1
                        else:
                            exits["mode_guard"] += 1
                    else:
                        count = counts.get(rip, 0) + 1
                        counts[rip] = count
                        if count == threshold and rip not in blacklist:
                            blks = compile_block(self, rip)
                            if blks is None:
                                blacklist.add(rip)
                            else:
                                for blk in blks:
                                    cache.register(blk)
                                self.memory.watch_code_pages(blks[0].pages)
                                continue  # dispatch it on this same rip
                    handler = decoded_get(rip)
                    if handler is None:
                        fetch_fault = True
                        break
                    executed += 1
                    handler()
                    mask = cpu.mask
                    paging = cpu.cr0 & CR0_PG != 0
            except BaseException as exc:
                steps = self._sb_steps
                if steps >= 0:
                    # The exception left a superblock mid-flight: fold in
                    # the instructions it completed, plus the raising one
                    # (accounted exactly like the handler path below), and
                    # count the dispatch itself -- a block whose trace
                    # ends in hlt/out always exits by raising.
                    executed += steps + 1
                    runs += 1
                    insns += steps + 1
                    self._sb_steps = -1
                    if isinstance(exc, HaltExit):
                        exits["halt"] += 1
                    elif isinstance(exc, (IOOutExit, IOInExit)):
                        exits["io"] += 1
                    else:
                        exits["fault"] += 1
                if runs:
                    dom_counters["block_runs"] += runs
                    dom_counters["block_instructions"] += insns
                self.instructions_retired += executed
                self.last_run_steps = executed - 1
                raise
            if runs:
                dom_counters["block_runs"] += runs
                dom_counters["block_instructions"] += insns
            self.instructions_retired += executed
            self.last_run_steps = executed
            if fetch_fault:
                raise TripleFault(
                    f"instruction fetch from unmapped rip {cpu.rip:#x}")
            return executed
        try:
            while executed < budget:
                handler = decoded_get(cpu.rip)
                if handler is None:
                    fetch_fault = True
                    break
                executed += 1
                handler()
        except BaseException:
            # The raising instruction retired but does not count toward
            # the VM's step budget (mirrors the per-step loop this
            # replaces, where step() raised before the budget increment).
            self.instructions_retired += executed
            self.last_run_steps = executed - 1
            raise
        self.instructions_retired += executed
        self.last_run_steps = executed
        if fetch_fault:
            raise TripleFault(
                f"instruction fetch from unmapped rip {cpu.rip:#x}")
        return executed

    def run(self, max_steps: int = 50_000_000) -> GuestExit:
        """Run until the guest exits; returns the exit event."""
        for _ in range(max_steps):
            try:
                self.step()
            except GuestExit as exit_event:
                return exit_event
        raise ExecutionError(f"guest did not exit within {max_steps} steps")

    def resume_with_input(self, dest: str, value: int) -> None:
        """Complete a pending ``in`` by writing the port value to ``dest``."""
        self.cpu.write_reg(dest, value)
