"""x86-64 4-level paging structures.

The minimal virtine boot sequence identity-maps the first 1 GB of the
address space using 2 MB large pages (Section 4.2): one PML4 entry, one
PDPT entry, and 512 PD entries -- three 4 KB table pages, i.e. the "12 KB
of memory references" the paper describes.  The guest boot code in
:mod:`repro.runtime.boot` constructs these tables *by executing stores*,
so the cost of the "Paging identity mapping" row of Table 1 emerges from
the store and first-touch costs.  This module provides the entry layout,
a host-side builder (for snapshot-constructed images), and a page walker
used by the CPU once CR0.PG is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import GuestMemory

# Page-table entry flag bits (subset of the architectural layout).
PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_LARGE = 1 << 7  # PS bit: 2 MB page when set in a PD entry

ENTRY_SIZE = 8
ENTRIES_PER_TABLE = 512
LARGE_PAGE_SIZE = 2 * 1024 * 1024

ADDR_MASK = 0x000F_FFFF_FFFF_F000


class PageFault(Exception):
    """A guest virtual address failed to translate."""

    def __init__(self, vaddr: int, reason: str) -> None:
        super().__init__(f"page fault at {vaddr:#x}: {reason}")
        self.vaddr = vaddr
        self.reason = reason


@dataclass(frozen=True)
class IdentityMapLayout:
    """Where the boot code places the three identity-map table pages."""

    pml4: int
    pdpt: int
    pd: int

    @classmethod
    def at(cls, base: int) -> "IdentityMapLayout":
        """Standard layout: three consecutive 4 KB pages starting at ``base``."""
        if base % 4096 != 0:
            raise ValueError(f"page table base {base:#x} is not page aligned")
        return cls(pml4=base, pdpt=base + 4096, pd=base + 8192)


def build_identity_map(memory: GuestMemory, layout: IdentityMapLayout) -> int:
    """Host-side construction of the 1 GB identity map with 2 MB pages.

    Wasp uses this when restoring a snapshot that was taken after boot (the
    table contents are part of the snapshot) and tests use it to validate
    the guest-built tables.  Returns the CR3 value (PML4 base).
    """
    flags = PTE_PRESENT | PTE_WRITABLE
    memory.write_u64(layout.pml4, layout.pdpt | flags)
    memory.write_u64(layout.pdpt, layout.pd | flags)
    for i in range(ENTRIES_PER_TABLE):
        memory.write_u64(layout.pd + i * ENTRY_SIZE, (i * LARGE_PAGE_SIZE) | flags | PTE_LARGE)
    return layout.pml4


def translate(memory: GuestMemory, cr3: int, vaddr: int) -> int:
    """Walk the 4-level tables rooted at ``cr3`` and translate ``vaddr``.

    Only the structures the virtine environments use are supported:
    2 MB large pages at the PD level and 4 KB pages at the PT level.
    """
    if vaddr < 0:
        raise PageFault(vaddr, "negative address")
    pml4_index = (vaddr >> 39) & 0x1FF
    pdpt_index = (vaddr >> 30) & 0x1FF
    pd_index = (vaddr >> 21) & 0x1FF
    pt_index = (vaddr >> 12) & 0x1FF
    offset12 = vaddr & 0xFFF

    pml4e = memory.read_u64((cr3 & ADDR_MASK) + pml4_index * ENTRY_SIZE)
    if not pml4e & PTE_PRESENT:
        raise PageFault(vaddr, "PML4 entry not present")
    pdpte = memory.read_u64((pml4e & ADDR_MASK) + pdpt_index * ENTRY_SIZE)
    if not pdpte & PTE_PRESENT:
        raise PageFault(vaddr, "PDPT entry not present")
    pde = memory.read_u64((pdpte & ADDR_MASK) + pd_index * ENTRY_SIZE)
    if not pde & PTE_PRESENT:
        raise PageFault(vaddr, "PD entry not present")
    if pde & PTE_LARGE:
        base = pde & ~(LARGE_PAGE_SIZE - 1) & ADDR_MASK
        return base + (vaddr & (LARGE_PAGE_SIZE - 1))
    pte = memory.read_u64((pde & ADDR_MASK) + pt_index * ENTRY_SIZE)
    if not pte & PTE_PRESENT:
        raise PageFault(vaddr, "PT entry not present")
    return (pte & ADDR_MASK) + offset12


def translate_watched(memory: GuestMemory, cr3: int, vaddr: int) -> int:
    """Walk like :func:`translate`, registering every table page read.

    Used by the interpreter's software TLB on a miss: the physical pages
    holding the PML4/PDPT/PD/PT entries consulted by this walk are added
    to ``memory``'s translation watch set, so a later write to any of
    them bumps ``memory.translation_version`` and invalidates the cached
    translation.  The translation result is identical to
    :func:`translate` by construction.
    """
    if vaddr < 0:
        raise PageFault(vaddr, "negative address")
    pml4_index = (vaddr >> 39) & 0x1FF
    pdpt_index = (vaddr >> 30) & 0x1FF
    pd_index = (vaddr >> 21) & 0x1FF
    pt_index = (vaddr >> 12) & 0x1FF

    watch = memory.watch_translation_page
    pml4_addr = (cr3 & ADDR_MASK) + pml4_index * ENTRY_SIZE
    watch(pml4_addr >> 12)
    pml4e = memory.read_u64(pml4_addr)
    if not pml4e & PTE_PRESENT:
        raise PageFault(vaddr, "PML4 entry not present")
    pdpt_addr = (pml4e & ADDR_MASK) + pdpt_index * ENTRY_SIZE
    watch(pdpt_addr >> 12)
    pdpte = memory.read_u64(pdpt_addr)
    if not pdpte & PTE_PRESENT:
        raise PageFault(vaddr, "PDPT entry not present")
    pd_addr = (pdpte & ADDR_MASK) + pd_index * ENTRY_SIZE
    watch(pd_addr >> 12)
    pde = memory.read_u64(pd_addr)
    if not pde & PTE_PRESENT:
        raise PageFault(vaddr, "PD entry not present")
    if pde & PTE_LARGE:
        base = pde & ~(LARGE_PAGE_SIZE - 1) & ADDR_MASK
        return base + (vaddr & (LARGE_PAGE_SIZE - 1))
    pt_addr = (pde & ADDR_MASK) + pt_index * ENTRY_SIZE
    watch(pt_addr >> 12)
    pte = memory.read_u64(pt_addr)
    if not pte & PTE_PRESENT:
        raise PageFault(vaddr, "PT entry not present")
    return (pte & ADDR_MASK) + (vaddr & 0xFFF)


def is_identity_mapped(memory: GuestMemory, cr3: int, limit: int) -> bool:
    """True if every 2 MB-aligned address below ``limit`` maps to itself."""
    addr = 0
    while addr < limit:
        try:
            if translate(memory, cr3, addr) != addr:
                return False
        except PageFault:
            return False
        addr += LARGE_PAGE_SIZE
    return True
