"""CPU state for the simulated x86-flavoured machine.

The virtine boot experiments (Table 1, Figure 3) hinge on the three
canonical x86 operating modes and the transitions between them:

* ``REAL16``  -- 16-bit real mode, where a VM begins execution,
* ``PROT32``  -- 32-bit protected mode, entered by loading a GDT and
  flipping CR0.PE followed by a far jump,
* ``LONG64``  -- 64-bit long mode, entered by enabling PAE (CR4), loading
  CR3, setting EFER.LME, enabling paging (CR0.PG), and far-jumping into a
  64-bit code segment.

The :class:`CPU` tracks architectural state and enforces the legality of
those transitions; the interpreter in :mod:`repro.hw.isa` drives it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

# Control register bits (architectural positions).
CR0_PE = 1 << 0
CR0_PG = 1 << 31
CR4_PAE = 1 << 5
EFER_LME = 1 << 8
EFER_LMA = 1 << 10

#: MSR number of the Extended Feature Enable Register.
MSR_EFER = 0xC0000080

GPRS = (
    "ax", "bx", "cx", "dx", "si", "di", "sp", "bp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)


class Mode(enum.Enum):
    """The three canonical x86 operating modes of the boot process."""

    REAL16 = 16
    PROT32 = 32
    LONG64 = 64

    def __init__(self, bits: int) -> None:
        self._mask = (1 << bits) - 1

    @property
    def mask(self) -> int:
        """Register-width mask for arithmetic in this mode."""
        return self._mask


class CpuFault(Exception):
    """An architectural violation (bad transition, bad register, ...)."""


@dataclass(slots=True)
class Flags:
    """The subset of RFLAGS the mini-ISA uses.

    Slotted: the interpreter writes ZF/SF/CF on every ALU instruction
    and the superblock JIT's register-writeback spills hit these
    attributes on every side exit, so the dict-free layout is hot.
    """

    zero: bool = False
    sign: bool = False
    carry: bool = False
    interrupts: bool = True

    def set_from_result(self, result: int, width_mask: int) -> None:
        """Update ZF/SF from an ALU result (already unmasked)."""
        masked = result & width_mask
        self.zero = masked == 0
        sign_bit = (width_mask + 1) >> 1
        self.sign = bool(masked & sign_bit)
        self.carry = result < 0 or result > width_mask


@dataclass
class GDTR:
    """Descriptor-table register: just base/limit for our purposes."""

    base: int = 0
    limit: int = 0
    loaded: bool = False


class CPU:
    """Architectural state of one virtual CPU."""

    def __init__(self) -> None:
        self.regs: dict[str, int] = {r: 0 for r in GPRS}
        self.rip: int = 0
        self.flags = Flags()
        self.mode = Mode.REAL16
        self.cr0: int = 0
        self.cr3: int = 0
        self.cr4: int = 0
        self.efer: int = 0
        self.gdtr = GDTR()
        self.halted = False

    # -- mode (cached width/mask) ---------------------------------------------
    @property
    def mode(self) -> Mode:
        return self._mode

    @mode.setter
    def mode(self, mode: Mode) -> None:
        # mask/nbytes are hot on every operand access; cache them so the
        # interpreter never re-derives them per instruction.
        self._mode = mode
        self.mask = mode.mask
        self.nbytes = mode.value // 8

    # -- register access -----------------------------------------------------
    def read_reg(self, name: str) -> int:
        try:
            return self.regs[name] & self.mask
        except KeyError:
            raise CpuFault(f"unknown register {name!r}") from None

    def write_reg(self, name: str, value: int) -> None:
        if name not in self.regs:
            raise CpuFault(f"unknown register {name!r}")
        self.regs[name] = value & self.mask

    # -- control registers ----------------------------------------------------
    def read_cr(self, name: str) -> int:
        return {"cr0": self.cr0, "cr3": self.cr3, "cr4": self.cr4}[name]

    def write_cr(self, name: str, value: int) -> dict[str, bool]:
        """Write a control register; returns which mode bits newly flipped.

        The returned dict has keys ``pe_set`` and ``pg_set`` so the
        interpreter can charge the transition costs from Table 1.
        """
        events = {"pe_set": False, "pg_set": False}
        if name == "cr0":
            if (value & CR0_PE) and not (self.cr0 & CR0_PE):
                events["pe_set"] = True
            if (value & CR0_PG) and not (self.cr0 & CR0_PG):
                if not value & CR0_PE:
                    raise CpuFault("CR0.PG requires CR0.PE")
                if self.efer & EFER_LME:
                    if not self.cr4 & CR4_PAE:
                        raise CpuFault("long mode requires CR4.PAE before CR0.PG")
                    if self.cr3 == 0:
                        raise CpuFault("CR0.PG set with CR3 == 0")
                    self.efer |= EFER_LMA
                events["pg_set"] = True
            if not (value & CR0_PG) and (self.cr0 & CR0_PG):
                self.efer &= ~EFER_LMA
            self.cr0 = value
        elif name == "cr3":
            self.cr3 = value
        elif name == "cr4":
            self.cr4 = value
        else:
            raise CpuFault(f"unknown control register {name!r}")
        return events

    def wrmsr(self, msr: int, value: int) -> None:
        if msr == MSR_EFER:
            self.efer = (self.efer & EFER_LMA) | (value & ~EFER_LMA)
        else:
            raise CpuFault(f"unsupported MSR {msr:#x}")

    def rdmsr(self, msr: int) -> int:
        if msr == MSR_EFER:
            return self.efer
        raise CpuFault(f"unsupported MSR {msr:#x}")

    # -- mode machine -------------------------------------------------------------
    @property
    def paging_enabled(self) -> bool:
        return bool(self.cr0 & CR0_PG)

    @property
    def long_mode_active(self) -> bool:
        return bool(self.efer & EFER_LMA)

    def far_jump(self, target_mode: Mode, target_rip: int) -> None:
        """Perform the mode-switching far jump (``ljmp``)."""
        if target_mode is Mode.PROT32:
            if not self.cr0 & CR0_PE:
                raise CpuFault("ljmp to 32-bit code requires CR0.PE")
            if not self.gdtr.loaded:
                raise CpuFault("ljmp to 32-bit code requires a loaded GDT")
        elif target_mode is Mode.LONG64:
            if not self.long_mode_active:
                raise CpuFault(
                    "ljmp to 64-bit code requires long mode "
                    "(CR4.PAE + EFER.LME + CR0.PG)"
                )
        elif target_mode is Mode.REAL16:
            raise CpuFault("far jumps back to real mode are not supported")
        self.mode = target_mode
        self.rip = target_rip

    def reset(self) -> None:
        """Return the CPU to its power-on state (real mode, cleared)."""
        for r in GPRS:
            self.regs[r] = 0
        self.rip = 0
        self.flags = Flags()
        self.mode = Mode.REAL16
        self.cr0 = 0
        self.cr3 = 0
        self.cr4 = 0
        self.efer = 0
        self.gdtr = GDTR()
        self.halted = False

    def save_state(self) -> dict:
        """Capture architectural state for snapshots."""
        return {
            "regs": dict(self.regs),
            "rip": self.rip,
            "flags": Flags(
                zero=self.flags.zero,
                sign=self.flags.sign,
                carry=self.flags.carry,
                interrupts=self.flags.interrupts,
            ),
            "mode": self.mode,
            "cr0": self.cr0,
            "cr3": self.cr3,
            "cr4": self.cr4,
            "efer": self.efer,
            "gdtr": GDTR(self.gdtr.base, self.gdtr.limit, self.gdtr.loaded),
            "halted": self.halted,
        }

    def load_state(self, state: dict) -> None:
        """Restore architectural state captured by :meth:`save_state`.

        ``regs`` is updated in place: the interpreter's predecoded
        handlers bind the register file once, so the dict object must
        stay the same for the CPU's lifetime.
        """
        self.regs.clear()
        self.regs.update(state["regs"])
        self.rip = state["rip"]
        saved_flags = state["flags"]
        self.flags = Flags(
            zero=saved_flags.zero,
            sign=saved_flags.sign,
            carry=saved_flags.carry,
            interrupts=saved_flags.interrupts,
        )
        self.mode = state["mode"]
        self.cr0 = state["cr0"]
        self.cr3 = state["cr3"]
        self.cr4 = state["cr4"]
        self.efer = state["efer"]
        saved_gdtr = state["gdtr"]
        self.gdtr = GDTR(saved_gdtr.base, saved_gdtr.limit, saved_gdtr.loaded)
        self.halted = state["halted"]
