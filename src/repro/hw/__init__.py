"""Simulated hardware substrate.

This package models the parts of the x86 platform the paper depends on:

* :mod:`repro.hw.costs` -- the calibrated cycle-cost table,
* :mod:`repro.hw.clock` -- the virtual cycle clock (the only notion of
  time used anywhere in this repository),
* :mod:`repro.hw.memory` -- guest physical memory with first-touch
  tracking (used to model EPT construction costs),
* :mod:`repro.hw.paging` -- 4-level page tables with 2 MB large pages,
* :mod:`repro.hw.cpu` -- CPU state including the real/protected/long mode
  machine, control registers, and GDT,
* :mod:`repro.hw.isa` -- a small x86-flavoured instruction set with an
  assembler and cycle-charging interpreter,
* :mod:`repro.hw.vmx` -- hardware virtualization (VMCB/vmrun/vmexit).
"""

from repro.hw.clock import Clock
from repro.hw.costs import CostModel, COSTS
from repro.hw.cpu import CPU, Mode
from repro.hw.memory import GuestMemory

__all__ = ["Clock", "CostModel", "COSTS", "CPU", "Mode", "GuestMemory"]
