"""Trace-driven superblock JIT for the fast-path engine.

The predecoded dispatch loop (DESIGN.md SS10) still pays one Python
closure call, one dict lookup, and one ``clock.advance`` per guest
instruction.  This module escapes that interpretive dispatch: the run
loop profiles per-PC execution counts, and when a PC crosses the
hotness threshold the instructions reachable from it along the
predicted straight-line path are fused into a single *superblock* -- a
generated Python function compiled with ``compile``/``exec`` that

* charges cycles as compile-time constants, merged into one
  ``clock.advance`` per run of non-memory instructions (flushed before
  every raising operation, so the clock is bit-exact at every
  observable point: EPT-fault charges, I/O exits, faults, traces);
* caches the referenced general registers and flags in Python locals,
  with *static* dirty tracking -- architectural state (``cpu.regs``,
  ``cpu.flags``, ``cpu.rip``) is written back only at side exits and
  immediately before any operation that can raise, so an exception
  always propagates with exact state;
* inlines the software-TLB hit path and the memory accessors;
* side-exits on branch mispredict (conditional branches predict
  fall-through), dynamic control flow, faults, halts and I/O, with
  per-reason counters.

Superblocks are compiled per *image* -- the cache key is the content
hash of the program image (plus load base and cost-model identity) --
so pooled shells and COW-restored shells attach an already-warm block
cache and start hot.  Guest stores that touch a compiled code page fire
push invalidation through :meth:`GuestMemory.watch_code_pages` (guest
execution reads the static ``Program`` either way, so invalidation is
model honesty, never a bit-equality risk).

The contract throughout is the fast-path contract of DESIGN.md SS10:
simulated cycles, registers, flags, dirty pages, component attribution
and Chrome trace bytes are bit-identical to the reference interpreter.
``tests/test_fast_path_equivalence.py`` and the differential fuzzer
enforce it.
"""

from __future__ import annotations

import hashlib
import os
import struct
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.costs import CostModel
    from repro.hw.isa import Instr, Interpreter, Program

#: Executions of a PC before a superblock is compiled at it.
DEFAULT_THRESHOLD = 32

#: *Open* blocks shorter than this are not worth the call overhead.
#: Closed traces (terminator-ended) and self-looping traces are exempt:
#: even a lone ``ret`` beats re-profiling its PC on every execution.
MIN_BLOCK_INSNS = 2

#: Hard cap on instructions fused into one superblock segment.
MAX_BLOCK_INSNS = 64

#: Region caps: segments per generated function, instructions total.
MAX_REGION_SEGMENTS = 8
MAX_REGION_INSNS = 256

PAGE_SHIFT = 12

#: Same wire format as :mod:`repro.hw.memory`'s integer helpers; bound
#: into generated code so the inline quiet-page store / bounds-checked
#: load fast paths decode and pack exactly like the accessors they shadow.
_U64 = struct.Struct("<Q")

#: Side-exit reasons, in canonical (display) order.
SIDE_EXIT_REASONS = ("branch", "fault", "halt", "io",
                     "budget_guard", "mode_guard")

_M64 = 0xFFFFFFFFFFFFFFFF

_ALU_EXPR = {
    "add": "{l} + {r}",
    "sub": "{l} - {r}",
    "and": "{l} & {r}",
    "or": "{l} | {r}",
    "xor": "{l} ^ {r}",
    "shl": "{l} << ({r} & 63)",
    "shr": "{l} >> ({r} & 63)",
    "mul": "{l} * {r}",
}

#: Conditional-jump predicates over the flag *locals* (fz/fs/fc mirror
#: ``cpu.flags`` exactly; see :class:`_Emitter`).
_JCC_EXPR = {
    "je": "fz",
    "jne": "not fz",
    "jl": "fs",
    "jle": "fs or fz",
    "jg": "not fs and not fz",
    "jge": "not fs",
    "jc": "fc",
    "jnc": "not fc",
}


def _isa():
    from repro.hw import isa
    return isa


class CompiledBlock:
    """One dispatchable superblock entry: a region function + guards.

    A *region* is one generated function covering several traces
    (segments) that transfer control internally; each segment head gets
    its own CompiledBlock sharing the function, distinguished by
    ``entry`` (the segment index passed as the function's third
    argument).
    """

    __slots__ = ("pc", "mask", "paging", "length", "pages", "lines",
                 "source", "fn", "entry")

    def __init__(self, pc: int, mask: int, paging: bool, length: int,
                 pages: tuple, lines: tuple, source: str,
                 fn: Callable, entry: int = 0) -> None:
        self.pc = pc
        #: Segment index of this entry within the region function.
        self.entry = entry
        #: Mode guard: the block is only valid while ``cpu.mask`` (and
        #: hence operand width / stack width) matches.
        self.mask = mask
        #: Paging guard: translation was inlined for this paging state.
        self.paging = paging
        #: Maximum instructions the block can retire (the deadline-
        #: slicing guard: enter only when the remaining budget covers it).
        self.length = length
        #: Guest code pages covered (push-invalidation targets).
        self.pages = pages
        #: Guest source lines, for ``repro jit dump``.
        self.lines = lines
        #: Generated Python source (debugging / dump).
        self.source = source
        self.fn = fn


class ImageBlockCache:
    """Compiled blocks + profile counts for one (image, cost-model).

    The ``blocks`` dict is shared by reference with every interpreter
    attached to the image (the generated functions take the interpreter
    as their sole argument), which is what makes pooled and restored
    shells start hot -- and what makes push invalidation global: popping
    a PC here invalidates it for every shell at once.
    """

    __slots__ = ("key", "name", "blocks", "meta", "counts", "blacklist",
                 "page_index", "compiles", "invalidations",
                 "warm_hits", "warm_misses")

    def __init__(self, key: tuple, name: str) -> None:
        self.key = key
        self.name = name
        #: Dispatch entries: pc -> (fn, length, mask, paging, entry).  A
        #: flat tuple, not the CompiledBlock, so the run loop unpacks
        #: the guards in one statement instead of slot lookups per run.
        self.blocks: dict[int, tuple] = {}
        #: pc -> CompiledBlock (stats / dump / invalidation metadata).
        self.meta: dict[int, CompiledBlock] = {}
        self.counts: dict[int, int] = {}
        #: PCs where block formation failed (uncompilable head).
        self.blacklist: set[int] = set()
        #: code page -> PCs of blocks covering it.
        self.page_index: dict[int, set[int]] = {}
        self.compiles = 0
        self.invalidations = 0
        #: Attaches that found a warm (non-empty) block cache.
        self.warm_hits = 0
        self.warm_misses = 0

    def note_attach(self) -> None:
        if self.blocks:
            self.warm_hits += 1
        else:
            self.warm_misses += 1

    def register(self, blk: CompiledBlock) -> None:
        if blk.pc in self.blocks:
            return  # first (hottest) registration wins
        self.blocks[blk.pc] = (blk.fn, blk.length, blk.mask, blk.paging,
                               blk.entry)
        self.meta[blk.pc] = blk
        for page in blk.pages:
            self.page_index.setdefault(page, set()).add(blk.pc)
        self.compiles += 1

    def invalidate_page(self, page: int) -> int:
        """Drop every block covering ``page``; returns how many."""
        pcs = self.page_index.pop(page, None)
        if not pcs:
            return 0
        dropped = 0
        for pc in pcs:
            if self.blocks.pop(pc, None) is not None:
                dropped += 1
            self.meta.pop(pc, None)
            # Re-warm from zero so the region recompiles only if it
            # stays hot after the modification.
            self.counts[pc] = 0
        self.invalidations += dropped
        return dropped

    def watched_pages(self) -> set[int]:
        return set(self.page_index)

    def stats(self) -> dict:
        attaches = self.warm_hits + self.warm_misses
        return {
            "image": self.name,
            "blocks": len(self.blocks),
            "compiles": self.compiles,
            "invalidations": self.invalidations,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "warm_hit_ratio": (self.warm_hits / attaches) if attaches else 0.0,
        }


class JitDomain:
    """One engine's superblock domain: per-image caches + counters.

    One domain per hypervisor backend (one per Wasp, one per cluster
    core), never process-global: two same-seed runs in one process must
    both start cold so telemetry snapshots stay byte-identical.
    """

    MAX_IMAGES = 16

    def __init__(self, threshold: int | None = None) -> None:
        if threshold is None:
            threshold = int(os.environ.get("REPRO_JIT_THRESHOLD",
                                           DEFAULT_THRESHOLD))
        self.threshold = max(1, threshold)
        self._images: "OrderedDict[tuple, ImageBlockCache]" = OrderedDict()
        self._digests: dict[int, tuple] = {}
        #: Side exits by reason, incremented by the run loop and the
        #: generated code (plain ints: zero simulated cost, harvested
        #: into telemetry by the hypervisor after each launch).
        self.side_exits: dict[str, int] = {r: 0 for r in SIDE_EXIT_REASONS}
        self.counters: dict[str, int] = {
            "block_runs": 0,
            "block_instructions": 0,
        }

    def image_cache(self, program: "Program",
                    costs: "CostModel") -> ImageBlockCache:
        pid = id(program)
        memo = self._digests.get(pid)
        if memo is None or memo[0] is not program:
            digest = hashlib.sha256(program.image).hexdigest()
            if len(self._digests) > 64:
                self._digests.clear()
            memo = (program, f"{digest[:16]}@{program.base:#x}")
            self._digests[pid] = memo
        key = (memo[1], id(costs))
        cache = self._images.get(key)
        if cache is None:
            cache = self._images[key] = ImageBlockCache(key, memo[1])
            while len(self._images) > self.MAX_IMAGES:
                self._images.popitem(last=False)
        else:
            self._images.move_to_end(key)
        return cache

    def images(self) -> list[ImageBlockCache]:
        return list(self._images.values())

    def clear(self) -> None:
        self._images.clear()
        self._digests.clear()
        for reason in self.side_exits:
            self.side_exits[reason] = 0
        for name in self.counters:
            self.counters[name] = 0

    def stats(self) -> dict:
        total_compiles = sum(c.compiles for c in self._images.values())
        total_inval = sum(c.invalidations for c in self._images.values())
        return {
            "threshold": self.threshold,
            "blocks_compiled": total_compiles,
            "invalidations": total_inval,
            "block_runs": self.counters["block_runs"],
            "block_instructions": self.counters["block_instructions"],
            "side_exits": {r: self.side_exits[r] for r in SIDE_EXIT_REASONS},
            "images": [c.stats() for c in self._images.values()],
        }

    def dump(self) -> list[dict]:
        """Every live compiled block, for ``repro jit dump``."""
        out = []
        for cache in self._images.values():
            for pc in sorted(cache.meta):
                blk = cache.meta[pc]
                out.append({
                    "image": cache.name,
                    "pc": blk.pc,
                    "entry": blk.entry,
                    "length": blk.length,
                    "mask_bits": blk.mask.bit_length(),
                    "paging": blk.paging,
                    "pages": list(blk.pages),
                    "instructions": list(blk.lines),
                })
        return out


class _Emitter:
    """Generates the superblock source, one guest instruction at a time.

    The invariant every emission preserves: at every point where an
    exception can *escape* the block, architectural state
    (``cpu.regs``, ``cpu.flags``, ``cpu.rip``) equals the reference
    interpreter's state at that exact point, the clock holds the
    reference cycle count, and ``I._sb_steps`` holds the number of
    instructions fully completed before the raising one.

    The hot path pays for none of that: every potentially-raising
    memory access is wrapped in a per-site ``try/except BaseException``
    whose handler performs the register/flag writeback, RIP/step sync
    and any pending clock flush before re-raising.  CPython 3.11+
    makes the no-exception path of ``try`` free (zero-cost exceptions),
    so dirty state stays in Python locals from block entry to exit.

    Clock policy: cycle charges are compile-time constants accumulated
    into ``pend``.  Loads defer their flush (nothing observes the clock
    inside a load; the except handler flushes before propagating).
    Stores that can fire callbacks -- EPT first-touch, COW break,
    watched pages -- materialise ``pend`` first, because callbacks
    advance the clock themselves and the tracer records their
    timestamps (trace-byte equality); the inlined quiet-page store fast
    path fires no callbacks, so ``pend`` stays deferred across it.
    """

    def __init__(self, pc: int, mask: int, nbytes: int, paging: bool,
                 costs: "CostModel", seg_map: dict[int, int] | None = None,
                 seg_lens: list[int] | None = None) -> None:
        self.pc = pc
        self.mask = mask
        self.nbytes = nbytes
        self.paging = paging
        self.costs = costs
        self.sign_bit = (mask + 1) >> 1
        #: Region layout: guest head pc -> segment index, and each
        #: segment's length.  An exit whose target is a segment head
        #: becomes an internal transfer (``_pc = i; continue``) instead
        #: of a return to the dispatcher -- state is written through at
        #: the transfer, so every segment's statically-known spill sets
        #: stay exact regardless of the path that reached it.
        self.seg_map = seg_map if seg_map is not None else {}
        self.seg_lens = seg_lens if seg_lens is not None else []
        #: (head pc, body lines) per emitted segment.
        self.seg_bodies: list[tuple[int, list[str]]] = []
        self.body: list[str] = []
        self.count = 0          # instructions emitted in this segment
        self.pend = 0           # statically accumulated un-flushed cycles
        self.reg_loads: list[str] = []   # prologue-loaded registers
        self.defined: set[str] = set()   # registers with live locals
        self.dirty: "OrderedDict[str, bool]" = OrderedDict()
        #: Deferred flag-local assignments (dead-store elimination: a
        #: flag set that is overwritten before any possible observation
        #: is never emitted).  Flushed at every barrier -- exception
        #: sites, exits, predicate reads -- and dropped when the next
        #: flag-writing instruction arrives with no barrier in between.
        self.pending_flags: list[str] | None = None
        #: Register locals the pending flag lines read; a write to one
        #: forces the flush (the deferred lines must still evaluate to
        #: the values they had at the defining instruction).
        self.pending_regs: set[str] = set()
        self.flags_dirty = False
        self.uses_flags_obj = False
        self.uses_tlb = False
        #: True once a 64-bit paged access inlined the bytearray fast
        #: path (prologue then binds ``_data``/``_sz8``/the packers).
        self.uses_mem8 = False
        self.uses_quiet = False
        self.read_widths: set[int] = set()
        self.write_widths: set[int] = set()

    def begin_segment(self, head: int) -> None:
        """Start emitting a new region segment.

        Per-path state (dirty registers, pending flags, unflushed
        cycles, instruction count) resets: every way to *reach* a
        segment -- function entry or an internal transfer -- leaves the
        architectural objects fully synchronised.  Locals persist
        (``defined`` carries over), which is the point: registers stay
        in Python locals across segment transfers.
        """
        self.body = []
        self.seg_bodies.append((head, self.body))
        self.count = 0
        self.pend = 0
        self.pending_flags = None
        self.pending_regs = set()
        self.dirty = OrderedDict()
        self.flags_dirty = False

    # -- low-level helpers -------------------------------------------------
    def E(self, line: str, ind: int = 0) -> None:
        self.body.append("    " * ind + line)

    def reg_read(self, name: str) -> str:
        if name not in self.defined:
            self.reg_loads.append(name)
            self.defined.add(name)
        return f"r_{name}"

    def reg_write(self, name: str) -> str:
        if self.pending_flags and name in self.pending_regs:
            # A deferred flag line reads this register's local: emit the
            # flag assignments now, before the overwrite is emitted.
            self.flush_flags()
        if name not in self.defined:
            # Prologue-load even write-first registers: the region can be
            # *entered* at any segment, and a later segment may read the
            # local before this segment's write has run on that path.
            self.reg_loads.append(name)
            self.defined.add(name)
        self.dirty[name] = True
        return f"r_{name}"

    def _ensure_flags(self) -> None:
        # Flag locals are always defined at function entry (the prologue
        # loads them whenever the region touches flags at all): a region
        # can be *entered* at any segment, so per-segment definedness
        # cannot be proven statically.
        self.uses_flags_obj = True

    def _write_flags(self) -> None:
        self.flags_dirty = True
        self.uses_flags_obj = True

    def flush_flags(self) -> None:
        """Materialise deferred flag-local assignments (barrier)."""
        if self.pending_flags:
            for line in self.pending_flags:
                self.E(line)
        self.pending_flags = None
        self.pending_regs = set()

    def _state_lines(self, k: int, next_rip: int,
                     advance: bool) -> list[str]:
        """The except-handler body: exact state for a propagating exit."""
        lines = [f"regs['{n}'] = r_{n}" for n in self.dirty]
        if self.flags_dirty:
            lines += ["flags.zero = fz", "flags.sign = fs",
                      "flags.carry = fc"]
        lines.append(f"cpu.rip = {next_rip}")
        lines.append(f"I._sb_steps = _done + {k}")
        if self.paging:
            lines.append("I.tlb_hits += _th")
        if advance and self.pend:
            lines.append(f"clk._cycles += {self.pend}")
        return lines

    def raise_site(self, k: int, next_rip: int, charge: int) -> None:
        """State sync ahead of an unconditional ``raise`` (hlt/out/in)."""
        self.flush_flags()
        self.pend += charge
        for line in self._state_lines(k, next_rip, advance=True):
            self.E(line)
        self.pend = 0

    # -- memory ------------------------------------------------------------
    def _translate(self, addr_expr: str, ind: int = 0) -> str:
        """Virtual -> physical with a last-page memo over the TLB.

        ``_lpg``/``_lfr`` memoise the most recent page's frame for the
        lifetime of one region invocation.  The memo is count-exact: a
        memo hit implies the page is (still) in the TLB -- the access
        that populated the memo either hit the TLB or walked, and the
        walk fills the TLB; nothing inside a region can evict it except
        a store that reaches ``_touch_page`` on a translation-watched
        page, which only the *slow* store path can do (watched pages are
        never quiet), and that path resets the memo.  Hits are counted
        in the ``_th`` local and folded into ``I.tlb_hits`` at every
        function exit (return or raise); misses count inside ``walk``.
        """
        if not self.paging:
            return addr_expr
        self.uses_tlb = True
        self.E(f"_a = {addr_expr}", ind)
        self.E("_pg = _a >> 12", ind)
        self.E("if _pg == _lpg:", ind)
        self.E("_th += 1", ind + 1)
        self.E("_p = _lfr | (_a & 4095)", ind + 1)
        self.E("else:", ind)
        self.E("_f = tlb_get(_pg)", ind + 1)
        self.E("if _f is None:", ind + 1)
        self.E("_p = walk(_a)", ind + 2)
        self.E("_lfr = _p & -4096", ind + 2)
        self.E("else:", ind + 1)
        self.E("_th += 1", ind + 2)
        self.E("_p = _f | (_a & 4095)", ind + 2)
        self.E("_lfr = _f", ind + 2)
        self.E("_lpg = _pg", ind + 1)
        return "_p"

    def emit_load(self, addr_expr: str, width: int, k: int,
                  next_rip: int) -> str:
        """A guest load; ``pend`` carries past it (deferred flush).

        64-bit paged loads inline the accessor's own fast path -- bounds
        check + in-place struct decode from the backing bytearray -- and
        fall back to the bound accessor (which re-checks and raises the
        proper error) when out of bounds.
        """
        self.flush_flags()
        self.read_widths.add(width)
        self.E("try:")
        phys = self._translate(addr_expr, 1)
        if self.paging and width == 8:
            self.uses_mem8 = True
            self.E(f"if {phys} <= _sz8:", 1)
            self.E(f"_v = _up64(_data, {phys})[0]", 2)
            self.E("else:", 1)
            self.E(f"_v = read{width}({phys})", 2)
        else:
            self.E(f"_v = read{width}({phys})", 1)
        self.E("except BaseException:")
        for line in self._state_lines(k, next_rip, advance=True):
            self.E(line, 1)
        self.E("raise", 1)
        return "_v"

    def emit_store(self, addr_expr: str, val_expr: str, width: int,
                   k: int, next_rip: int) -> None:
        """A guest store.

        The quiet-page fast path of ``write_u64`` -- in-bounds,
        non-straddling store to a page that is already dirty and carries
        no watch of any kind -- is inlined for 64-bit paged stores.  A
        quiet store fires no callbacks and no listener can observe the
        clock through it, so ``pend`` stays deferred across it.  The
        slow path (first touch, CoW break, watched page, MMIO bounds
        error) materialises ``pend`` first -- callbacks and tracers see
        the exact clock -- calls the accessor, then rolls the advance
        back so the compile-time ``pend`` constant stays uniform across
        both branches; it also resets the translation memo, because a
        watched-page store clears every registered TLB.
        """
        self.flush_flags()
        self.write_widths.add(width)
        if self.paging:
            self.E("try:")
            phys = self._translate(addr_expr, 1)
            self.E("except BaseException:")
            for line in self._state_lines(k, next_rip, advance=True):
                self.E(line, 1)
            self.E("raise", 1)
            if width == 8:
                self.uses_mem8 = True
                self.uses_quiet = True
                self.E(f"_q = {phys} >> 12")
                self.E(f"if _q in _quiet and {phys} <= _sz8 "
                       f"and ({phys} + 7) >> 12 == _q:")
                self.E(f"_pk64(_data, {phys}, {val_expr} & {_M64})", 1)
                self.E("else:")
                if self.pend:
                    self.E(f"clk._cycles += {self.pend}", 1)
                self.E("try:", 1)
                self.E(f"write{width}({phys}, {val_expr})", 2)
                self.E("except BaseException:", 1)
                for line in self._state_lines(k, next_rip, advance=False):
                    self.E(line, 2)
                self.E("raise", 2)
                if self.pend:
                    self.E(f"clk._cycles -= {self.pend}", 1)
                self.E("_lpg = -1", 1)
                return
            if self.pend:
                self.E(f"clk._cycles += {self.pend}")
                self.pend = 0
            self.E("try:")
            self.E(f"write{width}({phys}, {val_expr})", 1)
            self.E("except BaseException:")
            for line in self._state_lines(k, next_rip, advance=False):
                self.E(line, 1)
            self.E("raise", 1)
            self.E("_lpg = -1")
            return
        if self.pend:
            self.E(f"clk._cycles += {self.pend}")
            self.pend = 0
        self.E("try:")
        self.E(f"write{width}({addr_expr}, {val_expr})", 1)
        self.E("except BaseException:")
        for line in self._state_lines(k, next_rip, advance=False):
            self.E(line, 1)
        self.E("raise", 1)

    def addr_expr(self, ref) -> str:
        if ref.base is None:
            return str(ref.disp & _M64)
        base = self.reg_read(ref.base)
        if ref.disp == 0:
            return base  # already masked, <= mask <= 2**64-1
        return f"({base} + {ref.disp}) & {_M64}"

    # -- operands ----------------------------------------------------------
    def pure_expr(self, operand, isa) -> str | None:
        """Reg/Imm operand expression (masked); None for memory."""
        if type(operand) is isa.Reg:
            return self.reg_read(operand.name)
        if type(operand) is isa.Imm:
            return str(operand.value & self.mask)
        return None

    # -- flags -------------------------------------------------------------
    #: Value-range kind of each ALU op's raw Python result, given masked
    #: (non-negative, <= mask) operands.  Lets the generic carry test
    #: ``t < 0 or t > mask`` fold to one comparison -- or, for ops whose
    #: result already lies in [0, mask], lets the masking itself vanish.
    _ALU_KIND = {"add": "pos", "shl": "pos", "mul": "pos",
                 "sub": "neg",
                 "and": "fit", "or": "fit", "xor": "fit", "shr": "fit"}

    def set_from_result(self, result_expr: str, kind: str = "gen") -> str:
        """Inline ``Flags.set_from_result``; returns the masked local.

        The flag assignments are deferred (``pending_flags``); a prior
        deferred set still pending here is dead -- this one overwrites
        all three flags with no barrier in between -- and is dropped.
        """
        self._write_flags()
        self.pending_flags = None
        self.pending_regs = set()
        self.E(f"_t = {result_expr}")
        if kind == "fit":  # result already in [0, mask]
            self.pending_flags = [
                "fz = _t == 0",
                f"fs = (_t & {self.sign_bit}) != 0",
                "fc = False",
            ]
            return "_t"
        if kind == "pos":      # result >= 0: only overflow can carry
            carry = f"fc = _t > {self.mask}"
        elif kind == "neg":    # result <= mask: only borrow can carry
            carry = "fc = _t < 0"
        else:
            carry = f"fc = _t < 0 or _t > {self.mask}"
        self.E(f"_m = _t & {self.mask}")
        self.pending_flags = [
            "fz = _m == 0",
            f"fs = (_m & {self.sign_bit}) != 0",
            carry,
        ]
        return "_m"

    def _signed_expr(self, expr: str, local: str) -> str:
        """Signed reinterpretation of a masked operand; constants fold."""
        maskp1 = self.mask + 1
        if expr.isdigit():
            v = int(expr)
            return str(v - maskp1 if v & self.sign_bit else v)
        self.E(f"{local} = {expr} - {maskp1} if {expr} & {self.sign_bit} "
               f"else {expr}")
        return local

    def cmp_flags(self, lhs: str, rhs: str) -> None:
        """Inline the cmp flag protocol.

        Both operands are masked (``[0, mask]``), so the reference
        protocol -- ``set_from_result(l - r)`` then the signed sign
        flag -- folds: zero is ``l == r``, carry is ``l < r``, and the
        difference temporaries disappear entirely.  The deferred lines
        read the operand locals directly, which is why ``reg_write``
        flushes when it is about to overwrite one of them.
        """
        self._write_flags()
        self.pending_flags = None
        sl = self._signed_expr(lhs, "_sl")
        sr = self._signed_expr(rhs, "_sr")
        self.pending_flags = [
            f"fz = {lhs} == {rhs}",
            f"fc = {lhs} < {rhs}",
            f"fs = {sl} < {sr}",
        ]
        self.pending_regs = {e[2:] for e in (lhs, rhs)
                             if e.startswith("r_")}

    # -- exits -------------------------------------------------------------
    def exit_dynamic(self, rip_expr: str, retired: int) -> None:
        """Segment completion with a runtime RIP (ret / dynamic jmp).

        The runtime target is looked up in the region's segment map:
        a hit transfers control internally (one dict probe + budget
        compare), which is what keeps ``ret`` chains -- fib's unwind --
        inside the generated function; a miss returns to the
        dispatcher with exact architectural state.
        """
        self.flush_flags()
        for line in self._spill_lines():
            self.E(line)
        self.E(f"_done += {retired}")
        if self.pend:
            self.E(f"clk._cycles += {self.pend}")
            self.pend = 0
        if self.seg_map:
            self.E(f"_sg = _map.get({rip_expr})")
            self.E("if _sg is not None and _left - _done >= _lens[_sg]:")
            self.E("_pc = _sg", 1)
            self.E("continue", 1)
        self.E(f"cpu.rip = {rip_expr}")
        if self.paging:
            self.E("I.tlb_hits += _th")
        self.E("return _done")

    def exit_const(self, target: int) -> None:
        """Segment completion continuing at a known PC."""
        self.flush_flags()
        idx = self.seg_map.get(target)
        if idx is None:
            for line in self._spill_lines():
                self.E(line)
            self.E(f"cpu.rip = {target}")
            if self.pend:
                self.E(f"clk._cycles += {self.pend}")
                self.pend = 0
            if self.paging:
                self.E("I.tlb_hits += _th")
            self.E(f"return _done + {self.count}")
            return
        for line in self._spill_lines():
            self.E(line)
        self.E(f"_done += {self.count}")
        if self.pend:
            self.E(f"clk._cycles += {self.pend}")
            self.pend = 0
        self.E(f"if _left - _done >= {self.seg_lens[idx]}:")
        self.E(f"_pc = {idx}", 1)
        self.E("continue", 1)
        self.E(f"cpu.rip = {target}")
        if self.paging:
            self.E("I.tlb_hits += _th")
        self.E("return _done")

    def _spill_lines(self) -> list[str]:
        lines = [f"regs['{n}'] = r_{n}" for n in self.dirty]
        if self.flags_dirty:
            lines += ["flags.zero = fz", "flags.sign = fs",
                      "flags.carry = fc"]
        return lines

    def branch_exit(self, pred: str, target: int) -> None:
        """A predicted-not-taken branch's taken path.

        A taken target that is itself a region segment transfers
        internally (a mispredict then costs one counter bump and a
        compare, not a dispatcher round trip); otherwise this is a true
        side exit.  Either way ``pend`` is *not* reset: the fall-through
        path still carries it.
        """
        self.flush_flags()
        self.E(f"if {pred}:")
        for line in self._spill_lines():
            self.E(line, 1)
        if self.pend:
            self.E(f"clk._cycles += {self.pend}", 1)
        self.E("I._jit_exits['branch'] += 1", 1)
        idx = self.seg_map.get(target)
        if idx is None:
            self.E(f"cpu.rip = {target}", 1)
            if self.paging:
                self.E("I.tlb_hits += _th", 1)
            self.E(f"return _done + {self.count + 1}", 1)
            return
        self.E(f"_done += {self.count + 1}", 1)
        self.E(f"if _left - _done >= {self.seg_lens[idx]}:", 1)
        self.E(f"_pc = {idx}", 2)
        self.E("continue", 2)
        self.E(f"cpu.rip = {target}", 1)
        if self.paging:
            self.E("I.tlb_hits += _th", 1)
        self.E("return _done", 1)

    # -- assembly ----------------------------------------------------------
    def assemble(self) -> str:
        # One tuple unpack binds every per-interpreter object the region
        # needs (the tuple is built once per interpreter; see
        # Interpreter._sb_ctx).  ``flags`` stays a separate read:
        # cpu.reset()/load_state() replace the Flags object.
        prologue = [
            "cpu, regs, clk, tlb_get, walk, _mr, _mw, _mem = I._sb_ctx",
        ]
        if self.uses_flags_obj:
            prologue.append("flags = cpu.flags")
        for width in sorted(self.read_widths):
            prologue.append(f"read{width} = _mr[{width}]")
        for width in sorted(self.write_widths):
            prologue.append(f"write{width} = _mw[{width}]")
        if self.uses_mem8:
            # Re-derived each invocation: ``fill()`` rebinds the backing
            # bytearray, so it is not identity-stable across runs.
            prologue.append("_data = _mem._data")
            prologue.append("_sz8 = _mem.size - 8")
            if 8 in self.read_widths:
                prologue.append("_up64 = _UP64")
            if self.uses_quiet:
                prologue.append("_quiet = _mem._quiet")
                prologue.append("_pk64 = _PK64")
        if self.paging:
            # Translation memo (invalid at entry) + batched TLB-hit count.
            prologue.append("_lpg = -1")
            prologue.append("_lfr = 0")
            prologue.append("_th = 0")
        for name in self.reg_loads:
            prologue.append(f"r_{name} = regs['{name}'] & {self.mask}")
        if self.uses_flags_obj:
            # Always defined at entry: the region can be entered at any
            # segment, so flag-local definedness is not path-provable.
            prologue.append("fz = flags.zero")
            prologue.append("fs = flags.sign")
            prologue.append("fc = flags.carry")
        # ``_done``: instructions retired by completed segments (except
        # sites and side exits add their segment-relative offset).
        prologue.append("_done = 0")
        lines = [f"def _superblock(I, _left, _pc):  # region {self.pc:#x}"]
        lines += ["    " + l for l in prologue]
        lines.append("    while True:")
        kw = "if"
        for head, body in self.seg_bodies:
            lines.append(f"        {kw} _pc == {self.seg_map.get(head, 0)}:"
                         f"  # {head:#x}")
            lines += ["            " + l for l in body]
            kw = "elif"
        return "\n".join(lines) + "\n"

    # -- the per-instruction dispatcher ------------------------------------
    def emit_insn(self, insn: "Instr", isa) -> tuple[bool, int | None]:
        """Emit one instruction.

        Returns ``(included, next_pc)``: ``(False, None)`` means the
        instruction cannot be fused (close the block before it),
        ``(True, None)`` means it terminated the block itself, and
        ``(True, pc)`` continues tracing at ``pc``.
        """
        op = insn.op
        ops = insn.operands
        if any(type(o) is isa.CtrlReg for o in ops):
            return False, None
        Reg, Imm, MemRef = isa.Reg, isa.Imm, isa.MemRef
        costs = self.costs
        base = costs.INSN_BASE
        mask = self.mask
        width = self.nbytes
        next_rip = insn.addr + insn.size
        k = self.count

        if op == "nop":
            self.pend += base
            self.count += 1
            return True, next_rip

        if op in ("cli", "sti"):
            self.pend += base
            self.uses_flags_obj = True
            self.E(f"flags.interrupts = {op == 'sti'}")
            self.count += 1
            return True, next_rip

        if op == "mov":
            dst, src = ops
            if type(dst) is Imm:
                return False, None  # write-to-immediate: keep on slow path
            sexpr = self.pure_expr(src, isa)
            if type(dst) is Reg and sexpr is not None:
                self.pend += base
                self.E(f"{self.reg_write(dst.name)} = {sexpr}")
                self.count += 1
                return True, next_rip
            if type(dst) is Reg:  # Reg <- Mem
                self.pend += base + costs.INSN_MEM
                value = self.emit_load(self.addr_expr(src), width,
                                       k, next_rip)
                local = self.reg_write(dst.name)
                self.E(f"{local} = {value} & {mask}")
                self.count += 1
                return True, next_rip
            # Mem <- Reg/Imm/Mem
            if sexpr is not None:
                self.pend += base + costs.INSN_MEM + costs.STORE8
                self.emit_store(self.addr_expr(dst), sexpr, width,
                                k, next_rip)
            else:  # Mem <- Mem: read charges first, then the write
                self.pend += base + costs.INSN_MEM
                value = self.emit_load(self.addr_expr(src), width,
                                       k, next_rip)
                self.E(f"_w = {value} & {mask}")
                self.pend += costs.INSN_MEM + costs.STORE8
                self.emit_store(self.addr_expr(dst), "_w", width,
                                k, next_rip)
            self.count += 1
            return True, next_rip

        alu = _ALU_EXPR.get(op)
        if alu is not None:
            dst, src = ops
            if type(dst) is Imm:
                return False, None
            dexpr = self.pure_expr(dst, isa)
            sexpr = self.pure_expr(src, isa)
            kind = self._ALU_KIND.get(op, "gen")
            if type(dst) is Reg and dexpr is not None and sexpr is not None:
                self.pend += base
                masked = self.set_from_result(
                    alu.format(l=dexpr, r=sexpr), kind)
                self.E(f"{self.reg_write(dst.name)} = {masked}")
                self.count += 1
                return True, next_rip
            # Memory form: read dst, read src, flags, write dst.
            self.pend += base
            if dexpr is None:
                self.pend += costs.INSN_MEM
                value = self.emit_load(self.addr_expr(dst), width,
                                       k, next_rip)
                self.E(f"_x = {value}")
                dexpr = "_x"
            if sexpr is None:
                self.pend += costs.INSN_MEM
                value = self.emit_load(self.addr_expr(src), width,
                                       k, next_rip)
                self.E(f"_y = {value}")
                sexpr = "_y"
            masked = self.set_from_result(alu.format(l=dexpr, r=sexpr), kind)
            if type(dst) is Reg:
                self.E(f"{self.reg_write(dst.name)} = {masked}")
            else:
                self.pend += costs.INSN_MEM + costs.STORE8
                self.emit_store(self.addr_expr(dst), masked, width,
                                k, next_rip)
            self.count += 1
            return True, next_rip

        if op in ("inc", "dec"):
            delta = "+ 1" if op == "inc" else "- 1"
            kind = "pos" if op == "inc" else "neg"
            target = ops[0]
            if type(target) is Reg:
                self.pend += base
                local = self.reg_read(target.name)
                masked = self.set_from_result(f"{local} {delta}", kind)
                self.E(f"{self.reg_write(target.name)} = {masked}")
                self.count += 1
                return True, next_rip
            if type(target) is not MemRef:
                return False, None
            self.pend += base + costs.INSN_MEM
            value = self.emit_load(self.addr_expr(target), width,
                                   k, next_rip)
            masked = self.set_from_result(f"{value} {delta}", kind)
            self.pend += costs.INSN_MEM + costs.STORE8
            self.emit_store(self.addr_expr(target), masked, width,
                            k, next_rip)
            self.count += 1
            return True, next_rip

        if op in ("cmp", "test"):
            lhs, rhs = ops
            lexpr = self.pure_expr(lhs, isa)
            rexpr = self.pure_expr(rhs, isa)
            self.pend += base
            if lexpr is None:
                self.pend += costs.INSN_MEM
                self.E(f"_x = {self.emit_load(self.addr_expr(lhs), width, k, next_rip)}")
                lexpr = "_x"
            if rexpr is None:
                self.pend += costs.INSN_MEM
                self.E(f"_y = {self.emit_load(self.addr_expr(rhs), width, k, next_rip)}")
                rexpr = "_y"
            if op == "cmp":
                self.cmp_flags(lexpr, rexpr)
            else:
                self.set_from_result(f"{lexpr} & {rexpr}", "fit")
            self.count += 1
            return True, next_rip

        if op == "jmp":
            target = ops[0]
            if type(target) is Imm:
                # Unconditional constant jump: fuse straight through it
                # (the caller redirects tracing; no code is emitted).
                self.pend += base
                self.count += 1
                return True, target.value & mask
            if type(target) is Reg:
                self.pend += base
                local = self.reg_read(target.name)
                self.count += 1
                self.exit_dynamic(local, self.count)
                return True, None
            self.pend += base + costs.INSN_MEM
            value = self.emit_load(self.addr_expr(target), width,
                                   k, next_rip)
            self.count += 1
            self.exit_dynamic(value, self.count)
            return True, None

        pred = _JCC_EXPR.get(op)
        if pred is not None:
            target = ops[0]
            if type(target) is not Imm:
                return False, None
            self.pend += base
            self._ensure_flags()
            self.branch_exit(pred, target.value & mask)
            self.count += 1
            return True, next_rip

        if op == "call":
            target = ops[0]
            if type(target) is MemRef:
                self.pend += base + costs.INSN_CALL + costs.INSN_MEM
                value = self.emit_load(self.addr_expr(target), width,
                                       k, next_rip)
                self.E(f"_c = {value}")
                sp = self.reg_read("sp")
                self.E(f"_s = ({sp} - {width}) & {mask}")
                self.E(f"{self.reg_write('sp')} = _s")
                self.pend += costs.INSN_MEM + costs.STORE8
                self.emit_store("_s", str(next_rip & mask), width,
                                k, next_rip)
                self.count += 1
                self.exit_dynamic("_c", self.count)
                return True, None
            if type(target) is Reg:
                # Capture before the sp update (the target may be sp).
                texpr = self.reg_read(target.name)
                self.E(f"_c = {texpr}")
            sp = self.reg_read("sp")
            self.E(f"_s = ({sp} - {width}) & {mask}")
            self.E(f"{self.reg_write('sp')} = _s")
            self.pend += (base + costs.INSN_CALL + costs.INSN_MEM
                          + costs.STORE8)
            self.emit_store("_s", str(next_rip & mask), width, k, next_rip)
            self.count += 1
            if type(target) is Reg:
                self.exit_dynamic("_c", self.count)
                return True, None
            return True, target.value & mask  # fuse into the callee

        if op == "ret":
            self.pend += base + costs.INSN_CALL + costs.INSN_MEM
            sp = self.reg_read("sp")
            value = self.emit_load(sp, width, k, next_rip)
            self.E(f"{self.reg_write('sp')} = ({sp} + {width}) & {mask}")
            self.count += 1
            self.exit_dynamic(value, self.count)
            return True, None

        if op == "push":
            src = ops[0]
            sexpr = self.pure_expr(src, isa)
            if sexpr is not None:
                sp = self.reg_read("sp")
                self.E(f"_s = ({sp} - {width}) & {mask}")
                self.E(f"{self.reg_write('sp')} = _s")
                self.pend += base + costs.INSN_MEM + costs.STORE8
                self.emit_store("_s", sexpr, width, k, next_rip)
                self.count += 1
                return True, next_rip
            # push [mem]: source read charges (and can fault) first.
            self.pend += base + costs.INSN_MEM
            value = self.emit_load(self.addr_expr(src), width, k, next_rip)
            self.E(f"_w = {value} & {mask}")
            sp = self.reg_read("sp")
            self.E(f"_s = ({sp} - {width}) & {mask}")
            self.E(f"{self.reg_write('sp')} = _s")
            self.pend += costs.INSN_MEM + costs.STORE8
            self.emit_store("_s", "_w", width, k, next_rip)
            self.count += 1
            return True, next_rip

        if op == "pop":
            if type(ops[0]) is not Reg:
                return False, None
            self.pend += base + costs.INSN_MEM
            sp = self.reg_read("sp")
            value = self.emit_load(sp, width, k, next_rip)
            self.E(f"{self.reg_write('sp')} = ({sp} + {width}) & {mask}")
            self.E(f"{self.reg_write(ops[0].name)} = {value} & {mask}")
            self.count += 1
            return True, next_rip

        if op == "stos64":
            di = self.reg_read("di")
            self.E(f"_s = {di}")
            self.pend += base + costs.INSN_MEM + costs.STORE8
            # h_stos64 stores the *raw* accumulator (no masking): use
            # the local only when it is dirty (then it equals what the
            # reference dict would hold); a clean local is the *masked*
            # image of a possibly-wider dict value, so read the dict.
            val = "r_ax" if "ax" in self.dirty else "regs['ax']"
            self.emit_store("_s", val, 8, k, next_rip)
            self.E(f"{self.reg_write('di')} = (_s + 8) & {mask}")
            self.count += 1
            return True, next_rip

        if op == "hlt":
            self.raise_site(k, next_rip, base)
            self.E("cpu.halted = True")
            self.E("raise HaltExit()")
            self.count += 1
            return True, None

        if op == "out":
            pexpr = self.pure_expr(ops[0], isa)
            vexpr = self.pure_expr(ops[1], isa)
            if pexpr is None or vexpr is None:
                return False, None
            self.raise_site(k, next_rip, base)
            self.E(f"raise IOOutExit(port={pexpr}, value={vexpr})")
            self.count += 1
            return True, None

        if op == "in":
            if type(ops[0]) is not Reg:
                return False, None
            pexpr = self.pure_expr(ops[1], isa)
            if pexpr is None:
                return False, None
            self.raise_site(k, next_rip, base)
            self.E(f"raise IOInExit(port={pexpr}, dest={ops[0].name!r})")
            self.count += 1
            return True, None

        # lgdt / ljmp / wrmsr / rdmsr / unknown: component-charging or
        # mode-changing -- always left to the per-instruction path.
        return False, None


def _trace(interp, em: _Emitter, pc: int, isa,
           conts: list[int] | None = None):
    """Drive ``em`` over the straight-line trace starting at ``pc``.

    Tracing follows fall-through edges, fuses unconditional
    ``jmp``/``call`` immediates, predicts conditional branches not-taken
    (side exit on taken), and closes on dynamic control flow, raising
    terminators, uncompilable instructions, revisited PCs (loops) or the
    length cap.  When ``conts`` is given, statically-known continuation
    PCs are collected into it: taken branch targets, and the return site
    of every ``call`` (the address its push made a future ``ret``
    target) -- these seed further region segments.

    Returns ``(closed, cur, guest_lines, spans)``; ``closed`` is False
    when the trace ended open at PC ``cur``.
    """
    by_addr = interp._by_addr
    visited: set[int] = set()
    guest_lines: list[str] = []
    spans: list[tuple[int, int]] = []
    cur = pc
    closed = False
    while em.count < MAX_BLOCK_INSNS:
        if cur in visited:
            break
        insn = by_addr.get(cur)
        if insn is None:
            break
        if conts is not None:
            op = insn.op
            if op == "call":
                conts.append((insn.addr + insn.size) & em.mask)
            elif op in _JCC_EXPR and insn.operands \
                    and type(insn.operands[0]) is isa.Imm:
                conts.append(insn.operands[0].value & em.mask)
        included, nxt = em.emit_insn(insn, isa)
        if not included:
            break
        visited.add(cur)
        guest_lines.append(f"{insn.addr:#06x}: {insn.line or insn.op}")
        spans.append((insn.addr, insn.size))
        if nxt is None:
            closed = True
            break
        cur = nxt
    return closed, cur, guest_lines, spans


def compile_block(interp: "Interpreter", pc: int) -> list[CompiledBlock] | None:
    """Compile the hot *region* rooted at ``pc``.

    Phase 1 discovers the region: the trace at ``pc`` plus, breadth-
    first, the traces at every statically-known continuation (taken
    branch targets, call return sites) up to the region caps.  Phase 2
    re-emits every segment into one generated function whose segments
    transfer control internally -- so a hot call/return web (fib's
    descent, base-case return and unwind chains) runs as plain Python
    control flow, entering the dispatcher only on budget exhaustion,
    I/O, faults or targets outside the region.

    Returns one dispatch entry per segment head (they share the
    function), or ``None`` when the head instruction cannot be fused
    (the caller blacklists the PC).
    """
    isa = _isa()
    cpu = interp.cpu
    mask = cpu.mask
    paging = cpu.paging_enabled
    # -- phase 1: discovery --------------------------------------------
    heads = [pc]
    seen = {pc}
    seg_info: list[tuple[int, int]] = []   # (head, length)
    total = 0
    i = 0
    while i < len(heads) and len(seg_info) < MAX_REGION_SEGMENTS:
        head = heads[i]
        i += 1
        em = _Emitter(head, mask, cpu.nbytes, paging, interp.costs)
        conts: list[int] = []
        closed, cur, _, _ = _trace(interp, em, head, isa, conts)
        if em.count == 0:
            if head == pc:
                return None
            continue  # secondary head starts uncompilable: drop it
        if head == pc and em.count < MIN_BLOCK_INSNS and not closed \
                and cur != pc:
            return None
        if not closed:
            conts.append(cur)
        seg_info.append((head, em.count))
        total += em.count
        if total >= MAX_REGION_INSNS:
            break
        by_addr = interp._by_addr
        for c in conts:
            if c not in seen and by_addr.get(c) is not None:
                seen.add(c)
                heads.append(c)
    # -- phase 2: emission ---------------------------------------------
    seg_map = {head: idx for idx, (head, _) in enumerate(seg_info)}
    seg_lens = [length for _, length in seg_info]
    em = _Emitter(pc, mask, cpu.nbytes, paging, interp.costs,
                  seg_map, seg_lens)
    seg_lines: list[tuple] = []
    spans: list[tuple[int, int]] = []
    for head, _ in seg_info:
        em.begin_segment(head)
        closed, cur, guest_lines, seg_spans = _trace(interp, em, head, isa)
        if not closed:
            em.exit_const(cur)
        seg_lines.append(tuple(guest_lines))
        spans.extend(seg_spans)
    source = em.assemble()
    namespace = {
        "HaltExit": isa.HaltExit,
        "IOOutExit": isa.IOOutExit,
        "IOInExit": isa.IOInExit,
        "_map": seg_map,
        "_lens": tuple(seg_lens),
        "_UP64": _U64.unpack_from,
        "_PK64": _U64.pack_into,
    }
    exec(compile(source, f"<superblock {pc:#x}>", "exec"), namespace)
    fn = namespace["_superblock"]
    pages = set()
    for addr, size in spans:
        pages.update(range(addr >> PAGE_SHIFT,
                           ((addr + max(size, 1) - 1) >> PAGE_SHIFT) + 1))
    pages = tuple(sorted(pages))
    return [
        CompiledBlock(
            pc=head,
            mask=mask,
            paging=paging,
            length=length,
            pages=pages,
            lines=seg_lines[idx],
            source=source,
            fn=fn,
            entry=idx,
        )
        for idx, (head, length) in enumerate(seg_info)
    ]
