"""Hardware virtualization: the virtual-machine control structure and
world switches.

A :class:`VirtualMachine` bundles a vCPU, guest physical memory, and an
interpreter, and implements the ``vmrun``/``#VMEXIT`` world switches with
their cycle costs.  First-touch EPT faults are charged here: the first
guest store to a previously-untouched page costs
``EPT_FIRST_TOUCH_FAULT`` (modelling the EPT-violation exit and host-side
EPT construction inside KVM), which is the dominant component of the
paper's "Paging identity mapping" row in Table 1.

A zero-cost *debug port* (:data:`DEBUG_PORT`) lets guest code record
milestone timestamps without perturbing the measurement -- the moral
equivalent of the guest-side ``rdtsc`` instrumentation the paper uses for
Table 1 and Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hw.clock import Clock
from repro.hw.costs import COSTS, CostModel
from repro.hw.cpu import CPU
from repro.hw.isa import (
    HaltExit,
    Interpreter,
    IOInExit,
    IOOutExit,
    Program,
    TripleFault,
)
from repro.hw.memory import GuestMemory
from repro.replay.stream import NO_RECORD, InterfaceRecorder
from repro.trace.tracer import NO_TRACE, Category, Tracer

#: Magic, zero-cost instrumentation port (simulation-only; see module doc).
DEBUG_PORT = 0xE9

#: ``ExitInfo.detail`` value when a run exhausted its step budget.  The
#: hypervisor promotes this to a typed ``VirtineTimeout`` so a runaway
#: guest is distinguishable from a clean halt.
STEP_BUDGET_EXHAUSTED = "step budget exhausted"


class ExitReason(enum.Enum):
    """Why control returned to the hypervisor."""

    HLT = "hlt"
    IO_OUT = "io_out"
    IO_IN = "io_in"
    SHUTDOWN = "shutdown"


@dataclass
class ExitInfo:
    """Description of one VM exit."""

    reason: ExitReason
    port: int = 0
    value: int = 0
    in_dest: str = ""
    detail: str = ""
    #: Interpreter steps executed during this run (timeout accounting).
    steps: int = 0


@dataclass
class Milestone:
    """A guest-recorded timestamp (via the debug port)."""

    marker: int
    cycles: int


class VirtualMachine:
    """One hardware virtual context (VMCB/VMCS + vCPU + guest memory)."""

    def __init__(
        self,
        memory_size: int,
        clock: Clock,
        costs: CostModel = COSTS,
        tracer: Tracer | None = None,
        fast_paths: bool = True,
        recorder: InterfaceRecorder | None = None,
        jit: bool = True,
        jit_domain=None,
    ) -> None:
        self.clock = clock
        self.costs = costs
        #: Cycle tracer (disabled by default; charges nothing, ever).
        self.tracer = tracer if tracer is not None else NO_TRACE
        #: Boundary-stream recorder (disabled by default; records nothing).
        self.recorder = recorder if recorder is not None else NO_RECORD
        self.fast_paths = fast_paths
        #: Superblock JIT controls, consumed by :meth:`_make_interpreter`
        #: (attributes, not parameters, so the replay substrate's
        #: interpreter-free override keeps its signature).
        self.jit = jit
        self.jit_domain = jit_domain
        self.cpu = CPU()
        self.memory = self._make_memory(memory_size)
        self.memory.on_first_touch = self._ept_fault
        self.memory.on_cow_break = self._cow_break
        self.interp = self._make_interpreter(fast_paths)
        if self.recorder.enabled and self.interp is not None:
            self.interp.on_component = self._record_component
        self.milestones: list[Milestone] = []
        self.ept_faults = 0
        self.ept_fault_cycles = 0
        self.cow_breaks = 0
        self._in_guest = False

    # Factory hooks so the replay substrate can substitute a stream-fed
    # memory and an interpreter-free guest (see repro.replay.substrate).
    def _make_memory(self, size: int) -> GuestMemory:
        return GuestMemory(size)

    def _make_interpreter(self, fast_paths: bool) -> Interpreter:
        return Interpreter(self.cpu, self.memory, self.clock, self.costs,
                           tracer=self.tracer, fast_paths=fast_paths,
                           jit=self.jit, jit_domain=self.jit_domain)

    def _record_component(self, name: str, cycles: int) -> None:
        self.recorder.segment_component(name, cycles, Category.BOOT.value,
                                        self.clock.cycles)

    # -- EPT model -------------------------------------------------------------
    def _ept_fault(self, page: int) -> None:
        # Host-side writes (image loads, snapshot restores) are performed
        # through load_bytes()/copy_from() which bypass touch tracking, so
        # only *guest* stores land here.
        if not self._in_guest:
            return
        self.clock.advance(self.costs.EPT_FIRST_TOUCH_FAULT)
        self.ept_faults += 1
        self.ept_fault_cycles += self.costs.EPT_FIRST_TOUCH_FAULT
        comp = self.interp.component_cycles
        comp["ept faults"] = comp.get("ept faults", 0) + self.costs.EPT_FIRST_TOUCH_FAULT
        self.tracer.component("ept faults", self.costs.EPT_FIRST_TOUCH_FAULT,
                              Category.VMM)
        self.recorder.segment_component("ept faults",
                                        self.costs.EPT_FIRST_TOUCH_FAULT,
                                        Category.VMM.value, self.clock.cycles)

    def _cow_break(self, page: int) -> None:
        # First write to a page restored copy-on-write: take the
        # write-protection fault and copy the 4 KB page.  Charged whether
        # the writer is the guest or a host-side marshalling copy (both
        # materialise the private page).
        cost = self.costs.COW_BREAK_FAULT + self.costs.memcpy(4096)
        self.clock.advance(cost)
        self.cow_breaks += 1
        self.tracer.component("cow break", int(cost), Category.VMM)
        self.recorder.segment_component("cow break", int(cost),
                                        Category.VMM.value, self.clock.cycles)

    # -- program management -------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Load a program image into guest memory and point RIP at it."""
        self.interp.load_program(program)

    # -- world switches ----------------------------------------------------------------
    def vmrun(self, max_steps: int = 50_000_000) -> ExitInfo:
        """Enter the guest (``vmrun``) and run until the next ``#VMEXIT``.

        The entry and exit world-switch costs are charged here; the KVM
        layer adds its ioctl/ring costs on top.
        """
        span = self.tracer.begin("vmrun", Category.VMM)
        self.clock.advance(self.costs.VMRUN_ENTRY)
        self.recorder.vmexit_begin(self.clock.cycles)
        self._in_guest = True
        try:
            info = self._run_until_exit(max_steps)
            self.recorder.vmexit_end(self.clock.cycles, info, self.cpu)
            span.annotate(exit_reason=info.reason.value, steps=info.steps)
            return info
        finally:
            self._in_guest = False
            self.clock.advance(self.costs.VMRUN_EXIT)
            self.tracer.end(span)

    def _run_until_exit(self, max_steps: int) -> ExitInfo:
        # The interpreter runs the hot loop in bulk (run_steps); exits
        # surface as exceptions whose completed-step count is read back
        # from last_run_steps, which -- like the per-step loop this
        # replaces -- never counts the exiting instruction itself.
        interp = self.interp
        steps = 0
        while steps < max_steps:
            try:
                steps += interp.run_steps(max_steps - steps)
            except HaltExit:
                return ExitInfo(reason=ExitReason.HLT,
                                steps=steps + interp.last_run_steps)
            except IOOutExit as io:
                steps += interp.last_run_steps
                if io.port == DEBUG_PORT:
                    self.milestones.append(
                        Milestone(marker=io.value, cycles=self.clock.cycles))
                    self.tracer.instant(f"milestone:{io.value}", Category.GUEST,
                                        marker=io.value)
                    self.recorder.segment_milestone(io.value, self.clock.cycles)
                    continue
                return ExitInfo(reason=ExitReason.IO_OUT, port=io.port,
                                value=io.value, steps=steps)
            except IOInExit as io:
                return ExitInfo(reason=ExitReason.IO_IN, port=io.port,
                                in_dest=io.dest,
                                steps=steps + interp.last_run_steps)
            except TripleFault as fault:
                return ExitInfo(reason=ExitReason.SHUTDOWN, detail=fault.reason,
                                steps=steps + interp.last_run_steps)
        return ExitInfo(reason=ExitReason.SHUTDOWN, detail=STEP_BUDGET_EXHAUSTED, steps=steps)

    def complete_io_in(self, dest: str, value: int) -> None:
        """Provide the value for a pending ``in`` before re-entering."""
        self.interp.resume_with_input(dest, value)

    # -- lifecycle ---------------------------------------------------------------------
    def reset(self) -> None:
        """Architectural reset (registers + mode); memory is left intact."""
        self.cpu.reset()
        self.interp.mark_entry()
        self.milestones.clear()

    def clear_memory(self) -> int:
        """Zero the guest's dirty pages; returns the memset's cycle cost.

        Only pages the previous occupant wrote need clearing, so the cost
        scales with the working set rather than the full guest memory.
        The EPT (touch tracking) survives: the virtual context keeps its
        host-side mappings, which is precisely why recycled shells are
        cheap (Section 5.2).
        """
        cleared = self.memory.clear_dirty()
        self.recorder.mem_clear(cleared)
        return self.costs.memset(cleared)

    def milestone_deltas(self) -> dict[int, int]:
        """Map marker id -> cycles elapsed since the previous milestone."""
        deltas: dict[int, int] = {}
        prev: int | None = None
        for milestone in self.milestones:
            if prev is not None:
                deltas[milestone.marker] = milestone.cycles - prev
            prev = milestone.cycles
        return deltas
