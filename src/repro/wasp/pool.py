"""The virtine shell pool (Section 5.2, Figure 6).

"Wasp supports a pool of cached, uninitialized, virtines (shells) that
can be reused. ... once we do this, and the relevant virtine returns, we
can clear its context, preventing information leakage, and cache it in a
pool of 'clean' virtines so the host OS need not pay the expensive cost
of re-allocating virtual hardware contexts."

Three cleaning disciplines correspond to the Figure 8 series:

* scratch creation (no pool)           -> "Wasp"
* pooled + synchronous clean           -> "Wasp+C"
* pooled + asynchronous clean          -> "Wasp+CA" (cleaning charged to a
  background accountant, off the request's critical path)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.hw.clock import BackgroundAccountant
from repro.kvm.device import KVM, VcpuHandle, VMHandle
from repro.telemetry.registry import NO_TELEMETRY, TelemetryRegistry
from repro.trace.tracer import Category


class CleanMode(enum.Enum):
    """When (and whether) a released shell's memory is scrubbed."""

    SYNC = "sync"
    ASYNC = "async"
    #: No clearing at all -- only safe when the *same* trust domain reuses
    #: the shell (the "no teardown" optimisation of Section 6.5).
    NONE = "none"


@dataclass
class Shell:
    """A cached, uninitialised hardware virtual context."""

    handle: VMHandle
    vcpu: VcpuHandle
    memory_size: int
    generation: int = 0

    @property
    def vm(self):
        return self.vcpu.vm


class ShellPool:
    """A pool of reusable shells, keyed externally by memory size."""

    def __init__(
        self,
        kvm: KVM,
        memory_size: int,
        background: BackgroundAccountant | None = None,
        max_free: int = 64,
        fault_plan: FaultPlan | None = None,
        telemetry: TelemetryRegistry | None = None,
    ) -> None:
        self.kvm = kvm
        self.memory_size = memory_size
        self.background = background if background is not None else BackgroundAccountant()
        self.max_free = max_free
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
        #: The pool's dimensional identity in the telemetry plane.
        self._bucket_mb = memory_size // (1024 * 1024)
        self._free: list[Shell] = []
        self.hits = 0
        self.misses = 0
        #: Shells quarantined after hosting a crash (scrubbed + generation
        #: bumped before any reuse).
        self.quarantines = 0
        #: Cached shells found defective on acquire (discarded, rebuilt).
        self.defects = 0
        #: Shells whose restore source vanished between acquire and
        #: restore (snapshot GC race): quarantined, launch went cold.
        self.restore_defects = 0

    # -- provisioning --------------------------------------------------------
    def acquire(self) -> Shell:
        """Provision a shell: reuse a cached one or create from scratch.

        A pool hit costs only the free-list bookkeeping; a miss pays the
        full ``KVM_CREATE_VM`` + memory-region + vCPU construction.  A
        cached shell can be found defective (injected fault: its virtual
        context no longer validates); it is destroyed and replaced with a
        scratch build rather than handed to the caller -- the fault is
        absorbed here, at the cost of a miss.
        """
        with self.kvm.tracer.span("pool.acquire", Category.POOL) as span:
            if self._free:
                if self.fault_plan.draw(FaultSite.POOL_ACQUIRE):
                    # Detecting and discarding the defective shell is free-list
                    # work like any other: charge the bookkeeping cost so the
                    # Wasp+C series does not understate latency under faults.
                    self.kvm.clock.advance(self.kvm.costs.POOL_BOOKKEEPING)
                    bad = self._free.pop()
                    bad.handle.close()
                    self.defects += 1
                    self.misses += 1
                    self.telemetry.counter("pool_defects_total",
                                           bucket_mb=self._bucket_mb).inc()
                    self.telemetry.counter("pool_misses_total",
                                           bucket_mb=self._bucket_mb).inc()
                    span.annotate(outcome="defect")
                    return self._create()
                self.kvm.clock.advance(self.kvm.costs.POOL_BOOKKEEPING)
                self.hits += 1
                self.telemetry.counter("pool_hits_total",
                                       bucket_mb=self._bucket_mb).inc()
                shell = self._free.pop()
                shell.generation += 1
                span.annotate(outcome="hit")
                return shell
            self.misses += 1
            self.telemetry.counter("pool_misses_total",
                                   bucket_mb=self._bucket_mb).inc()
            span.annotate(outcome="miss")
            return self._create()

    def create_scratch(self) -> Shell:
        """Create a shell from scratch, bypassing the cache (the "Wasp"
        series of Figure 8 -- every invocation pays full construction)."""
        with self.kvm.tracer.span("pool.acquire", Category.POOL, outcome="scratch"):
            self.misses += 1
            self.telemetry.counter("pool_misses_total",
                                   bucket_mb=self._bucket_mb).inc()
            return self._create()

    def _create(self) -> Shell:
        handle = self.kvm.create_vm()
        handle.set_user_memory_region(self.memory_size)
        vcpu = handle.create_vcpu()
        return Shell(handle=handle, vcpu=vcpu, memory_size=self.memory_size)

    # -- release -----------------------------------------------------------------
    def release(self, shell: Shell, clean: CleanMode = CleanMode.SYNC) -> None:
        """Return a shell to the pool under the given cleaning discipline."""
        with self.kvm.tracer.span("pool.release", Category.TEARDOWN,
                                  clean=clean.value):
            vm = shell.vm
            vm.reset()
            if clean is CleanMode.SYNC:
                self.kvm.clock.advance(vm.clear_memory())
            elif clean is CleanMode.ASYNC:
                # The scrub still happens (state must not leak), but its cost
                # lands on the background accountant, not request latency.
                self.background.charge(vm.clear_memory())
            if len(self._free) < self.max_free:
                self.kvm.clock.advance(self.kvm.costs.POOL_BOOKKEEPING)
                self._free.append(shell)
            else:
                shell.handle.close()

    def quarantine(self, shell: Shell) -> None:
        """Reclaim a shell that hosted a crash.

        A crashed virtine's shell must never be blindly reinserted: its
        memory may hold the poisoned state that killed it, and an
        attacker-triggered crash followed by reuse is an information
        leak.  Quarantine resets the vCPU, scrubs *synchronously* (the
        scrub is a security boundary here, so it is never deferred to
        the background accountant), and bumps the generation so stale
        references to the pre-crash occupancy are detectable.
        """
        with self.kvm.tracer.span("pool.quarantine", Category.TEARDOWN):
            self.quarantines += 1
            self.telemetry.counter("pool_quarantines_total",
                                   bucket_mb=self._bucket_mb).inc()
            vm = shell.vm
            vm.reset()
            self.kvm.clock.advance(vm.clear_memory())
            shell.generation += 1
            if len(self._free) < self.max_free:
                self.kvm.clock.advance(self.kvm.costs.POOL_BOOKKEEPING)
                self._free.append(shell)
            else:
                shell.handle.close()

    def quarantine_defect(self, shell: Shell) -> None:
        """Quarantine a shell whose restore source was yanked away.

        The GC-vs-restore race lands here: the shell was acquired
        expecting a warm restore, then the snapshot it was promised was
        collected.  The shell itself hosted no crash, but it may have
        been partially prepared against state that no longer exists, so
        it takes the full quarantine path (reset + synchronous scrub +
        generation bump) and the defect is accounted separately from
        acquire-time defects so the race is visible in metrics.
        """
        self.restore_defects += 1
        self.telemetry.counter("pool_restore_defects_total",
                               bucket_mb=self._bucket_mb).inc()
        self.quarantine(shell)

    def prewarm(self, count: int) -> None:
        """Populate the pool ahead of time (cold-start avoidance).

        ``count`` is clamped to ``max_free``: the pool never caches more
        shells than ``release``/``quarantine`` would retain, so a
        too-eager prewarm cannot grow the free list past the cap.
        """
        target = min(count, self.max_free)
        created = [self._create() for _ in range(target - len(self._free))]
        self._free.extend(created)

    @property
    def free_count(self) -> int:
        return len(self._free)


@dataclass
class _ShardView:
    """One core's handle onto a :class:`ShardedShellPool`.

    Presents the plain :class:`ShellPool` surface (acquire / release /
    quarantine / create_scratch) with the core identity bound, so the
    launch path stays shard-agnostic.
    """

    pool: "ShardedShellPool"
    core: int

    def acquire(self) -> Shell:
        return self.pool.acquire(self.core)

    def create_scratch(self) -> Shell:
        return self.pool.shard(self.core).create_scratch()

    def release(self, shell: Shell, clean: CleanMode = CleanMode.SYNC) -> None:
        self.pool.shard(self.core).release(shell, clean)

    def quarantine(self, shell: Shell) -> None:
        self.pool.shard(self.core).quarantine(shell)

    def quarantine_defect(self, shell: Shell) -> None:
        self.pool.shard(self.core).quarantine_defect(shell)


class ShardedShellPool:
    """Per-core shards of one bucket's shell cache, with work-stealing.

    Every shard is a plain :class:`ShellPool` (same KVM device, same
    clock domain -- sharding models per-core free lists with no shared
    lock, not separate machines).  A core whose shard is empty steals
    the newest free shell from the richest sibling before paying scratch
    construction: one extra ``POOL_BOOKKEEPING`` charge (the cross-core
    hand-off) instead of a full ``KVM_CREATE_VM``.

    Victim selection is deterministic (deepest free list, lowest shard
    id on ties), so a seeded workload replays the identical steal
    sequence.
    """

    def __init__(
        self,
        kvm: KVM,
        memory_size: int,
        background: BackgroundAccountant | None = None,
        max_free: int = 64,
        fault_plan: FaultPlan | None = None,
        shards: int = 2,
        steal: bool = True,
        telemetry: TelemetryRegistry | None = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"need at least one shard, got {shards}")
        self.kvm = kvm
        self.memory_size = memory_size
        self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
        #: Per-shard cap: the aggregate cache never exceeds ``max_free``.
        per_shard = max(1, max_free // shards)
        self.shards_list = [
            ShellPool(kvm, memory_size, background=background,
                      max_free=per_shard, fault_plan=fault_plan,
                      telemetry=self.telemetry)
            for _ in range(shards)
        ]
        self.steal = steal
        self.steals = 0

    def __len__(self) -> int:
        return len(self.shards_list)

    def shard(self, core: int) -> ShellPool:
        return self.shards_list[core % len(self.shards_list)]

    def view(self, core: int) -> _ShardView:
        return _ShardView(pool=self, core=core % len(self.shards_list))

    def acquire(self, core: int = 0) -> Shell:
        """Provision from the core's shard, stealing on a local miss."""
        local = self.shard(core)
        if not local._free and self.steal:
            victim = self._victim(local)
            if victim is not None:
                # The hand-off is free-list bookkeeping on both ends.
                self.kvm.clock.advance(self.kvm.costs.POOL_BOOKKEEPING)
                local._free.append(victim._free.pop())
                self.steals += 1
                self.telemetry.counter(
                    "pool_steals_total",
                    bucket_mb=self.memory_size // (1024 * 1024)).inc()
                self.kvm.tracer.instant("pool.steal", Category.POOL,
                                        to_shard=core % len(self.shards_list))
        return local.acquire()

    def _victim(self, thief: ShellPool) -> ShellPool | None:
        """The richest sibling shard, or None when all are empty."""
        best: ShellPool | None = None
        for shard in self.shards_list:
            if shard is thief or not shard._free:
                continue
            if best is None or len(shard._free) > len(best._free):
                best = shard
        return best

    def create_scratch(self, core: int = 0) -> Shell:
        return self.shard(core).create_scratch()

    def release(self, shell: Shell, clean: CleanMode = CleanMode.SYNC,
                core: int = 0) -> None:
        self.shard(core).release(shell, clean)

    def quarantine(self, shell: Shell, core: int = 0) -> None:
        self.shard(core).quarantine(shell)

    def quarantine_defect(self, shell: Shell, core: int = 0) -> None:
        self.shard(core).quarantine_defect(shell)

    def prewarm(self, count: int) -> None:
        """Spread ``count`` shells across shards (round-robin remainder)."""
        shards = len(self.shards_list)
        base, extra = divmod(count, shards)
        for i, shard in enumerate(self.shards_list):
            shard.prewarm(base + (1 if i < extra else 0))

    # -- aggregate counters (the ShellPool metric surface) -------------------
    @property
    def free_count(self) -> int:
        return sum(s.free_count for s in self.shards_list)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.shards_list)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.shards_list)

    @property
    def quarantines(self) -> int:
        return sum(s.quarantines for s in self.shards_list)

    @property
    def defects(self) -> int:
        return sum(s.defects for s in self.shards_list)

    @property
    def restore_defects(self) -> int:
        return sum(s.restore_defects for s in self.shards_list)
