"""Hypercall security policies.

"Virtines exist in a default-deny environment, so the hypervisor must
interpose on all such requests" (Section 2).  The virtine client selects
(or implements) a policy; Wasp consults it before dispatching every
hypercall.  The policies here correspond to the language-extension
keywords of Section 5.3:

* ``virtine``             -> :class:`DefaultDenyPolicy`
* ``virtine_permissive``  -> :class:`PermissivePolicy`
* ``virtine_config(cfg)`` -> :class:`BitmaskPolicy` built from a
  :class:`VirtineConfig` bitmask

plus :class:`OneShotPolicy`, the co-designed restriction used by the JS
engine of Section 6.5 ("snapshot and get_data cannot be called more than
once").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.wasp.hypercall import Hypercall


class Policy:
    """Base policy: decides whether a hypercall number is permitted."""

    def allows(self, nr: Hypercall) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-invocation state (called when a virtine is launched)."""


class DefaultDenyPolicy(Policy):
    """Deny everything except exiting the virtual context.

    "By default, Wasp provides no externally observable behavior through
    hypercalls other than the ability to exit" (Section 5.1).
    """

    def allows(self, nr: Hypercall) -> bool:
        return nr is Hypercall.EXIT


class PermissivePolicy(Policy):
    """Allow every hypercall (the ``virtine_permissive`` keyword)."""

    def allows(self, nr: Hypercall) -> bool:
        return True


@dataclass(frozen=True)
class VirtineConfig:
    """The ``virtine_config(cfg)`` configuration structure.

    Carries "a bit mask of allowed hypercalls" (Section 5.3).  EXIT is
    always permitted regardless of the mask.
    """

    allowed_mask: int = 0

    @classmethod
    def allowing(cls, *nrs: Hypercall) -> "VirtineConfig":
        """Build a config permitting exactly ``nrs`` (plus EXIT)."""
        mask = 0
        for nr in nrs:
            mask |= nr.bit
        return cls(allowed_mask=mask)

    def allows(self, nr: Hypercall) -> bool:
        return nr is Hypercall.EXIT or bool(self.allowed_mask & nr.bit)


class BitmaskPolicy(Policy):
    """Policy driven by a :class:`VirtineConfig` bitmask."""

    def __init__(self, config: VirtineConfig) -> None:
        self.config = config

    def allows(self, nr: Hypercall) -> bool:
        return self.config.allows(nr)


class OneShotPolicy(Policy):
    """Wraps a policy, additionally limiting some hypercalls to one use.

    This implements the attack-surface narrowing of Section 6.5: once
    ``snapshot()`` and ``get_data()`` have each been used, "the only
    permitted hypercall would terminate the virtine."  The per-invocation
    use counts are cleared by :meth:`reset` at launch.
    """

    def __init__(self, inner: Policy, once: Iterable[Hypercall]) -> None:
        self.inner = inner
        self.once = frozenset(once)
        self._used: set[Hypercall] = set()

    def allows(self, nr: Hypercall) -> bool:
        if not self.inner.allows(nr):
            return False
        if nr in self.once:
            if nr in self._used:
                return False
            self._used.add(nr)
        return True

    def reset(self) -> None:
        self._used.clear()
        self.inner.reset()


class DynamicDisablePolicy(Policy):
    """A policy whose allowed set can be narrowed at runtime.

    Section 3.3 suggests "a mechanism that disables certain hypercalls
    dynamically when they are not needed by the runtime, further
    restricting the attack surface."  Disabled numbers stay disabled
    until re-enabled by the client; :meth:`reset` does not restore them
    (the narrowing is the client's deliberate choice, not per-invocation
    state).
    """

    def __init__(self, inner: Policy) -> None:
        self.inner = inner
        self._disabled: set[Hypercall] = set()

    def disable(self, nr: Hypercall) -> None:
        self._disabled.add(nr)

    def enable(self, nr: Hypercall) -> None:
        self._disabled.discard(nr)

    def allows(self, nr: Hypercall) -> bool:
        if nr in self._disabled:
            return False
        return self.inner.allows(nr)

    def reset(self) -> None:
        self.inner.reset()
