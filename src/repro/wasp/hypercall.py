"""The hypercall ABI.

Hypercalls in Wasp "are not meant to emulate low-level virtual devices,
but are instead designed to provide high-level hypervisor services with
as few exits as possible" (Section 5.1): each one mirrors a POSIX call
(``read``, ``write``, ...) or a co-designed service (``snapshot``,
``get_data``, ``return_data`` for the JS engine of Section 6.5).

Delegation happens over virtual I/O ports: assembly guests execute
``out HCALL_PORT, nr``; hosted guests call
:meth:`repro.wasp.guestenv.GuestEnv.hypercall`, which charges the same
world-switch and ring-transition costs before dispatching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

#: The I/O port on which guests issue hypercalls.
HCALL_PORT = 0x200


class Hypercall(enum.IntEnum):
    """Hypercall numbers (the bit positions used by policy bitmasks)."""

    EXIT = 0
    READ = 1
    WRITE = 2
    OPEN = 3
    CLOSE = 4
    STAT = 5
    SEND = 6
    RECV = 7
    SNAPSHOT = 8
    GET_DATA = 9
    RETURN_DATA = 10
    #: Multiplexed IDL-defined service calls (see :mod:`repro.lang.idl`).
    INVOKE = 11

    @property
    def bit(self) -> int:
        """The policy-bitmask bit for this hypercall."""
        return 1 << int(self)


class HypercallDenied(Exception):
    """The virtine client's policy rejected a hypercall."""

    def __init__(self, nr: Hypercall) -> None:
        super().__init__(f"hypercall {nr.name} denied by policy")
        self.nr = nr


class HypercallError(Exception):
    """A handler rejected the hypercall's arguments (validation failure)."""

    def __init__(self, nr: Hypercall, errno_name: str, message: str) -> None:
        super().__init__(f"{nr.name}: {errno_name}: {message}")
        self.nr = nr
        self.errno_name = errno_name


@dataclass
class HypercallRequest:
    """One hypercall as seen by policy checks and handlers."""

    nr: Hypercall
    args: tuple[Any, ...] = ()
    #: The issuing virtine (set by the hypervisor before dispatch).
    virtine: Any = None


@dataclass
class AuditRecord:
    """One entry in the client's hypercall audit log."""

    nr: Hypercall
    allowed: bool
    detail: str = ""


@dataclass
class AuditLog:
    """Chronological record of every hypercall a virtine attempted.

    The default-deny model means denials are expected events, not bugs;
    clients inspect this log to build or debug policies.
    """

    records: list[AuditRecord] = field(default_factory=list)

    def record(self, nr: Hypercall, allowed: bool, detail: str = "") -> None:
        self.records.append(AuditRecord(nr=nr, allowed=allowed, detail=detail))

    def count(self, nr: Hypercall | None = None, allowed: bool | None = None) -> int:
        """Count records, optionally filtered by number and/or outcome."""
        total = 0
        for record in self.records:
            if nr is not None and record.nr != nr:
                continue
            if allowed is not None and record.allowed != allowed:
                continue
            total += 1
        return total


# -- shared dispatch core ----------------------------------------------------
# Every isolation backend interposes on the same external channel with the
# same policy and audit semantics; only the boundary-crossing *costs* and the
# violation *consequences* differ per mechanism.  These two functions are
# that shared core, used by the KVM hypervisor (:class:`repro.wasp.
# hypervisor.Wasp`) and by every :class:`repro.host.backend.BackendHost`.

def policy_gate(virtine: Any, nr: Hypercall) -> None:
    """Consult the virtine's policy and audit the decision.

    Raises :class:`HypercallDenied` on rejection; what a denial *does*
    (catchable error vs. seccomp-style kill) is the caller's business.
    """
    allowed = virtine.policy.allows(nr)
    virtine.audit.record(nr, allowed)
    if not allowed:
        raise HypercallDenied(nr)


def dispatch_handler(virtine: Any, nr: Hypercall, args: tuple) -> Any:
    """Policy-gate a hypercall and run its installed handler."""
    policy_gate(virtine, nr)
    handler = virtine.handlers.get(nr)
    if handler is None:
        raise HypercallError(nr, "ENOSYS", "no handler installed")
    return handler(HypercallRequest(nr=nr, args=args, virtine=virtine))
