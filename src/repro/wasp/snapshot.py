"""Virtine snapshotting (Section 5.2).

"The first execution of a virtine must still go through the
initialization process ... The virtine then takes a snapshot of its
state, and continues executing.  Subsequent executions of the same
virtine can then begin execution at the snapshot point and skip the
initialization process."

A snapshot captures the virtine's dirty pages (page-granular, so the
restore cost scales with the *image working set* rather than the full
guest memory -- this is the memcpy cost that dominates Figure 12), the
architectural vCPU state, and -- for hosted runtimes -- an opaque payload
(e.g. an initialised JS engine context).

Security note from the paper: "by snapshotting a virtine's private
state, that state is exposed to all future virtines that are created
using that 'reset state'" -- which is why snapshots are keyed per image
and never shared across images.
"""

from __future__ import annotations

import copy
import enum
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE


class SnapshotGone(Exception):
    """The requested snapshot was garbage-collected underneath the reader.

    Raised by :class:`repro.store.cas.DurableSnapshotStore` when the
    collector wins the race between pool acquire and snapshot
    materialization.  The launch path converts it into a
    quarantine-and-cold-boot, never a crash.
    """

    def __init__(self, key: str, detail: str = "") -> None:
        message = f"snapshot {key!r} was garbage-collected"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.key = key


class RestoreMode(enum.Enum):
    """How a snapshot is installed into a shell.

    * ``EAGER`` -- memcpy every captured page up front (the paper's
      prototype; restore cost scales with image size, Figure 12).
    * ``COW``   -- map pages shared/read-only and copy each page on its
      first write (the SEUSS-style mechanism Section 7.2 anticipates;
      restore cost scales with the *written* working set).
    """

    EAGER = "eager"
    COW = "cow"


@dataclass
class Snapshot:
    """One captured "reset state" for a virtine image."""

    image_name: str
    #: Dirty page contents at capture time (page number -> 4 KB bytes).
    pages: dict[int, bytes]
    #: Architectural vCPU state (from :meth:`repro.hw.cpu.CPU.save_state`).
    cpu_state: dict
    #: Opaque hosted-runtime payload (deep-copied on capture and on every
    #: restore, so no state leaks *between* restored virtines).
    hosted_payload: Any = None
    #: Whether the snapshot was taken inside a hosted entry function.
    hosted: bool = False
    #: Integrity tag over the pages and vCPU state, computed at capture.
    #: A restore whose recomputed checksum mismatches falls back to a
    #: cold boot instead of installing rotted state.
    checksum: int = field(default=-1)

    def __post_init__(self) -> None:
        self._sorted_pages: tuple[int, ...] | None = None
        self._runs: tuple[tuple[int, bytes], ...] | None = None
        if self.checksum == -1:
            self.checksum = self.compute_checksum()

    @property
    def copy_size(self) -> int:
        """Bytes a restore must copy (what the restore memcpy is charged)."""
        return len(self.pages) * PAGE_SIZE

    def payload_copy(self) -> Any:
        """A private deep copy of the hosted payload for one restore."""
        if self.hosted_payload is None:
            return None
        return copy.deepcopy(self.hosted_payload)

    # -- cached page views ---------------------------------------------------
    def sorted_pages(self) -> tuple[int, ...]:
        """Captured page numbers in ascending order (cached; the page set
        is fixed at capture, only :meth:`corrupt` mutates contents)."""
        if self._sorted_pages is None:
            self._sorted_pages = tuple(sorted(self.pages))
        return self._sorted_pages

    def page_runs(self) -> tuple[tuple[int, bytes], ...]:
        """Contiguous ``(start_addr, contents)`` runs of the captured pages.

        Adjacent pages are pre-joined so a restore is one slice copy per
        run (see :meth:`repro.hw.memory.GuestMemory.restore_runs`).
        """
        if self._runs is None:
            runs: list[tuple[int, bytes]] = []
            chunk: list[bytes] = []
            run_start = prev = -2
            for page in self.sorted_pages():
                if page == prev + 1:
                    chunk.append(self.pages[page])
                else:
                    if chunk:
                        runs.append((run_start << PAGE_SHIFT, b"".join(chunk)))
                    run_start = page
                    chunk = [self.pages[page]]
                prev = page
            if chunk:
                runs.append((run_start << PAGE_SHIFT, b"".join(chunk)))
            self._runs = tuple(runs)
        return self._runs

    def _invalidate_caches(self) -> None:
        self._sorted_pages = None
        self._runs = None

    # -- integrity ----------------------------------------------------------
    def compute_checksum(self) -> int:
        """CRC over the captured pages and architectural vCPU state.

        The hosted payload is excluded: it is an opaque host object whose
        representation need not be stable, and it is deep-copied (never
        shared) on both capture and restore.
        """
        crc = 0
        pages = self.pages
        for page in self.sorted_pages():
            crc = zlib.crc32(pages[page], crc)
            crc = zlib.crc32(page.to_bytes(8, "little"), crc)
        crc = zlib.crc32(repr(sorted(self.cpu_state.items())).encode(), crc)
        return crc

    def verify(self) -> bool:
        """True if the stored checksum still matches the contents."""
        return self.compute_checksum() == self.checksum

    def corrupt(self) -> None:
        """Flip one stored bit (the fault-injection plane's bit rot)."""
        self._invalidate_caches()
        if self.pages:
            page = min(self.pages)
            data = bytearray(self.pages[page])
            if data:
                data[0] ^= 0x01
                self.pages[page] = bytes(data)
                return
        # No page bytes to rot: corrupt the tag itself (same detection
        # path -- the recomputed CRC no longer matches the stored one).
        self.checksum ^= 0x1


class SnapshotStore:
    """Per-image snapshot registry owned by a Wasp instance.

    The in-memory baseline.  :class:`repro.store.cas.DurableSnapshotStore`
    presents the same surface over a journaled content-addressed medium
    and can be swapped in via ``Wasp(snapshot_store=...)``.
    """

    backend = "memory"

    def __init__(self) -> None:
        self._snapshots: dict[str, Snapshot] = {}
        self.captures = 0
        self.restores = 0
        #: Restores that failed checksum verification (fell back cold).
        self.integrity_failures = 0

    def get(self, key: str) -> Snapshot | None:
        return self._snapshots.get(key)

    def put(self, key: str, snapshot: Snapshot) -> None:
        self._snapshots[key] = snapshot
        self.captures += 1

    def drop(self, key: str) -> None:
        self._snapshots.pop(key, None)

    def note_restore(self) -> None:
        self.restores += 1

    def __contains__(self, key: str) -> bool:
        return key in self._snapshots

    def counters(self) -> dict:
        """The store's metric surface (durable stores report more)."""
        return {
            "backend": self.backend,
            "snapshots": len(self._snapshots),
            "captures": self.captures,
            "restores": self.restores,
            "integrity_failures": self.integrity_failures,
        }
