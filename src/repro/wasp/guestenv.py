"""The hosted-guest execution environment.

Application-level virtines (the C-extension POSIX environment, the JS
engine, the HTTP handlers) run their bodies as Python callables standing
in for compiled guest code.  The callable receives a :class:`GuestEnv`,
its only window onto the world:

* :meth:`GuestEnv.hypercall` -- the *sole* external channel.  Charges the
  full world-switch + ring-transition round trip before dispatching
  through the client's policy and handlers, exactly like an ``out``-port
  hypercall from assembly code.
* :meth:`GuestEnv.charge` / :meth:`charge_call` / :meth:`charge_bytes` --
  the guest compute cost model (guest cycles are simulated cycles too).
* :meth:`GuestEnv.snapshot` -- capture the "reset state" (Section 5.2).
* :attr:`GuestEnv.restored` -- the snapshot payload when this invocation
  started from a snapshot (the init path should be skipped).
* :attr:`GuestEnv.persistent` -- state retained across invocations of a
  :class:`~repro.wasp.hypervisor.VirtineSession` ("no teardown").

The environment deliberately exposes no host objects: data passes only
through hypercalls, preserving the isolation objectives of Section 3.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.wasp.hypercall import Hypercall, HypercallDenied
from repro.wasp.virtine import Virtine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wasp.hypervisor import Wasp


class GuestExitRequested(Exception):
    """Raised inside a hosted entry when the guest calls ``exit()``."""

    def __init__(self, code: int) -> None:
        super().__init__(f"guest exit({code})")
        self.code = code


class GuestEnv:
    """A hosted guest's view of the machine."""

    def __init__(
        self,
        wasp: "Wasp",
        virtine: Virtine,
        args: Any = None,
        restored: Any = None,
        persistent: dict | None = None,
        from_snapshot: bool = False,
    ) -> None:
        self._wasp = wasp
        self._virtine = virtine
        self.args = args
        self.restored = restored
        #: True when this invocation started from a snapshot restore.
        #: Prefer this over ``restored is None`` -- a snapshot may carry a
        #: ``None`` payload.
        self.from_snapshot = from_snapshot
        self.persistent = persistent if persistent is not None else {}

    # -- compute cost model -----------------------------------------------------
    # Every charge is also a preemption point: launches carrying a cycle
    # deadline are killed here with a typed VirtineTimeout once the clock
    # passes it (hosted compute has no instruction stream to interrupt,
    # so the cost-model charges stand in for the timer tick).  Charges go
    # through Wasp.charge_guest, which *clamps* at the deadline: a charge
    # that would overrun only consumes the remaining budget before the
    # cancellation fires -- work is cut off mid-compute, not completed on
    # borrowed time and discarded.
    def charge(self, cycles: float) -> None:
        """Charge raw guest compute cycles."""
        self._wasp.charge_guest(self._virtine, cycles)

    def charge_call(self, count: int = 1) -> None:
        """Charge ``count`` guest function calls (GUEST_CALL each)."""
        self._wasp.charge_guest(self._virtine, self._wasp.costs.GUEST_CALL * count)

    def charge_bytes(self, nbytes: int) -> None:
        """Charge bulk data processing (GUEST_BYTE per byte)."""
        self._wasp.charge_guest(self._virtine, self._wasp.costs.GUEST_BYTE * nbytes)

    # -- guest memory -------------------------------------------------------------
    @property
    def memory(self):
        """The virtine's guest physical memory (its own address space)."""
        return self._virtine.shell.vm.memory

    # -- capabilities -------------------------------------------------------------
    @property
    def can_snapshot(self) -> bool:
        """Whether the isolation backend underneath supports snapshots.

        KVM virtines capture full reset states; in-process and container
        backends cannot, and guest bodies that would call
        :meth:`snapshot` should gate on this instead of crashing.
        """
        return bool(getattr(self._wasp, "snapshot_capable", True))

    # -- instrumentation ------------------------------------------------------------
    def milestone(self, marker: int) -> None:
        """Record a zero-cost guest timestamp (the debug-port analogue;
        used by the Figure 4 start-up milestone measurements)."""
        vm = self._virtine.shell.vm
        from repro.hw.vmx import Milestone

        vm.milestones.append(Milestone(marker=marker, cycles=self._wasp.clock.cycles))
        self._wasp.recorder.hosted_milestone(marker)
        # A milestone is observable progress: it heartbeats the watchdog
        # (long computes can stay alive by checkpointing).
        self._wasp._beat(self._virtine)

    # -- the external channel ---------------------------------------------------------
    def hypercall(self, nr: Hypercall, *args: Any) -> Any:
        """Issue a hypercall: exit the VM, dispatch, re-enter.

        Raises :class:`HypercallDenied` if the client's policy rejects it
        and :class:`~repro.wasp.hypercall.HypercallError` if the handler's
        validation does.
        """
        return self._wasp.dispatch_hosted_hypercall(self._virtine, nr, args)

    def snapshot(self, payload: Any = None) -> None:
        """Capture this virtine's state as the image's reset state.

        Subsequent launches of the same image skip boot and runtime
        initialisation, receiving ``payload`` back via :attr:`restored`.
        Goes through the SNAPSHOT hypercall (and is policy-checked like
        any other hypercall).
        """
        self._wasp.capture_snapshot(self._virtine, payload)

    def exit(self, code: int = 0) -> None:
        """Terminate the virtine (the always-permitted EXIT hypercall).

        Counts as a host interaction -- it is the 7th of the static HTTP
        server's seven hypercalls (Section 6.3) -- but only pays the exit
        half of the round trip (there is no re-entry).
        """
        self._wasp.clock.advance(self._wasp.exit_boundary_cycles())
        self._virtine.hypercall_count += 1
        self._virtine.audit.record(Hypercall.EXIT, allowed=True)
        self._virtine.exit_code = code
        self._wasp.recorder.hosted_exit(code)
        raise GuestExitRequested(code)
