"""Wasp observability: an aggregated view over the hypervisor's state.

Production runtimes (Firecracker et al.) export counters; Wasp's live
state is spread over the pool(s), snapshot store, and background
accountant.  :func:`collect` gathers one consistent sample, suitable for
dashboards, capacity planning (shell pools), and the tests' invariant
checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import cycles_to_us
from repro.wasp.hypervisor import Wasp


@dataclass(frozen=True)
class PoolMetrics:
    """One shell pool's counters."""

    memory_size: int
    free_shells: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class WaspMetrics:
    """A consistent sample of a Wasp instance's counters."""

    launches: int
    vms_created: int
    snapshot_captures: int
    snapshot_restores: int
    background_cycles: int
    background_operations: int
    host_syscalls: int
    clock_cycles: int
    pools: tuple[PoolMetrics, ...]

    @property
    def pool_hit_rate(self) -> float:
        hits = sum(p.hits for p in self.pools)
        misses = sum(p.misses for p in self.pools)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def restores_per_launch(self) -> float:
        return self.snapshot_restores / self.launches if self.launches else 0.0

    def summary(self) -> str:
        """A human-readable one-screen report."""
        lines = [
            f"launches={self.launches}  vms_created={self.vms_created}  "
            f"pool_hit_rate={self.pool_hit_rate:.0%}",
            f"snapshots: captures={self.snapshot_captures} "
            f"restores={self.snapshot_restores}",
            f"background cleaning: {self.background_operations} ops, "
            f"{cycles_to_us(self.background_cycles):,.0f} us off the critical path",
            f"host syscalls={self.host_syscalls}  "
            f"clock={cycles_to_us(self.clock_cycles):,.0f} us",
        ]
        for pool in self.pools:
            lines.append(
                f"  pool[{pool.memory_size >> 20} MB]: free={pool.free_shells} "
                f"hits={pool.hits} misses={pool.misses} ({pool.hit_rate:.0%})"
            )
        return "\n".join(lines)


def collect(wasp: Wasp) -> WaspMetrics:
    """Sample every counter of ``wasp`` at this instant."""
    pools = tuple(
        PoolMetrics(
            memory_size=size,
            free_shells=pool.free_count,
            hits=pool.hits,
            misses=pool.misses,
        )
        for size, pool in sorted(wasp._pools.items())
    )
    return WaspMetrics(
        launches=wasp.launches,
        vms_created=wasp.kvm.vms_created,
        snapshot_captures=wasp.snapshots.captures,
        snapshot_restores=wasp.snapshots.restores,
        background_cycles=wasp.background.cycles,
        background_operations=wasp.background.operations,
        host_syscalls=wasp.kernel.syscall_count,
        clock_cycles=wasp.clock.cycles,
        pools=pools,
    )
