"""Wasp observability: an aggregated view over the hypervisor's state.

Production runtimes (Firecracker et al.) export counters; Wasp's live
state is spread over the pool(s), snapshot store, and background
accountant.  :func:`collect` gathers one consistent sample, suitable for
dashboards, capacity planning (shell pools), and the tests' invariant
checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import cycles_to_us
from repro.wasp.hypervisor import Wasp


@dataclass(frozen=True)
class PoolMetrics:
    """One shell pool's counters."""

    memory_size: int
    free_shells: int
    hits: int
    misses: int
    #: Shells quarantined after hosting a crash.
    quarantines: int = 0
    #: Cached shells found defective on acquire and rebuilt.
    defects: int = 0
    #: Shells quarantined because their snapshot vanished (GC race)
    #: between acquire and restore.
    restore_defects: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class WaspMetrics:
    """A consistent sample of a Wasp instance's counters."""

    launches: int
    vms_created: int
    snapshot_captures: int
    snapshot_restores: int
    background_cycles: int
    background_operations: int
    host_syscalls: int
    clock_cycles: int
    pools: tuple[PoolMetrics, ...]
    # -- supervision plane (all zero when no faults and no supervisor) ----
    #: Launches killed for exceeding a deadline or step budget.
    timeouts: int = 0
    #: Snapshot restores that failed verification and fell back cold.
    snapshot_fallbacks: int = 0
    #: Snapshot integrity failures recorded by the store.
    snapshot_integrity_failures: int = 0
    #: Shells quarantined across all pools.
    quarantined_shells: int = 0
    #: Defective cached shells discarded across all pools.
    pool_defects: int = 0
    #: Supervisor retries performed.
    retries: int = 0
    #: Launches rejected by an open circuit breaker.
    breaker_rejections: int = 0
    #: Crash counts keyed by :class:`~repro.wasp.supervisor.CrashClass`
    #: value ("guest_fault", "host_fault", "policy_kill", "timeout").
    crashes_by_class: dict = field(default_factory=dict)
    #: Image name -> breaker state value ("closed"/"open"/"half_open").
    breaker_states: dict = field(default_factory=dict)
    # -- overload plane (all zero without an admission controller) --------
    #: VM fds released back to the device (created - closed = live).
    vms_closed: int = 0
    #: Requests the admission gate let through.
    admission_admitted: int = 0
    #: Requests shed before any work ran, keyed by decision value.
    admission_shed: dict = field(default_factory=dict)
    #: Admitted requests cancelled at their deadline.
    admission_timeouts: int = 0
    #: Deepest the bounded admission queue ever got.
    admission_queue_high_water: int = 0
    #: Watchdog kills keyed by hang kind ("no_progress"/"slow_progress").
    hangs_by_kind: dict = field(default_factory=dict)
    # -- snapshot-store plane ---------------------------------------------
    #: The snapshot store's own counter surface (backend, dedup ratio,
    #: GC/scrub/journal counters for a durable store).
    store: dict = field(default_factory=dict)

    @property
    def pool_hit_rate(self) -> float:
        hits = sum(p.hits for p in self.pools)
        misses = sum(p.misses for p in self.pools)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def restores_per_launch(self) -> float:
        return self.snapshot_restores / self.launches if self.launches else 0.0

    def to_dict(self) -> dict:
        """A JSON-ready view of the sample (``repro metrics --json``).

        Nested dicts are key-sorted and pools are emitted in bucket-size
        order, so two samples of identical state serialize identically --
        stable under diff, like every other exported artifact.
        """
        return {
            "launches": self.launches,
            "vms_created": self.vms_created,
            "vms_closed": self.vms_closed,
            "snapshot_captures": self.snapshot_captures,
            "snapshot_restores": self.snapshot_restores,
            "restores_per_launch": self.restores_per_launch,
            "background_cycles": self.background_cycles,
            "background_operations": self.background_operations,
            "host_syscalls": self.host_syscalls,
            "clock_cycles": self.clock_cycles,
            "pool_hit_rate": self.pool_hit_rate,
            "pools": [
                {
                    "memory_size": pool.memory_size,
                    "free_shells": pool.free_shells,
                    "hits": pool.hits,
                    "misses": pool.misses,
                    "hit_rate": pool.hit_rate,
                    "quarantines": pool.quarantines,
                    "defects": pool.defects,
                    "restore_defects": pool.restore_defects,
                }
                for pool in self.pools
            ],
            "store": dict(sorted(self.store.items())),
            "timeouts": self.timeouts,
            "snapshot_fallbacks": self.snapshot_fallbacks,
            "snapshot_integrity_failures": self.snapshot_integrity_failures,
            "quarantined_shells": self.quarantined_shells,
            "pool_defects": self.pool_defects,
            "retries": self.retries,
            "breaker_rejections": self.breaker_rejections,
            "crashes_by_class": dict(sorted(self.crashes_by_class.items())),
            "breaker_states": dict(sorted(self.breaker_states.items())),
            "admission_admitted": self.admission_admitted,
            "admission_shed": dict(sorted(self.admission_shed.items())),
            "admission_timeouts": self.admission_timeouts,
            "admission_queue_high_water": self.admission_queue_high_water,
            "hangs_by_kind": dict(sorted(self.hangs_by_kind.items())),
        }

    def summary(self) -> str:
        """A human-readable one-screen report."""
        lines = [
            f"launches={self.launches}  vms_created={self.vms_created}  "
            f"pool_hit_rate={self.pool_hit_rate:.0%}",
            f"snapshots: captures={self.snapshot_captures} "
            f"restores={self.snapshot_restores}",
            f"background cleaning: {self.background_operations} ops, "
            f"{cycles_to_us(self.background_cycles):,.0f} us off the critical path",
            f"host syscalls={self.host_syscalls}  "
            f"clock={cycles_to_us(self.clock_cycles):,.0f} us",
        ]
        if self.store.get("backend") == "durable":
            lines.append(
                f"store: chunks={self.store.get('chunks', 0)} "
                f"dedup_ratio={self.store.get('dedup_ratio', 1.0):.2f} "
                f"gc_reclaimed={self.store.get('gc_reclaimed_chunks', 0)} "
                f"scrubs={self.store.get('scrub_passes', 0)}"
                f"/{self.store.get('scrub_repairs', 0)} repairs "
                f"journal={self.store.get('journal_records', 0)} records"
                f"/{self.store.get('journal_replays', 0)} replays"
            )
        crashes = sum(self.crashes_by_class.values())
        if crashes or self.retries or self.breaker_rejections or self.timeouts:
            by_class = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.crashes_by_class.items())
                if count
            ) or "none"
            lines.append(
                f"supervision: crashes={crashes} ({by_class}) "
                f"retries={self.retries} timeouts={self.timeouts} "
                f"breaker_rejections={self.breaker_rejections}"
            )
            lines.append(
                f"  quarantined_shells={self.quarantined_shells} "
                f"pool_defects={self.pool_defects} "
                f"snapshot_fallbacks={self.snapshot_fallbacks}"
            )
            if self.breaker_states:
                states = " ".join(
                    f"{image}={state}"
                    for image, state in self.breaker_states.items()
                )
                lines.append(f"  breakers: {states}")
        shed_total = sum(self.admission_shed.values())
        hangs_total = sum(self.hangs_by_kind.values())
        if self.admission_admitted or shed_total or hangs_total:
            by_reason = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.admission_shed.items())
                if count
            ) or "none"
            lines.append(
                f"admission: admitted={self.admission_admitted} "
                f"shed={shed_total} ({by_reason}) "
                f"timeouts={self.admission_timeouts} "
                f"queue_high_water={self.admission_queue_high_water}"
            )
            if hangs_total:
                by_kind = " ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.hangs_by_kind.items())
                    if count
                )
                lines.append(f"  watchdog kills: {by_kind}")
        for pool in self.pools:
            lines.append(
                f"  pool[{pool.memory_size >> 20} MB]: free={pool.free_shells} "
                f"hits={pool.hits} misses={pool.misses} ({pool.hit_rate:.0%})"
            )
        return "\n".join(lines)


#: Breaker-state merge order: the aggregate reports the most degraded
#: state any core observed for an image.
_BREAKER_SEVERITY = {"closed": 0, "half_open": 1, "open": 2}


def _merge_counts(dicts: list[dict]) -> dict:
    out: dict = {}
    for d in dicts:
        for key, count in d.items():
            out[key] = out.get(key, 0) + count
    return out


def _merge_stores(stores: list[dict]) -> dict:
    """Merge per-core store counter surfaces.

    Under ``cores=N`` every engine usually shares one snapshot store, so
    the samples are identical -- detect that and pass one through
    verbatim.  Genuinely distinct stores get integer counters summed,
    float rates averaged, and a ``backend`` of ``mixed`` when they
    disagree.
    """
    stores = [s for s in stores if s]
    if not stores:
        return {}
    if all(s == stores[0] for s in stores[1:]):
        return dict(stores[0])
    merged: dict = {}
    backends = {s.get("backend") for s in stores if "backend" in s}
    if backends:
        merged["backend"] = (backends.pop() if len(backends) == 1
                             else "mixed")
    keys = sorted({k for s in stores for k in s} - {"backend"})
    for key in keys:
        values = [s[key] for s in stores if key in s]
        if all(isinstance(v, bool) for v in values):
            merged[key] = any(values)
        elif any(isinstance(v, float) for v in values):
            merged[key] = sum(values) / len(values)
        elif all(isinstance(v, int) for v in values):
            merged[key] = sum(values)
        else:
            merged[key] = values[0]
    return merged


def aggregate(samples: list[WaspMetrics]) -> WaspMetrics:
    """Merge per-core samples into one cluster-wide :class:`WaspMetrics`.

    Throughput counters sum; ``clock_cycles`` is the makespan (max over
    cores -- the cores run in lockstep, so summing would overstate time
    by ``cores``x); ``admission_queue_high_water`` is the deepest any
    core's queue got; breaker states report the most degraded state any
    core observed; pools merge by memory bucket; keyed crash/shed/hang
    maps merge per key (the PR-3 ``hangs_by_kind`` merge semantics
    applied across cores).
    """
    if not samples:
        raise ValueError("aggregate() needs at least one sample")
    if len(samples) == 1:
        return samples[0]
    by_bucket: dict[int, list[PoolMetrics]] = {}
    for sample in samples:
        for pool in sample.pools:
            by_bucket.setdefault(pool.memory_size, []).append(pool)
    pools = tuple(
        PoolMetrics(
            memory_size=size,
            free_shells=sum(p.free_shells for p in group),
            hits=sum(p.hits for p in group),
            misses=sum(p.misses for p in group),
            quarantines=sum(p.quarantines for p in group),
            defects=sum(p.defects for p in group),
            restore_defects=sum(p.restore_defects for p in group),
        )
        for size, group in sorted(by_bucket.items())
    )
    breaker_states: dict[str, str] = {}
    for sample in samples:
        for image, state in sample.breaker_states.items():
            seen = breaker_states.get(image)
            if seen is None or (_BREAKER_SEVERITY.get(state, 0)
                                > _BREAKER_SEVERITY.get(seen, 0)):
                breaker_states[image] = state
    return WaspMetrics(
        launches=sum(s.launches for s in samples),
        vms_created=sum(s.vms_created for s in samples),
        snapshot_captures=sum(s.snapshot_captures for s in samples),
        snapshot_restores=sum(s.snapshot_restores for s in samples),
        background_cycles=sum(s.background_cycles for s in samples),
        background_operations=sum(s.background_operations for s in samples),
        host_syscalls=sum(s.host_syscalls for s in samples),
        clock_cycles=max(s.clock_cycles for s in samples),
        pools=pools,
        timeouts=sum(s.timeouts for s in samples),
        snapshot_fallbacks=sum(s.snapshot_fallbacks for s in samples),
        snapshot_integrity_failures=sum(
            s.snapshot_integrity_failures for s in samples),
        quarantined_shells=sum(p.quarantines for p in pools),
        pool_defects=sum(p.defects for p in pools),
        retries=sum(s.retries for s in samples),
        breaker_rejections=sum(s.breaker_rejections for s in samples),
        crashes_by_class=_merge_counts(
            [s.crashes_by_class for s in samples]),
        breaker_states=breaker_states,
        vms_closed=sum(s.vms_closed for s in samples),
        admission_admitted=sum(s.admission_admitted for s in samples),
        admission_shed=_merge_counts([s.admission_shed for s in samples]),
        admission_timeouts=sum(s.admission_timeouts for s in samples),
        admission_queue_high_water=max(
            s.admission_queue_high_water for s in samples),
        hangs_by_kind=_merge_counts([s.hangs_by_kind for s in samples]),
        store=_merge_stores([s.store for s in samples]),
    )


def collect(wasp: Wasp) -> WaspMetrics:
    """Sample every counter of ``wasp`` at this instant."""
    pools = tuple(
        PoolMetrics(
            memory_size=size,
            free_shells=pool.free_count,
            hits=pool.hits,
            misses=pool.misses,
            quarantines=pool.quarantines,
            defects=pool.defects,
            restore_defects=pool.restore_defects,
        )
        for size, pool in sorted(wasp._pools.items())
    )
    supervisor = getattr(wasp, "supervisor", None)
    crashes_by_class: dict[str, int] = {}
    breaker_states: dict[str, str] = {}
    retries = breaker_rejections = 0
    hangs_by_kind: dict[str, int] = {}
    admission = None
    if supervisor is not None:
        crashes_by_class = {
            crash_class.value: count
            for crash_class, count in supervisor.crashes_by_class.items()
        }
        breaker_states = supervisor.breaker_states()
        retries = supervisor.retries
        breaker_rejections = supervisor.breaker_rejections
        hangs_by_kind = {
            kind.value: count
            for kind, count in supervisor.hangs_by_kind.items()
        }
        admission = supervisor.admission
    watchdog = getattr(wasp, "watchdog", None)
    if watchdog is not None:
        # Merge, don't overwrite: the watchdog's kill counters are
        # authoritative *per kind* (they fire even on unsupervised
        # launches), but its map carries zero entries for every kind, so
        # replacing the supervisor's view wholesale would erase hangs the
        # supervisor observed for kinds the watchdog never killed.
        for kind, count in watchdog.kills_by_kind.items():
            if count:
                hangs_by_kind[kind.value] = count
    admission_admitted = admission_timeouts = admission_queue_high_water = 0
    admission_shed: dict[str, int] = {}
    if admission is not None:
        admission_admitted = admission.admitted
        admission_timeouts = admission.timeouts
        admission_queue_high_water = admission.queue_depth_high_water
        admission_shed = dict(admission.shed_by_reason)
    return WaspMetrics(
        launches=wasp.launches,
        vms_created=wasp.kvm.vms_created,
        snapshot_captures=wasp.snapshots.captures,
        snapshot_restores=wasp.snapshots.restores,
        background_cycles=wasp.background.cycles,
        background_operations=wasp.background.operations,
        host_syscalls=wasp.kernel.syscall_count,
        clock_cycles=wasp.clock.cycles,
        pools=pools,
        timeouts=wasp.timeouts,
        snapshot_fallbacks=wasp.snapshot_fallbacks,
        snapshot_integrity_failures=wasp.snapshots.integrity_failures,
        quarantined_shells=sum(p.quarantines for p in pools),
        pool_defects=sum(p.defects for p in pools),
        retries=retries,
        breaker_rejections=breaker_rejections,
        crashes_by_class=crashes_by_class,
        breaker_states=breaker_states,
        vms_closed=wasp.kvm.vms_closed,
        admission_admitted=admission_admitted,
        admission_shed=admission_shed,
        admission_timeouts=admission_timeouts,
        admission_queue_high_water=admission_queue_high_water,
        hangs_by_kind=hangs_by_kind,
        store=wasp.snapshots.counters(),
    )
