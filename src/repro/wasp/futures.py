"""Asynchronous virtines: the futures model of Section 2.

"virtines could, given support in the hypervisor, behave like
asynchronous functions or futures" (the paper's footnote points at
Gotee's goroutines).  This module adds that hypervisor support: a
:class:`VirtineExecutor` schedules launches across a fixed number of
host cores, and callers hold :class:`VirtineFuture` handles.

Timing model: the simulation's global clock is single-threaded, so the
executor separately tracks per-core availability in simulated time.  A
job's *latency* is ``completion - submission`` under that core model
(queueing included), while the work itself still executes through the
full Wasp stack -- results, isolation, policies, and crashes are all
real.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.image import VirtineImage
from repro.wasp.hypervisor import Wasp
from repro.wasp.virtine import VirtineCrash, VirtineResult


class FutureState(enum.Enum):
    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"


class VirtineFuture:
    """A handle on an asynchronously launched virtine."""

    def __init__(self, executor: "VirtineExecutor", index: int) -> None:
        self._executor = executor
        self._index = index
        self.state = FutureState.PENDING
        self._result: VirtineResult | None = None
        self._error: BaseException | None = None
        #: Simulated timestamps under the executor's core model.
        self.submitted_at: int = 0
        self.started_at: int = 0
        self.completed_at: int = 0

    # -- completion plumbing (called by the executor) ---------------------------
    def _complete(self, result: VirtineResult) -> None:
        self._result = result
        self.state = FutureState.DONE

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.state = FutureState.FAILED

    # -- caller API ----------------------------------------------------------------
    def done(self) -> bool:
        return self.state is not FutureState.PENDING

    def result(self) -> VirtineResult:
        """The launch's result; drains the executor if still pending.

        Re-raises the virtine's crash if the guest failed -- an async
        fault surfaces exactly where the caller synchronises, like any
        future.
        """
        if self.state is FutureState.PENDING:
            self._executor.drain()
        if self.state is FutureState.FAILED:
            assert self._error is not None
            raise self._error
        assert self._result is not None
        return self._result

    def value(self) -> Any:
        """Shorthand for ``result().value``."""
        return self.result().value

    @property
    def latency_cycles(self) -> int:
        """Submission-to-completion latency (queueing included)."""
        if not self.done():
            raise RuntimeError("future not complete; call result() first")
        return self.completed_at - self.submitted_at


@dataclass
class _Job:
    future: VirtineFuture
    image: VirtineImage
    kwargs: dict


class VirtineExecutor:
    """Schedules asynchronous virtine launches over ``cores`` cores."""

    def __init__(self, wasp: Wasp | None = None, cores: int = 4) -> None:
        if cores <= 0:
            raise ValueError("executor needs at least one core")
        self.wasp = wasp if wasp is not None else Wasp()
        self.cores = cores
        self._core_free = [0] * cores
        self._queue: list[_Job] = []
        self._submitted = 0
        self.completed = 0

    def submit(self, image: VirtineImage, **launch_kwargs: Any) -> VirtineFuture:
        """Queue one virtine launch; returns its future immediately."""
        future = VirtineFuture(self, self._submitted)
        future.submitted_at = self.wasp.clock.cycles
        self._submitted += 1
        self._queue.append(_Job(future=future, image=image, kwargs=launch_kwargs))
        return future

    def drain(self) -> None:
        """Run every queued launch to completion."""
        queue, self._queue = self._queue, []
        for job in queue:
            core = min(range(self.cores), key=self._core_free.__getitem__)
            start = max(job.future.submitted_at, self._core_free[core])
            job.future.started_at = start
            before = self.wasp.clock.cycles
            try:
                result = self.wasp.launch(job.image, **job.kwargs)
            except VirtineCrash as crash:
                elapsed = self.wasp.clock.cycles - before
                job.future.completed_at = start + elapsed
                self._core_free[core] = job.future.completed_at
                job.future._fail(crash)
                self.completed += 1
                continue
            elapsed = self.wasp.clock.cycles - before
            job.future.completed_at = start + elapsed
            self._core_free[core] = job.future.completed_at
            job.future._complete(result)
            self.completed += 1

    def map(self, image: VirtineImage, args_list: list, **kwargs: Any) -> list[VirtineFuture]:
        """Submit one launch per argument (a parallel map)."""
        return [self.submit(image, args=args, **kwargs) for args in args_list]

    def gather(self, futures: list[VirtineFuture]) -> list[Any]:
        """Wait for all futures and return their values (in order)."""
        return [future.value() for future in futures]

    @property
    def makespan_cycles(self) -> int:
        """When the last core goes idle (the parallel completion time)."""
        return max(self._core_free)

    @property
    def pending(self) -> int:
        return len(self._queue)
