"""The overload-protection plane: admission control, deadlines, watchdog.

PR 1 built the *failure* plane (what to do after a virtine dies); this
module is the *overload* plane -- what to do so the system never gets
into a state where everything dies at once.  The paper's pitch is that
virtines make isolation cheap enough for per-request use at serverless
scale (Section 7, Figure 15); at that scale nothing survives unbounded
admission, so four mechanisms compose here:

* **Bounded admission queues** (:class:`BoundedQueue`) with configurable
  load-shedding policies -- reject-newest, reject-oldest, or
  priority-by-image -- so a burst raises the shed rate, not the queue
  depth.
* **Token-bucket rate limiting** (:class:`TokenBucket`) per image, so
  one hot function cannot starve the rest.
* **End-to-end deadlines** (:class:`Deadline`): an absolute expiry on
  the simulated clock, carried from the platform/client entry point
  through ``Wasp.launch`` into the vCPU run loop and the hosted compute
  charges, where work is *cancelled* at the deadline rather than
  completed and discarded.
* **A watchdog** (:class:`Watchdog`) that heartbeats running virtines
  (hypercalls and milestones are the beats) and kills hangs, classified
  as *no-progress* (silent past the threshold) or *slow-progress*
  (beating but hopeless) into the PR-1 crash taxonomy via
  :class:`~repro.wasp.virtine.VirtineHang` -- a
  :class:`~repro.wasp.virtine.VirtineTimeout` subclass, so the
  supervisor's retry/breaker machinery handles hangs like any other
  timeout.

Every decision the plane makes is appended to an :class:`AdmissionTrace`
whose :meth:`~AdmissionTrace.signature` is a pure function of the seed
and workload (IRIS-style record-and-replay: ``python -m repro
admission-replay`` asserts two seeded runs produce identical shed and
timeout sequences).  All units are "whatever clock the caller lives on":
the serverless queueing model passes seconds, the Wasp layer passes
simulated cycles.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.telemetry.registry import NO_TELEMETRY
from repro.units import us_to_cycles
from repro.wasp.virtine import HangKind, Virtine, VirtineHang

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wasp.hypervisor import Wasp


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the caller's clock (cycles or seconds).

    Request-scoped: minted once where the request enters the system and
    threaded through every layer that works on its behalf, so the whole
    pipeline agrees on when the budget is gone.
    """

    expires_at: float

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        """A deadline ``budget`` time units from ``now``."""
        if budget < 0:
            raise ValueError(f"deadline budget cannot be negative: {budget}")
        return cls(expires_at=now + budget)

    def remaining(self, now: float) -> float:
        """Budget left at ``now`` (0 when expired)."""
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        """Strictly past the expiry (matches ``Wasp.check_deadline``)."""
        return now > self.expires_at


# ---------------------------------------------------------------------------
# Token buckets
# ---------------------------------------------------------------------------

class TokenBucket:
    """A deterministic token bucket refilled from the caller's clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate < 0:
            raise ValueError(f"refill rate cannot be negative: {rate}")
        if burst <= 0:
            raise ValueError(f"burst capacity must be positive: {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last_refill: float | None = None

    def _refill(self, now: float) -> None:
        if self._last_refill is not None and now > self._last_refill:
            self.tokens = min(self.burst, self.tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now if self._last_refill is None else max(self._last_refill, now)

    def take(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available at ``now``."""
        self._refill(now)
        if self.tokens + 1e-12 >= cost:
            self.tokens = max(0.0, self.tokens - cost)
            return True
        return False

    def drain(self, now: float, cost: float) -> None:
        """Forcibly remove tokens (burst-arrival fault amplification)."""
        self._refill(now)
        self.tokens = max(0.0, self.tokens - cost)

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Time units until ``cost`` tokens will be available (0 if now)."""
        self._refill(now)
        deficit = cost - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return math.inf
        return deficit / self.rate


# ---------------------------------------------------------------------------
# Queue + shedding policy
# ---------------------------------------------------------------------------

class ShedPolicy(enum.Enum):
    """Which request a full admission queue sacrifices."""

    REJECT_NEWEST = "reject_newest"
    REJECT_OLDEST = "reject_oldest"
    PRIORITY = "priority"


class BrownoutLevel(enum.Enum):
    """Graduated overload posture, derived from queue/shed pressure."""

    NORMAL = "normal"
    #: Optional work should be refused (HTTP 429 with Retry-After).
    BROWNOUT = "brownout"
    #: Only already-admitted work proceeds (HTTP 503 / fail-over).
    DEGRADED = "degraded"


class AdmissionDecision(enum.Enum):
    """What the overload plane did with one request."""

    ADMIT = "admit"
    SHED_RATE_LIMIT = "shed_rate_limit"
    SHED_QUEUE_FULL = "shed_queue_full"
    #: Dead on arrival: the request's deadline had already expired.
    SHED_DEADLINE = "shed_deadline"
    #: Evicted from the queue to make room (reject-oldest / priority).
    EVICTED = "evicted"
    #: Expired while waiting in the queue.
    EXPIRED_IN_QUEUE = "expired_in_queue"
    #: Admitted but cancelled at its deadline before completing.
    TIMEOUT = "timeout"


#: Decisions that count as load shedding (no work was attempted).
SHED_DECISIONS = frozenset({
    AdmissionDecision.SHED_RATE_LIMIT,
    AdmissionDecision.SHED_QUEUE_FULL,
    AdmissionDecision.SHED_DEADLINE,
    AdmissionDecision.EVICTED,
    AdmissionDecision.EXPIRED_IN_QUEUE,
})


@dataclass(frozen=True)
class AdmissionEvent:
    """One entry in the admission trace."""

    seq: int
    request_id: int
    image: str
    decision: AdmissionDecision
    #: Queue depth observed when the decision was made.
    queue_depth: int
    #: Caller-clock reading (cycles or seconds) of the decision.
    now: float


class AdmissionTrace:
    """The chronological, replayable record of every decision."""

    def __init__(self) -> None:
        self.events: list[AdmissionEvent] = []

    def append(self, request_id: int, image: str, decision: AdmissionDecision,
               queue_depth: int, now: float) -> None:
        self.events.append(AdmissionEvent(
            seq=len(self.events), request_id=request_id, image=image,
            decision=decision, queue_depth=queue_depth, now=now,
        ))

    def __len__(self) -> int:
        return len(self.events)

    def signature(self) -> tuple[tuple[int, str, str], ...]:
        """The trace minus clock readings -- the replay-equality check."""
        return tuple((e.request_id, e.image, e.decision.value) for e in self.events)

    def to_json(self) -> str:
        """Serialise for on-disk record/replay comparison."""
        return json.dumps([
            {"seq": e.seq, "request_id": e.request_id, "image": e.image,
             "decision": e.decision.value, "queue_depth": e.queue_depth,
             "now": e.now}
            for e in self.events
        ])

    @classmethod
    def from_json(cls, raw: str) -> "AdmissionTrace":
        trace = cls()
        for row in json.loads(raw):
            trace.events.append(AdmissionEvent(
                seq=row["seq"], request_id=row["request_id"], image=row["image"],
                decision=AdmissionDecision(row["decision"]),
                queue_depth=row["queue_depth"], now=row["now"],
            ))
        return trace


@dataclass
class QueuedRequest:
    """An admitted-but-waiting request parked in the bounded queue."""

    request_id: int
    image: str
    priority: int
    deadline: Deadline | None
    enqueued_at: float


class BoundedQueue:
    """A bounded admission queue with a configurable shed policy.

    ``offer`` never grows the queue past ``max_depth``: when full, the
    policy decides whether the newcomer or an incumbent is sacrificed.
    """

    def __init__(self, max_depth: int, policy: ShedPolicy = ShedPolicy.REJECT_NEWEST) -> None:
        if max_depth < 0:
            raise ValueError(f"queue depth cannot be negative: {max_depth}")
        self.max_depth = max_depth
        self.policy = policy
        self._items: list[QueuedRequest] = []
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, entry: QueuedRequest) -> tuple[bool, list[QueuedRequest]]:
        """Try to park ``entry``; returns (accepted, evicted victims)."""
        if len(self._items) < self.max_depth:
            self._items.append(entry)
            self.high_water = max(self.high_water, len(self._items))
            return True, []
        if self.policy is ShedPolicy.REJECT_NEWEST or self.max_depth == 0:
            return False, []
        if self.policy is ShedPolicy.REJECT_OLDEST:
            victim = self._items.pop(0)
            self._items.append(entry)
            return True, [victim]
        # PRIORITY: evict the lowest-priority incumbent, but only when
        # the newcomer outranks it -- ties favour the incumbent (FIFO).
        lowest = min(self._items, key=lambda item: item.priority)
        if entry.priority > lowest.priority:
            self._items.remove(lowest)
            self._items.append(entry)
            return True, [lowest]
        return False, []

    def pop(self, now: float) -> tuple[QueuedRequest | None, list[QueuedRequest]]:
        """Dequeue the next serviceable request at ``now``.

        Entries whose deadline already expired are dropped (returned as
        the second element) rather than served -- their work would be
        discarded anyway, so it is never started.
        """
        expired: list[QueuedRequest] = []
        while self._items:
            if self.policy is ShedPolicy.PRIORITY:
                entry = max(self._items, key=lambda item: (item.priority, -item.enqueued_at))
                self._items.remove(entry)
            else:
                entry = self._items.pop(0)
            if entry.deadline is not None and entry.deadline.expired(now):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired


# ---------------------------------------------------------------------------
# Admission tickets + controller
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdmissionTicket:
    """The controller's answer for one request."""

    request_id: int
    decision: AdmissionDecision
    #: Advice for the client, in the controller's time units (0 = now,
    #: ``inf`` = the bucket never refills).
    retry_after: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.decision is AdmissionDecision.ADMIT


class AdmissionRejected(Exception):
    """A request was shed by the overload plane.

    Deliberately *not* a :class:`~repro.wasp.virtine.VirtineCrash`:
    nothing ran and nothing failed -- the system chose not to start work
    it could not finish.  Callers translate it into 429/503 responses or
    shed counters.
    """

    def __init__(self, image_name: str, ticket: AdmissionTicket) -> None:
        super().__init__(
            f"request for image {image_name!r} shed: {ticket.decision.value}"
        )
        self.image_name = image_name
        self.ticket = ticket


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning for one :class:`AdmissionController`."""

    #: Waiting requests the queue holds before the shed policy engages.
    max_queue_depth: int = 64
    shed_policy: ShedPolicy = ShedPolicy.REJECT_NEWEST
    #: Per-image token refill rate (tokens per time unit); None disables
    #: rate limiting.
    rate: float | None = None
    #: Per-image bucket capacity (max burst admitted at once).
    burst: float = 16.0
    #: Image name -> priority for the PRIORITY shed policy (higher wins;
    #: unlisted images get 0).
    priorities: dict[str, int] = field(default_factory=dict)
    #: Queue occupancy fractions that raise the brownout posture.
    brownout_at: float = 0.5
    degraded_at: float = 0.9
    #: Consecutive sheds that raise the posture regardless of depth
    #: (covers queue-less synchronous callers).
    brownout_shed_run: int = 4
    degraded_shed_run: int = 12
    #: Extra tokens a BURST_ARRIVAL fault drains (phantom arrivals).
    burst_fault_cost: float = 8.0


class AdmissionController:
    """The shared admission gate: rate limit -> deadline -> queue bound.

    One controller fronts one overloadable resource (a Wasp node, a
    serverless platform, an HTTP server).  Synchronous callers use
    :meth:`admit` alone (passing their externally observed backlog as
    ``queue_depth``); the queueing platform additionally parks admitted
    work via :meth:`enqueue` / :meth:`pop_ready`.  Every decision lands
    in :attr:`trace`, and the whole gate is deterministic: the same
    arrival sequence (and fault-plan seed) replays the same decisions.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        #: Telemetry registry; the attaching layer (Wasp/Supervisor/CLI)
        #: replaces the shared no-op when telemetry is on.
        self.telemetry = NO_TELEMETRY
        self.queue = BoundedQueue(self.config.max_queue_depth, self.config.shed_policy)
        self.trace = AdmissionTrace()
        self._buckets: dict[str, TokenBucket] = {}
        self._next_request_id = 0
        self.admitted = 0
        self.timeouts = 0
        self.consecutive_sheds = 0
        self.shed_by_reason: dict[str, int] = {d.value: 0 for d in SHED_DECISIONS}

    # -- introspection -------------------------------------------------------
    @property
    def queue_len(self) -> int:
        return len(self.queue)

    @property
    def queue_depth_high_water(self) -> int:
        return self.queue.high_water

    @property
    def shed_total(self) -> int:
        return sum(self.shed_by_reason.values())

    def signature(self) -> tuple[tuple[int, str, str], ...]:
        return self.trace.signature()

    def priority_for(self, image: str) -> int:
        return self.config.priorities.get(image, 0)

    def bucket_for(self, image: str) -> TokenBucket:
        bucket = self._buckets.get(image)
        if bucket is None:
            # rate=None still builds a bucket (for retry-after advice),
            # but admit() never consults it in that case.
            bucket = self._buckets[image] = TokenBucket(
                rate=self.config.rate or 0.0, burst=self.config.burst,
            )
        return bucket

    def brownout_level(self, queue_depth: int | None = None) -> BrownoutLevel:
        """The current overload posture."""
        depth = queue_depth if queue_depth is not None else len(self.queue)
        occupancy = depth / self.config.max_queue_depth if self.config.max_queue_depth else 1.0
        if (occupancy >= self.config.degraded_at
                or self.consecutive_sheds >= self.config.degraded_shed_run):
            return BrownoutLevel.DEGRADED
        if (occupancy >= self.config.brownout_at
                or self.consecutive_sheds >= self.config.brownout_shed_run):
            return BrownoutLevel.BROWNOUT
        return BrownoutLevel.NORMAL

    # -- recording -----------------------------------------------------------
    def _record(self, request_id: int, image: str, decision: AdmissionDecision,
                queue_depth: int, now: float) -> None:
        self.trace.append(request_id, image, decision, queue_depth, now)
        self.telemetry.counter("admission_decisions_total",
                               decision=decision.value).inc()
        if decision is AdmissionDecision.ADMIT:
            self.admitted += 1
            self.consecutive_sheds = 0
        elif decision in SHED_DECISIONS:
            self.shed_by_reason[decision.value] += 1
            self.consecutive_sheds += 1
        elif decision is AdmissionDecision.TIMEOUT:
            self.timeouts += 1

    # -- the gate ------------------------------------------------------------
    def admit(
        self,
        image: str,
        now: float,
        *,
        request_id: int | None = None,
        deadline: Deadline | None = None,
        queue_depth: int | None = None,
    ) -> AdmissionTicket:
        """Decide one request's fate at ``now``.

        Check order mirrors cost: the rate limit is cheapest and guards
        everything behind it; a dead-on-arrival deadline sheds before
        any queueing; the queue bound sheds last.  ``queue_depth`` lets
        synchronous callers supply an externally observed backlog (the
        HTTP listener's, say) -- when full it is always reject-newest,
        since the controller cannot evict from a queue it does not own.
        """
        rid = request_id if request_id is not None else self._next_request_id
        self._next_request_id = max(self._next_request_id, rid + 1)
        depth = queue_depth if queue_depth is not None else len(self.queue)
        bucket = self.bucket_for(image)
        if self.fault_plan.draw(FaultSite.BURST_ARRIVAL, image):
            # A burst-arrival fault: this request arrives with a crowd of
            # phantom siblings that drain the image's bucket.
            bucket.drain(now, self.config.burst_fault_cost)
        if self.config.rate is not None and not bucket.take(now):
            ticket = AdmissionTicket(rid, AdmissionDecision.SHED_RATE_LIMIT,
                                     retry_after=bucket.retry_after(now))
            self._record(rid, image, ticket.decision, depth, now)
            return ticket
        if deadline is not None and deadline.expired(now):
            ticket = AdmissionTicket(rid, AdmissionDecision.SHED_DEADLINE)
            self._record(rid, image, ticket.decision, depth, now)
            return ticket
        if queue_depth is not None and queue_depth >= self.config.max_queue_depth:
            ticket = AdmissionTicket(rid, AdmissionDecision.SHED_QUEUE_FULL,
                                     retry_after=bucket.retry_after(now))
            self._record(rid, image, ticket.decision, depth, now)
            return ticket
        ticket = AdmissionTicket(rid, AdmissionDecision.ADMIT)
        self._record(rid, image, ticket.decision, depth, now)
        return ticket

    # -- the owned queue (queueing platforms) --------------------------------
    def enqueue(
        self,
        image: str,
        now: float,
        *,
        request_id: int,
        deadline: Deadline | None = None,
        enqueued_at: float | None = None,
    ) -> bool:
        """Park an admitted request; the shed policy resolves overflow."""
        entry = QueuedRequest(
            request_id=request_id, image=image,
            priority=self.priority_for(image), deadline=deadline,
            enqueued_at=enqueued_at if enqueued_at is not None else now,
        )
        accepted, evicted = self.queue.offer(entry)
        for victim in evicted:
            self._record(victim.request_id, victim.image,
                         AdmissionDecision.EVICTED, len(self.queue), now)
        if not accepted:
            self._record(request_id, image, AdmissionDecision.SHED_QUEUE_FULL,
                         len(self.queue), now)
        return accepted

    def pop_ready(self, now: float) -> QueuedRequest | None:
        """Next serviceable queued request; expired waiters are shed."""
        entry, expired = self.queue.pop(now)
        for victim in expired:
            self._record(victim.request_id, victim.image,
                         AdmissionDecision.EXPIRED_IN_QUEUE, len(self.queue), now)
        return entry

    # -- post-admission outcomes ---------------------------------------------
    def record_timeout(self, image: str, now: float, request_id: int) -> None:
        """An admitted request was cancelled at its deadline mid-run."""
        self._record(request_id, image, AdmissionDecision.TIMEOUT,
                     len(self.queue), now)


# ---------------------------------------------------------------------------
# The watchdog
# ---------------------------------------------------------------------------

#: Default silence (cycles) before a running virtine counts as hung.
DEFAULT_NO_PROGRESS_CYCLES = us_to_cycles(1_500.0)


class Watchdog:
    """Heartbeats running virtines; kills and classifies hangs.

    Beats are *observable external progress*: hypercalls and milestones
    (compute charges are consumption, not progress).  The watchdog is
    consulted at every natural preemption point -- the same places the
    deadline is checked -- and kills with a typed
    :class:`~repro.wasp.virtine.VirtineHang`:

    * **no-progress**: silent for longer than ``no_progress_cycles``
      (a wedged guest spinning without any host interaction);
    * **slow-progress**: still beating, but alive past
      ``slow_progress_cycles`` total (a guest grinding toward an answer
      nobody is waiting for any more).

    ``VirtineHang`` subclasses ``VirtineTimeout``, so the PR-1
    supervision machinery (retry policy, circuit breaker, quarantine)
    handles hangs with zero new wiring.
    """

    def __init__(
        self,
        wasp: "Wasp | None" = None,
        no_progress_cycles: int = DEFAULT_NO_PROGRESS_CYCLES,
        slow_progress_cycles: int | None = None,
    ) -> None:
        if no_progress_cycles <= 0:
            raise ValueError("no_progress_cycles must be positive")
        if slow_progress_cycles is not None and slow_progress_cycles <= 0:
            raise ValueError("slow_progress_cycles must be positive")
        self.no_progress_cycles = no_progress_cycles
        self.slow_progress_cycles = slow_progress_cycles
        self.kills_by_kind: dict[HangKind, int] = {kind: 0 for kind in HangKind}
        self.telemetry = NO_TELEMETRY
        if wasp is not None:
            wasp.watchdog = self
            self.telemetry = wasp.telemetry

    @property
    def kills(self) -> int:
        return sum(self.kills_by_kind.values())

    def check(self, virtine: Virtine, now: int) -> None:
        """Kill ``virtine`` if it is hung at simulated time ``now``."""
        last_sign_of_life = max(virtine.last_beat_cycles, virtine.started_cycles)
        silence = now - last_sign_of_life
        if silence > self.no_progress_cycles:
            self.kills_by_kind[HangKind.NO_PROGRESS] += 1
            self.telemetry.counter("watchdog_kills_total",
                                   kind=HangKind.NO_PROGRESS.value).inc()
            raise VirtineHang(
                f"virtine {virtine.name!r} made no progress for {silence:,} "
                f"cycles (threshold {self.no_progress_cycles:,})",
                kind=HangKind.NO_PROGRESS,
                cycles=now - virtine.started_cycles,
            )
        alive = now - virtine.started_cycles
        if (self.slow_progress_cycles is not None
                and alive > self.slow_progress_cycles):
            self.kills_by_kind[HangKind.SLOW_PROGRESS] += 1
            self.telemetry.counter("watchdog_kills_total",
                                   kind=HangKind.SLOW_PROGRESS.value).inc()
            raise VirtineHang(
                f"virtine {virtine.name!r} still running after {alive:,} "
                f"cycles ({virtine.beats} beats; threshold "
                f"{self.slow_progress_cycles:,})",
                kind=HangKind.SLOW_PROGRESS,
                cycles=alive,
            )
