"""The virtine object and its invocation result.

A :class:`Virtine` is one isolated invocation: an image bound to a
hardware shell, a hypercall policy, a handler table, and the host
resources the client granted it.  It is created by
:class:`repro.wasp.hypervisor.Wasp` and lives for a single launch
(sessions -- the "no teardown" optimisation -- keep one alive across
invocations; see :class:`repro.wasp.hypervisor.VirtineSession`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.image import VirtineImage
from repro.wasp.hypercall import AuditLog, Hypercall
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.pool import Shell


class VirtineCrash(Exception):
    """The virtine shut down abnormally (triple fault, denied+killed...).

    Subclasses classify the crash for the supervision layer
    (:mod:`repro.wasp.supervisor`): who is at fault decides whether a
    retry can help (host faults and timeouts are transient; guest bugs
    and policy kills are deterministic).
    """


class GuestFault(VirtineCrash):
    """The guest itself faulted: a bug in untrusted code (bad strcpy,
    triple fault, unhandled errno).  Deterministic -- retrying the same
    input reproduces it, so supervisors should open the breaker rather
    than burn retries."""


class HostFault(VirtineCrash):
    """The *host* plane failed under the virtine: a ``KVM_RUN`` abort,
    an EIO from the host filesystem surfacing through a hypercall.
    Transient by nature -- the canonical retry candidate."""


class PolicyKill(VirtineCrash):
    """The client's policy killed the virtine (denied hypercall).
    Never retried: the same policy gives the same answer."""


class VirtineTimeout(VirtineCrash):
    """The virtine exceeded its step budget or cycle deadline.

    Today's alternative -- ``max_steps`` exhaustion falling through as a
    generic stop -- made a runaway guest indistinguishable from a clean
    halt; this carries what the guest consumed before the kill.
    """

    def __init__(self, message: str, steps: int = 0, cycles: int = 0) -> None:
        super().__init__(message)
        #: Interpreter steps executed before the budget ran out (0 for
        #: hosted guests, which are metered in cycles only).
        self.steps = steps
        #: Simulated cycles consumed by the launch before the kill.
        self.cycles = cycles


class HangKind(enum.Enum):
    """How a hung virtine failed to finish (watchdog classification)."""

    #: Silent past the no-progress threshold: no hypercalls, no
    #: milestones -- a wedged guest spinning without host interaction.
    NO_PROGRESS = "no_progress"
    #: Still heartbeating, but alive past the slow-progress threshold:
    #: grinding toward an answer nobody is waiting for any more.
    SLOW_PROGRESS = "slow_progress"


class VirtineHang(VirtineTimeout):
    """The watchdog killed a hung virtine.

    A :class:`VirtineTimeout` subclass so the supervision layer's
    retry/breaker machinery (which already treats timeouts as
    transient) handles watchdog kills with no new wiring; ``kind``
    preserves the hang classification for metrics and triage.
    """

    def __init__(self, message: str, kind: HangKind,
                 steps: int = 0, cycles: int = 0) -> None:
        super().__init__(message, steps=steps, cycles=cycles)
        self.kind = kind


@dataclass
class Virtine:
    """One virtine invocation's state."""

    name: str
    image: VirtineImage
    shell: Shell
    policy: Policy = field(default_factory=DefaultDenyPolicy)
    #: Handler table (hypercall number -> callable).
    handlers: dict[Hypercall, Any] = field(default_factory=dict)
    #: Host resources granted by the client (guest handle -> host object).
    resources: dict[int, Any] = field(default_factory=dict)
    #: Optional path prefixes the canned filesystem handlers permit
    #: (None means any validated path).
    allowed_path_prefixes: tuple[str, ...] | None = None
    #: File descriptors this virtine opened (and may therefore use).
    owned_fds: set[int] = field(default_factory=set)
    audit: AuditLog = field(default_factory=AuditLog)
    #: Key under which this virtine's snapshot is stored/looked up.
    snapshot_key: str = ""
    #: Absolute cycle deadline (None = no deadline).  Checked at every
    #: natural preemption point: hypercall dispatch, vCPU exits, and
    #: hosted-guest compute charges.
    deadline: int | None = None
    #: Clock reading when the launch began (for timeout accounting).
    started_cycles: int = 0
    #: Clock reading of the last observable sign of progress (hypercall
    #: or milestone); the watchdog's heartbeat.
    last_beat_cycles: int = 0
    #: Total heartbeats recorded this launch.
    beats: int = 0
    exit_code: int = 0
    hypercall_count: int = 0
    result: Any = None


@dataclass
class VirtineResult:
    """What a launch returns to the client."""

    value: Any
    exit_code: int
    #: End-to-end latency of the launch, in simulated cycles (includes
    #: provisioning, boot or snapshot restore, execution, hypercalls, and
    #: synchronous cleaning if configured).
    cycles: int
    hypercall_count: int
    audit: AuditLog
    #: True if this launch started from a snapshot.
    from_snapshot: bool
    #: The vCPU ``ax`` register at halt (assembly virtines' return slot).
    ax: int = 0
    #: Guest-recorded milestones (marker, absolute cycle) for this launch.
    milestones: list = field(default_factory=list)
