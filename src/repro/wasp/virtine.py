"""The virtine object and its invocation result.

A :class:`Virtine` is one isolated invocation: an image bound to a
hardware shell, a hypercall policy, a handler table, and the host
resources the client granted it.  It is created by
:class:`repro.wasp.hypervisor.Wasp` and lives for a single launch
(sessions -- the "no teardown" optimisation -- keep one alive across
invocations; see :class:`repro.wasp.hypervisor.VirtineSession`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime.image import VirtineImage
from repro.wasp.hypercall import AuditLog, Hypercall
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.pool import Shell


class VirtineCrash(Exception):
    """The virtine shut down abnormally (triple fault, denied+killed...)."""


@dataclass
class Virtine:
    """One virtine invocation's state."""

    name: str
    image: VirtineImage
    shell: Shell
    policy: Policy = field(default_factory=DefaultDenyPolicy)
    #: Handler table (hypercall number -> callable).
    handlers: dict[Hypercall, Any] = field(default_factory=dict)
    #: Host resources granted by the client (guest handle -> host object).
    resources: dict[int, Any] = field(default_factory=dict)
    #: Optional path prefixes the canned filesystem handlers permit
    #: (None means any validated path).
    allowed_path_prefixes: tuple[str, ...] | None = None
    #: File descriptors this virtine opened (and may therefore use).
    owned_fds: set[int] = field(default_factory=set)
    audit: AuditLog = field(default_factory=AuditLog)
    #: Key under which this virtine's snapshot is stored/looked up.
    snapshot_key: str = ""
    exit_code: int = 0
    hypercall_count: int = 0
    result: Any = None


@dataclass
class VirtineResult:
    """What a launch returns to the client."""

    value: Any
    exit_code: int
    #: End-to-end latency of the launch, in simulated cycles (includes
    #: provisioning, boot or snapshot restore, execution, hypercalls, and
    #: synchronous cleaning if configured).
    cycles: int
    hypercall_count: int
    audit: AuditLog
    #: True if this launch started from a snapshot.
    from_snapshot: bool
    #: The vCPU ``ax`` register at halt (assembly virtines' return slot).
    ax: int = 0
    #: Guest-recorded milestones (marker, absolute cycle) for this launch.
    milestones: list = field(default_factory=list)
