"""Virtine supervision: retries, circuit breaking, crash accounting.

The paper's isolation story (Section 3) is about *containing* failures:
an errant virtine dies alone.  This module adds the operational half a
serverless platform needs on top of containment -- deciding what to do
*after* a virtine dies.  The decision tree hinges on the crash taxonomy
of :mod:`repro.wasp.virtine`:

* :class:`~repro.wasp.virtine.HostFault` -- the host plane failed under
  a well-behaved guest (``KVM_RUN`` abort, disk EIO).  Transient;
  retrying on a fresh shell usually succeeds.
* :class:`~repro.wasp.virtine.VirtineTimeout` -- the guest overran its
  cycle deadline or step budget.  Possibly load-induced; worth a
  bounded number of retries.
* :class:`~repro.wasp.virtine.GuestFault` -- a bug in the untrusted
  code.  Deterministic: the same input reproduces it, so retries only
  burn cycles.  Repeated guest faults open the per-image circuit
  breaker instead.
* :class:`~repro.wasp.virtine.PolicyKill` -- the client's policy said
  no.  Never retried; the same policy gives the same answer.

All supervision costs are *simulated* costs: retry backoff is charged
to the Wasp clock, so the latency of a supervised workload under faults
is measurable the same way every other figure in the reproduction is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.trace.tracer import Category
from repro.units import us_to_cycles
from repro.wasp.admission import AdmissionController, AdmissionRejected
from repro.wasp.virtine import (
    GuestFault,
    HangKind,
    HostFault,
    PolicyKill,
    VirtineCrash,
    VirtineHang,
    VirtineResult,
    VirtineTimeout,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.image import VirtineImage
    from repro.telemetry.slo import DegradationEvent
    from repro.wasp.hypervisor import Wasp

#: Crash black boxes retained per supervisor (newest evict oldest): each
#: is a flight-recorder dump frozen at the moment of a crash.
MAX_BLACK_BOXES = 8


class CrashClass(enum.Enum):
    """Why a virtine died, as the supervision layer sees it."""

    GUEST_FAULT = "guest_fault"
    HOST_FAULT = "host_fault"
    POLICY_KILL = "policy_kill"
    TIMEOUT = "timeout"


def classify(error: BaseException) -> CrashClass:
    """Map a crash exception onto the supervision taxonomy.

    An untyped :class:`VirtineCrash` (legacy raisers, external code)
    classifies as a guest fault -- the conservative reading, since
    retrying an unknown crash must not be the default.
    """
    if isinstance(error, VirtineTimeout):
        return CrashClass.TIMEOUT
    if isinstance(error, PolicyKill):
        return CrashClass.POLICY_KILL
    if isinstance(error, HostFault):
        return CrashClass.HOST_FAULT
    if isinstance(error, (GuestFault, VirtineCrash)):
        return CrashClass.GUEST_FAULT
    raise TypeError(f"not a virtine crash: {type(error).__name__}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (cycles on the sim clock)."""

    #: Total launch attempts, including the first (1 = no retries).
    max_attempts: int = 3
    #: Backoff charged before the first retry.
    backoff_cycles: int = us_to_cycles(200.0)
    #: Growth factor for each subsequent retry's backoff.
    backoff_multiplier: float = 2.0
    #: Crash classes worth retrying.  Deterministic classes (guest
    #: faults, policy kills) are excluded by default on purpose.
    retry_on: tuple[CrashClass, ...] = (CrashClass.HOST_FAULT, CrashClass.TIMEOUT)

    def backoff_for(self, attempt: int) -> int:
        """Cycles to wait after failed attempt number ``attempt`` (1-based)."""
        return int(self.backoff_cycles * self.backoff_multiplier ** (attempt - 1))


class BreakerState(enum.Enum):
    """Classic three-state circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Per-image circuit-breaker tuning."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: Cycles the breaker stays open before admitting one probe launch.
    cooldown_cycles: int = us_to_cycles(10_000.0)


class BreakerOpen(Exception):
    """A launch was rejected because the image's breaker is open.

    Deliberately *not* a :class:`VirtineCrash`: no virtine ran.  Callers
    (the serverless platform, the HTTP server) treat it as load-shedding
    and degrade gracefully rather than report a crash.
    """

    def __init__(self, image_name: str, retry_after_cycles: int) -> None:
        super().__init__(
            f"circuit breaker open for image {image_name!r} "
            f"(retry after {retry_after_cycles:,} cycles)"
        )
        self.image_name = image_name
        #: Cycles until the breaker will admit a probe.
        self.retry_after_cycles = retry_after_cycles


class CircuitBreaker:
    """Tracks one image's health; trips open after repeated failures.

    CLOSED -> (failure_threshold consecutive failures) -> OPEN
    OPEN   -> (cooldown elapses) -> HALF_OPEN (one probe admitted)
    HALF_OPEN -> success -> CLOSED, failure -> OPEN (fresh cooldown)
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0
        #: Launches rejected while open.
        self.rejections = 0
        #: Times the breaker transitioned CLOSED/HALF_OPEN -> OPEN.
        self.trips = 0

    def allow(self, now: int) -> bool:
        """Whether a launch may proceed at simulated time ``now``."""
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.cooldown_cycles:
                self.state = BreakerState.HALF_OPEN
                return True
            self.rejections += 1
            return False
        return True

    def retry_after(self, now: int) -> int:
        """Cycles until an open breaker will admit a probe (0 if not open)."""
        if self.state is not BreakerState.OPEN:
            return 0
        return max(0, self.opened_at + self.config.cooldown_cycles - now)

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: int) -> None:
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.config.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1


@dataclass(frozen=True)
class SupervisionEvent:
    """One entry in a supervisor's decision trace."""

    seq: int
    image: str
    #: Launch attempt this event belongs to (1-based; 0 for rejections,
    #: where no attempt was made).
    attempt: int
    #: Crash classification, or None for non-crash events.
    crash_class: CrashClass | None
    #: What the supervisor did: "crash", "retry", "give_up",
    #: "rejected", or "recovered".
    action: str
    #: Simulated clock reading when the event was recorded.
    cycles: int
    #: The raw crash message for "crash" events (preserves the exact
    #: verdict -- e.g. an unknown vmexit reason -- for triage/replay).
    detail: str = ""


class Supervisor:
    """Per-Wasp supervision: breaker gate -> launch -> classify -> retry.

    Registers itself on the Wasp instance (``wasp.supervisor``) so
    :func:`repro.wasp.metrics.collect` picks its counters up.
    """

    def __init__(
        self,
        wasp: "Wasp",
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.wasp = wasp
        wasp.supervisor = self
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        #: Optional overload gate consulted *before* the breaker: the
        #: breaker protects against broken images, admission protects
        #: against too many healthy ones.
        self.admission = admission
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Chronological decision trace (determinism: same seed, same
        #: workload => identical trace).
        self.trace: list[SupervisionEvent] = []
        self.crashes_by_class: dict[CrashClass, int] = {c: 0 for c in CrashClass}
        self.retries = 0
        self.breaker_rejections = 0
        self.give_ups = 0
        self.completions = 0
        #: Launches shed by the admission gate (nothing ran).
        self.shed = 0
        #: Watchdog kills among the TIMEOUT crashes, by hang kind.
        self.hangs_by_kind: dict[HangKind, int] = {k: 0 for k in HangKind}
        #: The Wasp's telemetry registry (the shared NO_TELEMETRY when
        #: telemetry is off -- every counter call below is then a no-op).
        self.telemetry = wasp.telemetry
        #: Typed SLO degradation events, in emission order.  The
        #: registry's monitors deliver them here via the sink, which
        #: makes an SLO breach supervision-visible, not just a number.
        self.degradations: list["DegradationEvent"] = []
        #: Flight-recorder dumps frozen at crash time, newest last
        #: (bounded at MAX_BLACK_BOXES).
        self.crash_black_boxes: list[dict] = []
        if self.telemetry.enabled:
            self.telemetry.degradation_sink = self._on_degradation
            if self.admission is not None:
                self.admission.telemetry = self.telemetry

    # -- introspection ------------------------------------------------------
    def breaker_for(self, image_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(image_name)
        if breaker is None:
            breaker = self._breakers[image_name] = CircuitBreaker(self.breaker_config)
        return breaker

    def breaker_states(self) -> dict[str, str]:
        """Image name -> breaker state value, for metrics export."""
        return {name: b.state.value for name, b in sorted(self._breakers.items())}

    def signature(self) -> tuple[tuple[str, int, str | None, str], ...]:
        """The trace minus clock readings -- the replay-equality check."""
        return tuple(
            (e.image, e.attempt, e.crash_class.value if e.crash_class else None,
             e.action)
            for e in self.trace
        )

    def _record(
        self, image: str, attempt: int, crash_class: CrashClass | None,
        action: str, detail: str = "",
    ) -> None:
        self.trace.append(SupervisionEvent(
            seq=len(self.trace),
            image=image,
            attempt=attempt,
            crash_class=crash_class,
            action=action,
            cycles=self.wasp.clock.cycles,
            detail=detail,
        ))

    def _on_degradation(self, event: "DegradationEvent") -> None:
        """The registry's degradation sink: fold SLO breaches into the
        supervision record.

        Deliberately never writes into the tracer -- a telemetry-enabled
        run must export byte-identical Chrome trace spans to a disabled
        one; degradations live in the supervisor log and the flight
        recorder instead.
        """
        self.degradations.append(event)
        self.telemetry.record_flight("slo", event.kind.value,
                                     monitor=event.monitor,
                                     metric=event.metric,
                                     observed=event.observed,
                                     threshold=event.threshold)

    def _capture_black_box(self, image: str, crash_class: CrashClass,
                           detail: str) -> None:
        """Freeze the flight recorder at crash time (bounded history)."""
        if not self.telemetry.enabled:
            return
        box = {
            "image": image,
            "crash_class": crash_class.value,
            "detail": detail,
            "cycles": self.wasp.clock.cycles,
            "flight": self.telemetry.flight.black_box(),
        }
        self.crash_black_boxes.append(box)
        if len(self.crash_black_boxes) > MAX_BLACK_BOXES:
            del self.crash_black_boxes[0]

    def record_external_crash(
        self, image_name: str, crash: BaseException, detail: str = "",
    ) -> CrashClass:
        """Account a crash that happened *outside* a supervised launch.

        The migration plane (a tampered transfer detected before any
        virtine ran) and the chaos plane (a core dying mid-run) observe
        failures this supervisor never saw as a launch attempt.  They
        still belong in the crash record: classify, count, and append a
        trace event (attempt 0 -- nothing ran under this supervisor).
        """
        crash_class = classify(crash)
        self.crashes_by_class[crash_class] += 1
        self.telemetry.counter("crashes_total", crash_class=crash_class.value,
                               image=image_name).inc()
        self._capture_black_box(image_name, crash_class,
                                detail or str(crash))
        self._record(image_name, 0, crash_class, "crash",
                     detail=detail or str(crash))
        return crash_class

    # -- the supervised launch ---------------------------------------------
    def launch(self, image: "VirtineImage", **launch_kwargs: Any) -> VirtineResult:
        """Launch under supervision.

        Raises :class:`~repro.wasp.admission.AdmissionRejected` when the
        attached admission controller sheds the request (overload),
        :class:`BreakerOpen` without running anything when the image's
        breaker is open, and re-raises the final crash when retries are
        exhausted or the crash class is not retryable.
        """
        now = self.wasp.clock.cycles
        tracer = self.wasp.tracer
        span = tracer.begin(f"supervise:{image.name}", Category.SUPERVISION,
                            image=image.name)
        try:
            ticket = None
            if self.admission is not None:
                ticket = self.admission.admit(
                    image.name, now, deadline=launch_kwargs.get("deadline"),
                )
                if not ticket.admitted:
                    self.shed += 1
                    self.telemetry.counter(
                        "admission_shed_total", image=image.name,
                        reason=ticket.decision.value).inc()
                    self._record(image.name, 0, None, "shed")
                    tracer.instant("admission.shed", Category.SUPERVISION,
                                   image=image.name,
                                   reason=ticket.decision.value)
                    span.annotate(outcome="shed")
                    raise AdmissionRejected(image.name, ticket)
                tracer.instant("admission.admit", Category.SUPERVISION,
                               image=image.name)
            breaker = self.breaker_for(image.name)
            if not breaker.allow(now):
                self.breaker_rejections += 1
                self.telemetry.counter("breaker_rejections_total",
                                       image=image.name).inc()
                self._record(image.name, 0, None, "rejected")
                tracer.instant("breaker.open", Category.SUPERVISION,
                               image=image.name)
                span.annotate(outcome="rejected")
                raise BreakerOpen(image.name, breaker.retry_after(now))
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self.wasp.launch(image, **launch_kwargs)
                except VirtineCrash as crash:
                    crash_class = classify(crash)
                    self.crashes_by_class[crash_class] += 1
                    self.telemetry.counter(
                        "crashes_total", crash_class=crash_class.value,
                        image=image.name).inc()
                    self._capture_black_box(image.name, crash_class,
                                            str(crash))
                    if isinstance(crash, VirtineHang):
                        self.hangs_by_kind[crash.kind] += 1
                    if crash_class is CrashClass.TIMEOUT and ticket is not None:
                        # Deadline overruns and watchdog kills land in the
                        # admission trace too: a timeout is an overload
                        # outcome, and the replay check covers it.
                        self.admission.record_timeout(
                            image.name, self.wasp.clock.cycles,
                            request_id=ticket.request_id,
                        )
                    breaker.record_failure(self.wasp.clock.cycles)
                    self._record(image.name, attempt, crash_class, "crash",
                                 detail=str(crash))
                    if (
                        crash_class in self.retry.retry_on
                        and attempt < self.retry.max_attempts
                    ):
                        self.retries += 1
                        # Backoff is simulated time like everything else.
                        backoff = self.retry.backoff_for(attempt)
                        self.wasp.clock.advance(backoff)
                        tracer.component("retry.backoff", backoff,
                                         Category.SUPERVISION, attempt=attempt)
                        self.telemetry.counter("supervisor_retries_total",
                                               image=image.name).inc()
                        self.telemetry.counter(
                            "component_cycles_total",
                            component="retry.backoff").inc(backoff)
                        self._record(image.name, attempt, crash_class, "retry")
                        continue
                    self.give_ups += 1
                    self._record(image.name, attempt, crash_class, "give_up")
                    span.annotate(outcome="give_up",
                                  crash_class=crash_class.value)
                    raise
                breaker.record_success()
                self.completions += 1
                if attempt > 1:
                    self._record(image.name, attempt, None, "recovered")
                span.annotate(outcome="ok", attempts=attempt)
                return result
        finally:
            tracer.end(span)
