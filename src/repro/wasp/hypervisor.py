"""Wasp: the embeddable micro-hypervisor (Section 5).

Wasp "is a userspace runtime system built as a library that host
programs (virtine clients) can link against" -- here, a Python class that
applications instantiate.  It owns the KVM device model, the shell pools,
the snapshot store, and the hypercall dispatch path; clients configure
policies and handlers per launch.

The launch path follows Figure 6: a request arrives (A), a context is
provisioned from the pool (D) or created clean (C), the image (or its
snapshot) is installed, the guest runs with hypercall interposition, and
on return the context is cleared (E) and cached for reuse (B).
"""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.host.kernel import HostKernel
from repro.hw.clock import BackgroundAccountant
from repro.hw.costs import COSTS, CostModel
from repro.hw.vmx import ExitReason
from repro.kvm.device import KVM
from repro.runtime.image import HOSTED_ENTER_PORT, VirtineImage
from repro.wasp.guestenv import GuestEnv, GuestExitRequested
from repro.wasp.handlers import CannedHandlers
from repro.wasp.hypercall import (
    HCALL_PORT,
    Hypercall,
    HypercallDenied,
    HypercallError,
    HypercallRequest,
)
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.pool import CleanMode, Shell, ShellPool
from repro.wasp.snapshot import RestoreMode, Snapshot, SnapshotStore
from repro.wasp.virtine import Virtine, VirtineCrash, VirtineResult

#: Guest memory below the image: boot scratch, GDT, real-mode stack.
_LOW_RESERVED = 0x8000
#: Guest memory above the image: page tables + protected/long stack.
_RUNTIME_HEADROOM = 0x300000


def _bucket_size(required: int) -> int:
    """Round a memory requirement up to a power-of-two pool bucket."""
    size = 4 * 1024 * 1024
    while size < required:
        size *= 2
    return size


class Wasp:
    """The embeddable virtine hypervisor."""

    BACKENDS = ("kvm", "hyperv")

    def __init__(
        self,
        kernel: HostKernel | None = None,
        costs: CostModel = COSTS,
        backend: str = "kvm",
    ) -> None:
        self.kernel = kernel if kernel is not None else HostKernel(costs=costs)
        self.costs = costs
        self.clock = self.kernel.clock
        if backend == "kvm":
            self.kvm = KVM(self.clock, costs)
        elif backend == "hyperv":
            from repro.hyperv.device import HyperV

            self.kvm = HyperV(self.clock, costs)
        else:
            raise ValueError(f"unknown VMM backend {backend!r} (use one of {self.BACKENDS})")
        self.backend = backend
        #: Backend-neutral alias ("kvm" is the historical attribute name).
        self.vmm = self.kvm
        self.background = BackgroundAccountant()
        self.snapshots = SnapshotStore()
        self.canned = CannedHandlers(self.kernel)
        self._pools: dict[int, ShellPool] = {}
        self.launches = 0

    # -- pools ---------------------------------------------------------------
    def memory_size_for(self, image: VirtineImage) -> int:
        """The pool bucket an image's virtines draw shells from."""
        required = _LOW_RESERVED + image.size + _RUNTIME_HEADROOM
        return _bucket_size(required)

    def pool_for(self, memory_size: int) -> ShellPool:
        if memory_size not in self._pools:
            self._pools[memory_size] = ShellPool(
                self.kvm, memory_size, background=self.background
            )
        return self._pools[memory_size]

    # -- launch ------------------------------------------------------------------
    def launch(
        self,
        image: VirtineImage,
        *,
        policy: Policy | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        resources: dict[int, Any] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        args: Any = None,
        use_snapshot: bool = True,
        snapshot_key: str | None = None,
        restore_mode: RestoreMode = RestoreMode.EAGER,
        pooled: bool = True,
        clean: CleanMode = CleanMode.SYNC,
        max_steps: int = 50_000_000,
    ) -> VirtineResult:
        """Run ``image`` in a fresh virtine and return its result.

        ``pooled=False`` forces scratch context creation (the "Wasp"
        series of Figure 8); otherwise shells are drawn from and returned
        to the per-size pool under the ``clean`` discipline.  When
        ``use_snapshot`` is set and the image has a stored reset state,
        boot and runtime initialisation are skipped (Figure 7).
        """
        self.launches += 1
        pool = self.pool_for(self.memory_size_for(image))
        region = self.clock.region()
        shell = pool.acquire() if pooled else pool.create_scratch()
        virtine = self._make_virtine(image, shell, policy, handlers, resources, allowed_paths)
        virtine.snapshot_key = snapshot_key or image.name
        from_snapshot = False
        try:
            snap = self.snapshots.get(virtine.snapshot_key) if use_snapshot else None
            if snap is not None:
                from_snapshot = True
                self._restore_snapshot(virtine, snap, restore_mode)
                if snap.hosted:
                    self._run_hosted(virtine, args, restored=snap.payload_copy(),
                                     from_snapshot=True)
                self._run_loop(virtine, args, max_steps)
            else:
                self._install_image(virtine)
                self._run_loop(virtine, args, max_steps)
            final_ax = shell.vm.cpu.regs["ax"]
            milestones = [(m.marker, m.cycles) for m in shell.vm.milestones]
        finally:
            self._close_virtine_fds(virtine)
            if pooled:
                pool.release(shell, clean)
            else:
                shell.handle.close()
        return VirtineResult(
            value=virtine.result,
            exit_code=virtine.exit_code,
            cycles=region.stop(),
            hypercall_count=virtine.hypercall_count,
            audit=virtine.audit,
            from_snapshot=from_snapshot,
            ax=final_ax,
            milestones=milestones,
        )

    def session(self, image: VirtineImage, **kwargs: Any) -> "VirtineSession":
        """Open a retained-context session (the "no teardown" mode)."""
        return VirtineSession(self, image, **kwargs)

    # -- internals ------------------------------------------------------------------
    def _make_virtine(
        self,
        image: VirtineImage,
        shell: Shell,
        policy: Policy | None,
        handlers: dict[Hypercall, Callable] | None,
        resources: dict[int, Any] | None,
        allowed_paths: tuple[str, ...] | None,
    ) -> Virtine:
        table = dict(self.canned.table())
        if handlers:
            table.update(handlers)
        virtine = Virtine(
            name=image.name,
            image=image,
            shell=shell,
            policy=policy if policy is not None else DefaultDenyPolicy(),
            handlers=table,
            resources=dict(resources or {}),
            allowed_path_prefixes=allowed_paths,
        )
        virtine.policy.reset()
        return virtine

    def _install_image(self, virtine: Virtine) -> None:
        """Cold path: copy the image into guest memory and reset the vCPU."""
        image = virtine.image
        vm = virtine.shell.vm
        vm.reset()
        self.clock.advance(self.costs.memcpy(image.size))
        vm.memory.load_bytes(image.image_bytes, image.program.base)
        vm.interp.attach_program(image.program)

    def _restore_snapshot(
        self,
        virtine: Virtine,
        snap: Snapshot,
        mode: RestoreMode = RestoreMode.EAGER,
    ) -> None:
        """Warm path: install the reset state instead of booting."""
        vm = virtine.shell.vm
        if mode is RestoreMode.EAGER:
            self.clock.advance(self.costs.memcpy(snap.copy_size))
            vm.memory.restore_pages(dict(snap.pages))
        else:
            # CoW: cheap shared mappings now, per-page copies on write.
            self.clock.advance(self.costs.COW_MAP_PER_PAGE * len(snap.pages))
            vm.memory.restore_pages_cow(dict(snap.pages))
        vm.memory.mark_touched(snap.pages.keys())
        vm.cpu.load_state(snap.cpu_state)
        vm.interp.attach_program(virtine.image.program, reset_rip=False)
        vm.milestones.clear()
        self.snapshots.note_restore()

    def _run_loop(self, virtine: Virtine, args: Any, max_steps: int) -> None:
        """Drive KVM_RUN until the guest halts or exits."""
        shell = virtine.shell
        while True:
            if shell.vm.cpu.halted:
                return
            info = shell.vcpu.run(max_steps)
            if info.reason is ExitReason.HLT:
                return
            if info.reason is ExitReason.IO_OUT:
                if info.port == HOSTED_ENTER_PORT:
                    self._run_hosted(virtine, args, restored=None)
                    continue
                if info.port == HCALL_PORT:
                    if self._isa_hypercall(virtine, info.value):
                        return
                    continue
                raise VirtineCrash(
                    f"virtine {virtine.name!r} wrote unknown port {info.port:#x}"
                )
            if info.reason is ExitReason.IO_IN:
                # No device model exists; reads of unknown ports yield 0.
                shell.vcpu.complete_io_in(info.in_dest, 0)
                continue
            raise VirtineCrash(f"virtine {virtine.name!r} shut down: {info.detail}")

    def _run_hosted(self, virtine: Virtine, args: Any, restored: Any,
                    persistent: dict | None = None,
                    from_snapshot: bool = False) -> None:
        """Execute the image's hosted entry function in guest context."""
        entry = virtine.image.hosted_entry
        if entry is None:
            raise VirtineCrash(
                f"virtine {virtine.name!r} reached the hosted trampoline "
                "but its image has no hosted entry"
            )
        env = GuestEnv(self, virtine, args=args, restored=restored,
                       persistent=persistent, from_snapshot=from_snapshot)
        try:
            virtine.result = entry(env)
        except GuestExitRequested:
            pass
        except (HypercallDenied, HypercallError) as error:
            # A guest that trips the policy or handler validation dies;
            # the host and other virtines are unaffected (Section 3.3).
            raise VirtineCrash(f"virtine {virtine.name!r} killed: {error}") from error
        except VirtineCrash:
            raise
        except Exception as error:
            # An errant guest (the paper's example: a bad strcpy) crashes
            # only its own virtine; the fault is reported, not propagated
            # as a host failure.
            raise VirtineCrash(
                f"virtine {virtine.name!r} faulted: {type(error).__name__}: {error}"
            ) from error

    #: Largest single buffer an assembly guest may move per hypercall.
    ISA_MAX_TRANSFER = 1 << 20

    def _isa_hypercall(self, virtine: Virtine, nr_value: int) -> bool:
        """Dispatch an ``out HCALL_PORT, nr`` from assembly guest code.

        Register ABI (the co-designed convention of Section 5.1):

        * ``bx`` -- scalar argument (fd, handle, exit code, open flags)
        * ``cx`` -- guest-physical buffer address (data hypercalls)
        * ``dx`` -- buffer length
        * ``ax`` -- result on return (byte count / fd / size), or the
          all-ones error value when the handler rejects the call.

        Data crossing the boundary is copied through guest memory with
        memcpy cost, exactly like the hosted path.  Returns True when the
        virtine is done (EXIT).
        """
        try:
            nr = Hypercall(nr_value)
        except ValueError:
            raise VirtineCrash(f"virtine {virtine.name!r}: bad hypercall {nr_value}")
        vm = virtine.shell.vm
        cpu = vm.cpu
        bx = cpu.read_reg("bx")
        cx = cpu.read_reg("cx")
        dx = cpu.read_reg("dx")
        virtine.hypercall_count += 1
        try:
            return self._isa_hypercall_body(virtine, nr, bx, cx, dx)
        except HypercallDenied as denied:
            # Same fate as a hosted guest tripping the policy.
            raise VirtineCrash(f"virtine {virtine.name!r} killed: {denied}") from denied

    def _isa_hypercall_body(
        self, virtine: Virtine, nr: Hypercall, bx: int, cx: int, dx: int
    ) -> bool:
        vm = virtine.shell.vm
        cpu = vm.cpu
        if nr is Hypercall.EXIT:
            self._policy_gate(virtine, nr)
            virtine.exit_code = bx
            return True
        if nr is Hypercall.SNAPSHOT:
            self._policy_gate(virtine, nr)
            self._capture(virtine, payload=None, hosted=False)
            return False
        error_value = cpu.mode.mask  # all-ones: the guest-visible errno
        try:
            if nr in (Hypercall.READ, Hypercall.RECV):
                count = min(dx, self.ISA_MAX_TRANSFER)
                data = self._dispatch(virtine, nr, (bx, count))
                self.clock.advance(self.costs.memcpy(len(data)))
                vm.memory.write(cx, data)
                cpu.write_reg("ax", len(data))
            elif nr in (Hypercall.WRITE, Hypercall.SEND):
                if dx > self.ISA_MAX_TRANSFER:
                    raise HypercallError(nr, "EINVAL", f"transfer {dx} too large")
                data = vm.memory.read(cx, dx)
                self.clock.advance(self.costs.memcpy(len(data)))
                cpu.write_reg("ax", int(self._dispatch(virtine, nr, (bx, data))))
            elif nr in (Hypercall.OPEN, Hypercall.STAT):
                if dx > 4096:
                    raise HypercallError(nr, "ENAMETOOLONG", f"path length {dx}")
                raw = vm.memory.read(cx, dx)
                path = raw.decode("utf-8", errors="strict")
                args = (path, bx) if nr is Hypercall.OPEN else (path,)
                cpu.write_reg("ax", int(self._dispatch(virtine, nr, args)))
            elif nr is Hypercall.CLOSE:
                self._dispatch(virtine, nr, (bx,))
                cpu.write_reg("ax", 0)
            else:
                # Remaining numbers carry scalars only.
                result = self._dispatch(virtine, nr, (bx, cx))
                cpu.write_reg("ax", int(result) if isinstance(result, int) else 0)
        except HypercallError as error:
            virtine.audit.record(nr, allowed=True, detail=str(error))
            cpu.write_reg("ax", error_value)
        except UnicodeDecodeError:
            cpu.write_reg("ax", error_value)
        return False

    # -- hypercall dispatch -------------------------------------------------------------
    def dispatch_hosted_hypercall(self, virtine: Virtine, nr: Hypercall, args: tuple) -> Any:
        """Full-cost hypercall from a hosted guest: exit, dispatch, re-enter.

        The exits are "doubly expensive due to the ring transitions
        necessitated by KVM" (Section 6.3): the guest pays the world
        switch out, the ioctl return to userspace, the handler's own host
        syscalls, and the ioctl + world switch back in.
        """
        costs = self.costs
        self.clock.advance(costs.VMRUN_EXIT + costs.ioctl())
        virtine.hypercall_count += 1
        try:
            result = self._dispatch(virtine, nr, args)
            self._charge_marshalling(args, result)
            return result
        finally:
            self.clock.advance(costs.ioctl() + costs.KVM_RUN_CHECKS + costs.VMRUN_ENTRY)

    def _charge_marshalling(self, args: tuple, result: Any) -> None:
        """Data crossing the boundary is copied, not shared (Section 3)."""
        moved = sum(len(a) for a in args if isinstance(a, (bytes, bytearray)))
        if isinstance(result, (bytes, bytearray)):
            moved += len(result)
        if moved:
            self.clock.advance(self.costs.memcpy(moved))

    def _policy_gate(self, virtine: Virtine, nr: Hypercall) -> None:
        allowed = virtine.policy.allows(nr)
        virtine.audit.record(nr, allowed)
        if not allowed:
            raise HypercallDenied(nr)

    def _dispatch(self, virtine: Virtine, nr: Hypercall, args: tuple) -> Any:
        self._policy_gate(virtine, nr)
        handler = virtine.handlers.get(nr)
        if handler is None:
            raise HypercallError(nr, "ENOSYS", "no handler installed")
        return handler(HypercallRequest(nr=nr, args=args, virtine=virtine))

    # -- snapshots ------------------------------------------------------------------------
    def capture_snapshot(self, virtine: Virtine, payload: Any) -> None:
        """SNAPSHOT hypercall from a hosted guest (policy-checked)."""
        costs = self.costs
        self.clock.advance(costs.VMRUN_EXIT + costs.ioctl())
        virtine.hypercall_count += 1
        try:
            self._policy_gate(virtine, Hypercall.SNAPSHOT)
            self._capture(virtine, payload, hosted=True)
        finally:
            self.clock.advance(costs.ioctl() + costs.KVM_RUN_CHECKS + costs.VMRUN_ENTRY)

    def _capture(self, virtine: Virtine, payload: Any, hosted: bool) -> None:
        vm = virtine.shell.vm
        pages = vm.memory.capture_dirty()
        snap = Snapshot(
            image_name=virtine.image.name,
            pages=pages,
            cpu_state=vm.cpu.save_state(),
            hosted_payload=copy.deepcopy(payload),
            hosted=hosted,
        )
        self.clock.advance(self.costs.memcpy(snap.copy_size))
        self.snapshots.put(getattr(virtine, "snapshot_key", virtine.image.name), snap)

    # -- cleanup --------------------------------------------------------------------------
    def _close_virtine_fds(self, virtine: Virtine) -> None:
        """Close any host fds the virtine leaked (isolation hygiene)."""
        for fd in list(virtine.owned_fds):
            try:
                self.kernel.fs.close(fd)
            except Exception:
                pass
            virtine.owned_fds.discard(fd)


class VirtineSession:
    """A retained virtine: one shell and runtime kept across invocations.

    Implements the "no teardown" optimisation of Section 6.5: "since all
    virtines are cleared and reset after execution, paying the cost of
    tearing down the JavaScript engine can be avoided ... by retaining
    it."  Only safe when every invocation belongs to the same trust
    domain; the session's shell never returns to the shared pool until
    :meth:`close`.
    """

    def __init__(
        self,
        wasp: Wasp,
        image: VirtineImage,
        *,
        policy: Policy | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        resources: dict[int, Any] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        use_snapshot: bool = True,
    ) -> None:
        self.wasp = wasp
        self.image = image
        self.use_snapshot = use_snapshot
        self._pool = wasp.pool_for(wasp.memory_size_for(image))
        self._shell: Shell | None = None
        self._virtine: Virtine | None = None
        self._persistent: dict = {}
        self._policy = policy
        self._handlers = handlers
        self._resources = resources
        self._allowed_paths = allowed_paths
        self.invocations = 0

    def invoke(self, args: Any = None, max_steps: int = 50_000_000) -> VirtineResult:
        """Run one invocation, reusing the retained context if present."""
        wasp = self.wasp
        region = wasp.clock.region()
        from_snapshot = False
        if self._shell is None:
            self._shell = self._pool.acquire()
            self._virtine = wasp._make_virtine(
                self.image, self._shell, self._policy, self._handlers,
                self._resources, self._allowed_paths,
            )
            self._virtine.snapshot_key = self.image.name
            snap = wasp.snapshots.get(self.image.name) if self.use_snapshot else None
            if snap is not None and snap.hosted:
                from_snapshot = True
                wasp._restore_snapshot(self._virtine, snap)
                wasp._run_hosted(
                    self._virtine, args,
                    restored=snap.payload_copy(), persistent=self._persistent,
                    from_snapshot=True,
                )
                wasp._run_loop(self._virtine, args, max_steps)
            else:
                wasp._install_image(self._virtine)
                self._run_cold(args, max_steps)
        else:
            # Warm re-entry: the runtime inside the retained context is
            # still alive; one KVM_RUN round trip re-enters it.
            virtine = self._virtine
            assert virtine is not None
            virtine.policy.reset()
            wasp.clock.advance(wasp.costs.vmrun_roundtrip())
            wasp._run_hosted(virtine, args, restored=self._persistent.get("state"),
                             persistent=self._persistent)
        self.invocations += 1
        virtine = self._virtine
        assert virtine is not None
        return VirtineResult(
            value=virtine.result,
            exit_code=virtine.exit_code,
            cycles=region.stop(),
            hypercall_count=virtine.hypercall_count,
            audit=virtine.audit,
            from_snapshot=from_snapshot,
            ax=self._shell.vm.cpu.regs["ax"],
        )

    def _run_cold(self, args: Any, max_steps: int) -> None:
        virtine = self._virtine
        assert virtine is not None
        wasp = self.wasp
        shell = virtine.shell
        while True:
            info = shell.vcpu.run(max_steps)
            if info.reason is ExitReason.HLT:
                return
            if info.reason is ExitReason.IO_OUT and info.port == HOSTED_ENTER_PORT:
                wasp._run_hosted(virtine, args, restored=None,
                                 persistent=self._persistent)
                continue
            if info.reason is ExitReason.IO_OUT and info.port == HCALL_PORT:
                if wasp._isa_hypercall(virtine, info.value):
                    return
                continue
            raise VirtineCrash(f"session virtine stopped unexpectedly: {info}")

    def close(self, clean: CleanMode = CleanMode.SYNC) -> None:
        """Release the retained shell back to the pool."""
        if self._shell is not None:
            self._pool.release(self._shell, clean)
            self._shell = None
            self._virtine = None
            self._persistent.clear()

    def __enter__(self) -> "VirtineSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
