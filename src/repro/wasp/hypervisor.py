"""Wasp: the embeddable micro-hypervisor (Section 5).

Wasp "is a userspace runtime system built as a library that host
programs (virtine clients) can link against" -- here, a Python class that
applications instantiate.  It owns the KVM device model, the shell pools,
the snapshot store, and the hypercall dispatch path; clients configure
policies and handlers per launch.

The launch path follows Figure 6: a request arrives (A), a context is
provisioned from the pool (D) or created clean (C), the image (or its
snapshot) is installed, the guest runs with hypercall interposition, and
on return the context is cleared (E) and cached for reuse (B).
"""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.faults import NO_FAULTS, FaultPlan, FaultSite, InjectedFault
from repro.host.kernel import HostKernel
from repro.units import us_to_cycles
from repro.hw.clock import BackgroundAccountant
from repro.hw.costs import COSTS, CostModel
from repro.hw.memory import GuestMemoryError
from repro.hw.vmx import STEP_BUDGET_EXHAUSTED, ExitReason
from repro.kvm.device import KVM
from repro.replay.stream import (
    NO_RECORD,
    InterfaceRecorder,
    ReplayDivergence,
    encode_value,
)
from repro.runtime.image import HOSTED_ENTER_PORT, VirtineImage
from repro.telemetry.registry import NO_TELEMETRY, TelemetryRegistry
from repro.trace.tracer import NO_TRACE, Category, Tracer
from repro.wasp.guestenv import GuestEnv, GuestExitRequested
from repro.wasp.handlers import CannedHandlers
from repro.wasp.hypercall import (
    HCALL_PORT,
    Hypercall,
    HypercallDenied,
    HypercallError,
    dispatch_handler,
    policy_gate,
)
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.pool import CleanMode, ShardedShellPool, Shell, ShellPool
from repro.wasp.snapshot import RestoreMode, Snapshot, SnapshotGone, SnapshotStore
from repro.wasp.virtine import (
    GuestFault,
    HostFault,
    PolicyKill,
    Virtine,
    VirtineCrash,
    VirtineHang,
    VirtineResult,
    VirtineTimeout,
)

if False:  # pragma: no cover - typing only (avoids a module-load cycle)
    from repro.wasp.admission import Deadline

#: Guest memory below the image: boot scratch, GDT, real-mode stack.
_LOW_RESERVED = 0x8000
#: Guest memory above the image: page tables + protected/long stack.
_RUNTIME_HEADROOM = 0x300000

#: Errno names that indicate the *host* plane failed underneath the
#: virtine (vs. the guest passing bad arguments).  A crash rooted in one
#: of these classifies as a retryable :class:`HostFault`.
HOST_PLANE_ERRNOS = frozenset({"EIO", "ENOSPC", "ENOMEM", "ECONNRESET", "EPIPE", "ETIMEDOUT"})

#: Cycles a :data:`FaultSite.GUEST_STALL` fault wedges the guest for
#: before its hypercall lands: long enough to trip the default watchdog
#: no-progress threshold (1.5 ms) with margin.
GUEST_STALL_CYCLES = us_to_cycles(5_000.0)


def _bucket_size(required: int) -> int:
    """Round a memory requirement up to a power-of-two pool bucket."""
    size = 4 * 1024 * 1024
    while size < required:
        size *= 2
    return size


class Wasp:
    """The embeddable virtine hypervisor."""

    BACKENDS = ("kvm", "hyperv")

    def __init__(
        self,
        kernel: HostKernel | None = None,
        costs: CostModel = COSTS,
        backend: str = "kvm",
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
        trace: bool = False,
        fast_paths: bool = True,
        jit: bool = True,
        cores: int = 1,
        recorder: InterfaceRecorder | None = None,
        replay: Any = None,
        snapshot_store: SnapshotStore | None = None,
        telemetry: TelemetryRegistry | bool | None = None,
    ) -> None:
        #: Escape hatch for the hw-layer fast-path engine (software TLB,
        #: predecoded dispatch, bulk restores).  Simulated cycles are
        #: identical either way; ``False`` selects the reference paths.
        self.fast_paths = fast_paths
        #: Superblock JIT (DESIGN.md SS15): rides on the fast path, so
        #: ``fast_paths=False`` implies ``jit=False``.  The backend device
        #: owns the :class:`~repro.hw.jit.JitDomain`, whose per-image
        #: block caches give pooled/restored shells their warm start.
        self.jit = bool(jit) and fast_paths
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        if kernel is not None:
            self.kernel = kernel
            if fault_plan is not None:
                self.kernel.fault_plan = self.fault_plan
        else:
            self.kernel = HostKernel(costs=costs, fault_plan=self.fault_plan)
        self.costs = costs
        self.clock = self.kernel.clock
        #: Tracing is off by default: every instrumentation site calls the
        #: :data:`~repro.trace.tracer.NO_TRACE` no-op unconditionally, so
        #: the disabled path adds zero simulated cycles and no branches.
        if tracer is not None:
            self.tracer = tracer
        elif trace:
            self.tracer = Tracer(self.clock)
        else:
            self.tracer = NO_TRACE
        self.tracer.bind(self.clock)
        #: Telemetry mirrors the tracer contract: off by default, every
        #: site calls :data:`~repro.telemetry.registry.NO_TELEMETRY`
        #: unconditionally, and an enabled registry only ever *reads*
        #: the clock -- zero simulated cycles either way.
        if isinstance(telemetry, TelemetryRegistry):
            self.telemetry = telemetry
        elif telemetry:
            self.telemetry = TelemetryRegistry()
        else:
            self.telemetry = NO_TELEMETRY
        self.telemetry.bind(self.clock)
        #: Boundary-stream recorder: every interface site (launches,
        #: hypercalls, vmexits, device calls) reports through it; the
        #: default :data:`NO_RECORD` makes each report a no-op.
        self.recorder = recorder if recorder is not None else NO_RECORD
        #: Active :class:`~repro.replay.substrate.ReplaySession`, when
        #: this Wasp re-executes a recorded boundary stream instead of
        #: running a live guest.
        self.replay = replay
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown VMM backend {backend!r} (use one of {self.BACKENDS})")
        if replay is not None:
            # The replay substrate feeds recorded vmexits to the handler
            # plane; no guest interpreter is ever constructed.
            from repro.replay.substrate import ReplayHyperV, ReplayKVM

            device_cls = ReplayKVM if backend == "kvm" else ReplayHyperV
            self.kvm = device_cls(self.clock, costs, fault_plan=self.fault_plan,
                                  tracer=self.tracer, fast_paths=fast_paths,
                                  recorder=self.recorder, session=replay)
        elif backend == "kvm":
            self.kvm = KVM(self.clock, costs, fault_plan=self.fault_plan,
                           tracer=self.tracer, fast_paths=fast_paths,
                           recorder=self.recorder, jit=self.jit)
        else:
            from repro.hyperv.device import HyperV

            self.kvm = HyperV(self.clock, costs, fault_plan=self.fault_plan,
                              tracer=self.tracer, fast_paths=fast_paths,
                              recorder=self.recorder, jit=self.jit)
        self.backend = backend
        #: Backend-neutral alias ("kvm" is the historical attribute name).
        self.vmm = self.kvm
        self.background = BackgroundAccountant()
        #: Reset-state registry.  The in-memory :class:`SnapshotStore`
        #: by default; pass a :class:`repro.store.cas.DurableSnapshotStore`
        #: for content-addressed, journaled, crash-consistent storage
        #: (same surface -- the launch path additionally absorbs its
        #: :class:`~repro.store.cas.SnapshotGone` GC-race signal).
        self.snapshots = snapshot_store if snapshot_store is not None else SnapshotStore()
        self.canned = CannedHandlers(self.kernel)
        if cores <= 0:
            raise ValueError(f"need at least one core, got {cores}")
        #: Shell-pool sharding degree: with ``cores > 1`` every bucket
        #: becomes a :class:`ShardedShellPool` (per-core free lists with
        #: cross-shard work-stealing) and ``launch(core=...)`` routes
        #: provisioning to that core's shard.
        self.cores = cores
        self._pools: dict[int, ShellPool | ShardedShellPool] = {}
        self.launches = 0
        #: High-water marks of the JIT domain's monotonic stats already
        #: drained into telemetry counters (delta harvest per launch).
        self._jit_harvested: dict[tuple, int] = {}
        #: Launches killed by step budget or cycle deadline.
        self.timeouts = 0
        #: Snapshot restores that failed integrity and fell back cold.
        self.snapshot_fallbacks = 0
        #: The attached :class:`repro.wasp.supervisor.Supervisor`, if any
        #: (set by the supervisor; read by :func:`repro.wasp.metrics.collect`).
        self.supervisor = None
        #: The attached :class:`repro.wasp.admission.Watchdog`, if any
        #: (set by the watchdog; consulted at every preemption point).
        self.watchdog = None

    # -- pools ---------------------------------------------------------------
    def memory_size_for(self, image: VirtineImage) -> int:
        """The pool bucket an image's virtines draw shells from."""
        required = _LOW_RESERVED + image.size + _RUNTIME_HEADROOM
        return _bucket_size(required)

    def pool_for(self, memory_size: int) -> ShellPool | ShardedShellPool:
        if memory_size not in self._pools:
            if self.cores > 1:
                self._pools[memory_size] = ShardedShellPool(
                    self.kvm, memory_size, background=self.background,
                    fault_plan=self.fault_plan, shards=self.cores,
                    telemetry=self.telemetry,
                )
            else:
                self._pools[memory_size] = ShellPool(
                    self.kvm, memory_size, background=self.background,
                    fault_plan=self.fault_plan, telemetry=self.telemetry,
                )
        return self._pools[memory_size]

    def _pool_view(self, image: VirtineImage, core: int):
        """The launch path's provisioning handle: the bucket pool, bound
        to ``core``'s shard when the pool is sharded."""
        pool = self.pool_for(self.memory_size_for(image))
        if isinstance(pool, ShardedShellPool):
            return pool.view(core)
        return pool

    # -- launch ------------------------------------------------------------------
    def launch(
        self,
        image: VirtineImage,
        *,
        policy: Policy | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        resources: dict[int, Any] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        args: Any = None,
        use_snapshot: bool = True,
        snapshot_key: str | None = None,
        restore_mode: RestoreMode = RestoreMode.EAGER,
        pooled: bool = True,
        clean: CleanMode = CleanMode.SYNC,
        max_steps: int = 50_000_000,
        deadline_cycles: int | None = None,
        deadline: "Deadline | None" = None,
        core: int = 0,
    ) -> VirtineResult:
        """Run ``image`` in a fresh virtine and return its result.

        ``pooled=False`` forces scratch context creation (the "Wasp"
        series of Figure 8); otherwise shells are drawn from and returned
        to the per-size pool under the ``clean`` discipline.  When
        ``use_snapshot`` is set and the image has a stored reset state,
        boot and runtime initialisation are skipped (Figure 7) -- unless
        its integrity checksum mismatches, in which case the launch falls
        back to a cold boot and the rotted snapshot is dropped.

        ``deadline_cycles`` bounds the launch's *total* simulated-cycle
        budget; exceeding it (or ``max_steps``) raises a typed
        :class:`VirtineTimeout`.  ``deadline`` instead carries an
        *absolute* request-scoped
        :class:`~repro.wasp.admission.Deadline` minted where the request
        entered the system, so time already burned upstream (queueing,
        admission) counts against the same budget; when both are given
        the absolute deadline wins.  A launch that crashes for any reason
        never returns its shell to the pool unscrubbed -- the shell is
        quarantined (scrub + generation bump) instead.

        ``core`` selects the shell-pool shard on a multi-core Wasp
        (``cores > 1``); single-core Wasps ignore it.
        """
        self.launches += 1
        self.recorder.launch_begin(image.name, pooled, use_snapshot)
        pool = self._pool_view(image, core)
        region = self.clock.region()
        # The launch root span opens with the measurement region and
        # closes (in the outer ``finally``) after teardown, so its cycle
        # count equals ``VirtineResult.cycles`` exactly: nothing advances
        # the clock between ``region.stop()`` and the span's end.
        launch_span = self.tracer.begin(
            f"launch:{image.name}", Category.LAUNCH,
            image=image.name, pooled=pooled,
        )
        try:
            shell = pool.acquire() if pooled else pool.create_scratch()
            virtine = self._make_virtine(image, shell, policy, handlers, resources, allowed_paths)
            virtine.snapshot_key = snapshot_key or image.name
            virtine.started_cycles = self.clock.cycles
            virtine.last_beat_cycles = self.clock.cycles
            if deadline is not None:
                virtine.deadline = int(deadline.expires_at)
            elif deadline_cycles is not None:
                virtine.deadline = self.clock.cycles + deadline_cycles
            from_snapshot = False
            crashed = False
            try:
                snap = None
                if use_snapshot:
                    try:
                        snap = self._usable_snapshot(virtine.snapshot_key)
                    except SnapshotGone as gone:
                        shell = self._replace_gone_shell(pool, shell, pooled, gone)
                        virtine.shell = shell
                if snap is not None:
                    from_snapshot = True
                    self._restore_snapshot(virtine, snap, restore_mode)
                    if snap.hosted:
                        self._run_hosted(virtine, args, restored=snap.payload_copy(),
                                         from_snapshot=True)
                    self._run_loop(virtine, args, max_steps)
                else:
                    self._install_image(virtine)
                    self._run_loop(virtine, args, max_steps)
                final_ax = shell.vm.cpu.regs["ax"]
                milestones = [(m.marker, m.cycles) for m in shell.vm.milestones]
            except BaseException:
                crashed = True
                raise
            finally:
                self._close_virtine_fds(virtine)
                if pooled:
                    if crashed:
                        pool.quarantine(shell)
                    else:
                        pool.release(shell, clean)
                else:
                    shell.handle.close()
            launch_span.annotate(from_snapshot=from_snapshot)
        except BaseException as error:
            launch_span.annotate(error=type(error).__name__)
            self.recorder.launch_end(image.name, type(error).__name__,
                                     detail=str(error))
            self.telemetry.counter("launch_failures_total", image=image.name,
                                   error=type(error).__name__).inc()
            self.telemetry.record_flight("launch", "crash", image=image.name,
                                         error=type(error).__name__)
            raise
        finally:
            self.tracer.end(launch_span)
            self._harvest_jit_telemetry()
        self.recorder.launch_end(
            image.name, "ok", exit_code=virtine.exit_code,
            from_snapshot=from_snapshot,
            hypercalls=virtine.hypercall_count, ax=final_ax)
        # Nothing advances the clock between here and the region stop in
        # the result below, so the histogram sample equals
        # ``VirtineResult.cycles`` exactly.
        elapsed = region.stop()
        telemetry = self.telemetry
        telemetry.counter("launches_total", image=image.name,
                          backend=self.backend).inc()
        telemetry.histogram("launch_cycles", image=image.name).record(elapsed)
        telemetry.record_flight("launch", "ok", image=image.name,
                                cycles_cost=elapsed,
                                from_snapshot=from_snapshot)
        return VirtineResult(
            value=virtine.result,
            exit_code=virtine.exit_code,
            cycles=elapsed,
            hypercall_count=virtine.hypercall_count,
            audit=virtine.audit,
            from_snapshot=from_snapshot,
            ax=final_ax,
            milestones=milestones,
        )

    def _harvest_jit_telemetry(self) -> None:
        """Drain JIT-domain stat deltas into dimensional counters.

        The domain's plain-int stats are monotonic; this folds the growth
        since the previous harvest into telemetry (image-labelled where
        the stat is per-image).  Runs unconditionally -- with telemetry
        disabled every ``inc`` is the null-object no-op -- and never reads
        or advances the clock, so the sim-cost contract holds.
        """
        domain = getattr(self.kvm, "jit_domain", None)
        if domain is None:
            return
        telemetry = self.telemetry
        seen = self._jit_harvested
        for reason, total in domain.side_exits.items():
            delta = total - seen.get(("exit", reason), 0)
            if delta > 0:
                telemetry.counter("jit_side_exits_total",
                                  reason=reason).inc(delta)
                seen[("exit", reason)] = total
        for name, total in domain.counters.items():
            delta = total - seen.get(("ctr", name), 0)
            if delta > 0:
                telemetry.counter(f"jit_{name}_total").inc(delta)
                seen[("ctr", name)] = total
        for cache in domain.images():
            stats = cache.stats()
            for stat in ("compiles", "invalidations",
                         "warm_hits", "warm_misses"):
                total = stats[stat]
                delta = total - seen.get((stat, cache.name), 0)
                if delta > 0:
                    telemetry.counter(f"jit_{stat}_total",
                                      image=cache.name).inc(delta)
                    seen[(stat, cache.name)] = total

    def launch_many(
        self,
        image: VirtineImage,
        args_list: list[Any],
        *,
        return_exceptions: bool = False,
        **launch_kwargs: Any,
    ) -> list[VirtineResult | BaseException]:
        """Batched dispatch: one launch per ``args_list`` entry, in order.

        The batch routes through the attached planes exactly like single
        launches: when a :class:`~repro.wasp.supervisor.Supervisor` is
        attached, every entry passes its admission gate, breaker, and
        retry loop; otherwise :meth:`launch` runs directly.  Launches
        are spread round-robin across the pool shards on a multi-core
        Wasp unless the caller pins ``core=...`` explicitly.

        With ``return_exceptions`` set, a shed or crashed entry yields
        its exception in the result list instead of aborting the batch
        (the :mod:`asyncio.gather` convention) -- the cluster dispatch
        path relies on this so one poisoned request cannot sink its
        whole batch.
        """
        supervisor = self.supervisor
        launcher = supervisor.launch if supervisor is not None else self.launch
        pinned = "core" in launch_kwargs
        results: list[VirtineResult | BaseException] = []
        with self.tracer.span("launch_many", Category.LAUNCH,
                              image=image.name, batch=len(args_list)):
            for i, args in enumerate(args_list):
                if not pinned and self.cores > 1:
                    launch_kwargs["core"] = i % self.cores
                try:
                    results.append(launcher(image, args=args, **launch_kwargs))
                except Exception as error:
                    if not return_exceptions:
                        raise
                    results.append(error)
        return results

    def session(self, image: VirtineImage, **kwargs: Any) -> "VirtineSession":
        """Open a retained-context session (the "no teardown" mode)."""
        return VirtineSession(self, image, **kwargs)

    # -- internals ------------------------------------------------------------------
    def _make_virtine(
        self,
        image: VirtineImage,
        shell: Shell,
        policy: Policy | None,
        handlers: dict[Hypercall, Callable] | None,
        resources: dict[int, Any] | None,
        allowed_paths: tuple[str, ...] | None,
    ) -> Virtine:
        table = dict(self.canned.table())
        if handlers:
            table.update(handlers)
        virtine = Virtine(
            name=image.name,
            image=image,
            shell=shell,
            policy=policy if policy is not None else DefaultDenyPolicy(),
            handlers=table,
            resources=dict(resources or {}),
            allowed_path_prefixes=allowed_paths,
        )
        virtine.policy.reset()
        return virtine

    def _install_image(self, virtine: Virtine) -> None:
        """Cold path: copy the image into guest memory and reset the vCPU."""
        image = virtine.image
        vm = virtine.shell.vm
        with self.tracer.span("image.install", Category.BOOT, bytes=image.size):
            vm.reset()
            cost = self.costs.memcpy(image.size)
            self.clock.advance(cost)
            self.telemetry.counter("component_cycles_total",
                                   component="image.install").inc(int(cost))
            vm.memory.load_bytes(image.image_bytes, image.program.base)
            vm.interp.attach_program(image.program)

    def _usable_snapshot(self, key: str) -> Snapshot | None:
        """Fetch and integrity-check a stored reset state.

        This is the snapshot-corruption injection point: the plan can rot
        a stored bit here, exactly like cold storage would.  Verification
        is charged at checksum bandwidth; a mismatch drops the snapshot
        (it would poison every future restore) and returns ``None`` so
        the caller boots cold -- graceful degradation, not a crash.
        """
        snap = self.snapshots.get(key)
        if snap is None:
            return None
        with self.tracer.span("snapshot.verify", Category.SNAPSHOT, key=key) as span:
            if self.fault_plan.draw(FaultSite.SNAPSHOT_RESTORE, key):
                snap.corrupt()
            cost = self.costs.checksum(snap.copy_size)
            self.clock.advance(cost)
            self.telemetry.counter("component_cycles_total",
                                   component="snapshot.verify").inc(int(cost))
            if not snap.verify():
                self.snapshots.drop(key)
                self.snapshots.integrity_failures += 1
                self.snapshot_fallbacks += 1
                self.telemetry.counter("snapshot_fallbacks_total",
                                       reason="corrupt").inc()
                self.telemetry.record_flight("snapshot", "corrupt", key=key)
                span.annotate(outcome="corrupt")
                return None
            span.annotate(outcome="ok")
            return snap

    def _replace_gone_shell(
        self, pool: Any, shell: Shell, pooled: bool, gone: SnapshotGone,
    ) -> Shell:
        """Absorb the GC-vs-restore race: the reset state promised to
        this shell was collected between acquire and restore.

        The half-prepared shell is quarantined (reset + synchronous
        scrub + generation bump -- it must never re-enter circulation
        carrying provisioning state for an image that no longer has a
        reset state) and a fresh shell is provisioned for the cold
        boot.  The launch degrades, it does not raise.
        """
        self.snapshot_fallbacks += 1
        self.tracer.instant("snapshot.gone", Category.SNAPSHOT, key=gone.key)
        self.telemetry.counter("snapshot_fallbacks_total", reason="gone").inc()
        self.telemetry.record_flight("snapshot", "gone", key=gone.key)
        if pooled:
            pool.quarantine_defect(shell)
            return pool.acquire()
        shell.handle.close()
        return pool.create_scratch()

    def check_deadline(self, virtine: Virtine) -> None:
        """Kill a virtine that has outlived its cycle deadline (or hung).

        Called at every natural preemption point (hypercall dispatch,
        vCPU exits, hosted compute charges); raises a typed
        :class:`VirtineTimeout` carrying what the launch consumed.  When
        a :class:`~repro.wasp.admission.Watchdog` is attached it is
        consulted at the same points, so hangs (no heartbeat) are killed
        even on launches with no explicit deadline.
        """
        if virtine.deadline is not None and self.clock.cycles > virtine.deadline:
            self.timeouts += 1
            consumed = self.clock.cycles - virtine.started_cycles
            self.tracer.instant("deadline.exceeded", Category.SUPERVISION,
                                consumed=consumed)
            self.telemetry.counter("timeouts_total", kind="deadline").inc()
            self.telemetry.record_flight("timeout", "deadline",
                                         virtine=virtine.name,
                                         consumed=consumed)
            raise VirtineTimeout(
                f"virtine {virtine.name!r} exceeded its cycle deadline "
                f"({consumed:,} cycles consumed)",
                cycles=consumed,
            )
        if self.watchdog is not None:
            try:
                self.watchdog.check(virtine, self.clock.cycles)
            except VirtineHang as hang:
                self.timeouts += 1
                kind = getattr(getattr(hang, "kind", None), "value", None)
                self.tracer.instant(
                    "watchdog.kill", Category.SUPERVISION, kind=kind,
                )
                self.telemetry.counter("timeouts_total", kind="watchdog").inc()
                self.telemetry.record_flight("timeout", "watchdog",
                                             virtine=virtine.name,
                                             hang_kind=kind)
                raise

    def charge_guest(self, virtine: Virtine, cycles: int) -> None:
        """Advance the clock for hosted-guest compute, clamped at the
        deadline.

        When the charge would blow past the virtine's deadline, only the
        remaining budget (plus the single cycle that trips the strict
        check) is consumed and the work is cancelled *mid-compute* -- the
        guest does not finish on borrowed time only to have the result
        discarded.
        """
        if cycles < 0:
            raise GuestFault(
                f"virtine {virtine.name!r} charged negative guest cycles "
                f"({cycles})"
            )
        self.recorder.hosted_charge(cycles)
        if virtine.deadline is not None:
            remaining = virtine.deadline - self.clock.cycles
            if cycles > remaining:
                charged = max(0, remaining) + 1
                self.clock.advance(charged)
                self.tracer.component("guest.compute", charged, Category.GUEST)
                self.telemetry.counter("component_cycles_total",
                                       component="guest.compute").inc(charged)
                self.timeouts += 1
                self.telemetry.counter("timeouts_total",
                                       kind="mid_compute").inc()
                self.telemetry.record_flight("timeout", "mid_compute",
                                             virtine=virtine.name)
                consumed = self.clock.cycles - virtine.started_cycles
                raise VirtineTimeout(
                    f"virtine {virtine.name!r} cancelled at its cycle "
                    f"deadline mid-compute ({consumed:,} cycles consumed)",
                    cycles=consumed,
                )
        self.clock.advance(cycles)
        self.tracer.component("guest.compute", cycles, Category.GUEST)
        self.telemetry.counter("component_cycles_total",
                               component="guest.compute").inc(int(cycles))
        self.check_deadline(virtine)

    def _beat(self, virtine: Virtine) -> None:
        """Record observable guest progress (the watchdog's heartbeat)."""
        virtine.last_beat_cycles = self.clock.cycles
        virtine.beats += 1

    def _restore_snapshot(
        self,
        virtine: Virtine,
        snap: Snapshot,
        mode: RestoreMode = RestoreMode.EAGER,
    ) -> None:
        """Warm path: install the reset state instead of booting."""
        vm = virtine.shell.vm
        with self.tracer.span("snapshot.restore", Category.SNAPSHOT,
                              mode=mode.value, pages=len(snap.pages)):
            if mode is RestoreMode.EAGER:
                cost = self.costs.memcpy(snap.copy_size)
                self.clock.advance(cost)
                self.telemetry.counter("component_cycles_total",
                                       component="snapshot.restore").inc(int(cost))
                if self.fast_paths:
                    # Coalesced contiguous-run slice copies; identical
                    # state effects (and charge) to the per-page loop.
                    vm.memory.restore_runs(snap.page_runs(), snap.pages)
                else:
                    vm.memory.restore_pages(dict(snap.pages))
            else:
                # CoW: cheap shared mappings now, per-page copies on write.
                cost = self.costs.COW_MAP_PER_PAGE * len(snap.pages)
                self.clock.advance(cost)
                self.telemetry.counter("component_cycles_total",
                                       component="snapshot.restore").inc(int(cost))
                if self.fast_paths:
                    vm.memory.restore_runs_cow(snap.page_runs(), snap.pages)
                else:
                    vm.memory.restore_pages_cow(dict(snap.pages))
            vm.memory.mark_touched(snap.pages.keys())
            vm.cpu.load_state(snap.cpu_state)
            vm.interp.attach_program(virtine.image.program, reset_rip=False)
            vm.milestones.clear()
            self.snapshots.note_restore()

    def _deadline_slice(self, virtine: Virtine, steps_left: int) -> int:
        """Bound one KVM_RUN's step budget by the virtine's deadline.

        Every interpreter step costs at least one cycle, so ``remaining
        + 1`` steps provably crosses the deadline; slicing the budget
        guarantees a spinning guest is cancelled at its deadline instead
        of running out its full (possibly enormous) step budget first.
        """
        if virtine.deadline is None:
            return steps_left
        remaining = virtine.deadline - self.clock.cycles
        return max(1, min(steps_left, remaining + 1))

    def _run_loop(self, virtine: Virtine, args: Any, max_steps: int) -> None:
        """Drive KVM_RUN until the guest halts or exits."""
        shell = virtine.shell
        steps_left = max_steps
        while True:
            if shell.vm.cpu.halted:
                return
            try:
                info = shell.vcpu.run(self._deadline_slice(virtine, steps_left))
            except InjectedFault as fault:
                # The KVM_RUN ioctl itself failed: a host-plane fault,
                # not the guest's doing.
                raise HostFault(
                    f"virtine {virtine.name!r} lost its vCPU: {fault}"
                ) from fault
            steps_left -= info.steps
            self.check_deadline(virtine)
            if info.reason is ExitReason.HLT:
                return
            if info.reason is ExitReason.IO_OUT:
                if info.port == HOSTED_ENTER_PORT:
                    self._run_hosted(virtine, args, restored=None)
                    continue
                if info.port == HCALL_PORT:
                    if self._isa_hypercall(virtine, info.value):
                        return
                    continue
                raise GuestFault(
                    f"virtine {virtine.name!r} wrote unknown port {info.port:#x}"
                )
            if info.reason is ExitReason.IO_IN:
                # No device model exists; reads of unknown ports yield 0.
                shell.vcpu.complete_io_in(info.in_dest, 0)
                continue
            if info.detail == STEP_BUDGET_EXHAUSTED:
                if steps_left > 0:
                    # Only the deadline slice ran dry, not the caller's
                    # budget, and the deadline check above let us
                    # through -- keep driving the guest.
                    continue
                self.timeouts += 1
                self.telemetry.counter("timeouts_total",
                                       kind="step_budget").inc()
                self.telemetry.record_flight("timeout", "step_budget",
                                             virtine=virtine.name)
                raise VirtineTimeout(
                    f"virtine {virtine.name!r} exhausted its step budget "
                    f"({max_steps - steps_left:,} steps)",
                    steps=max_steps - steps_left,
                    cycles=self.clock.cycles - virtine.started_cycles,
                )
            raise GuestFault(f"virtine {virtine.name!r} shut down: {info.detail}")

    def _run_hosted(self, virtine: Virtine, args: Any, restored: Any,
                    persistent: dict | None = None,
                    from_snapshot: bool = False) -> None:
        """Execute the image's hosted entry function in guest context.

        Under replay (:attr:`replay` set) the recorded boundary stream
        stands in for the entry body: a
        :class:`~repro.replay.substrate.ScriptedEntry` re-issues the
        recorded boundary ops against this same handler plane, so every
        crash below re-fires from the handlers exactly as it did live.
        """
        if self.replay is not None:
            entry = self.replay.scripted_entry(virtine.name)
        else:
            entry = virtine.image.hosted_entry
            if entry is None:
                raise VirtineCrash(
                    f"virtine {virtine.name!r} reached the hosted trampoline "
                    "but its image has no hosted entry"
                )
        env = GuestEnv(self, virtine, args=args, restored=restored,
                       persistent=persistent, from_snapshot=from_snapshot)
        recorder = self.recorder
        recorder.hosted_begin()
        try:
            with self.tracer.span("guest.hosted", Category.GUEST):
                virtine.result = entry(env)
        except GuestExitRequested:
            recorder.hosted_end(["exit"])
        except ReplayDivergence:
            # A strict-replay verdict about the *hypervisor*, not the
            # guest: it must escape the crash taxonomy untouched.
            recorder.hosted_end(["divergence"])
            raise
        except HypercallDenied as error:
            # A guest that trips the policy dies; the host and other
            # virtines are unaffected (Section 3.3).
            crash = PolicyKill(f"virtine {virtine.name!r} killed: {error}")
            recorder.hosted_end(["crash", "PolicyKill", str(crash)])
            raise crash from error
        except HypercallError as error:
            # An unhandled hypercall error kills the virtine.  Who is at
            # fault decides retryability: a host-plane errno (EIO,
            # ECONNRESET...) means the host failed underneath a valid
            # request; anything else means the guest passed bad arguments.
            if error.errno_name in HOST_PLANE_ERRNOS:
                crash: VirtineCrash = HostFault(
                    f"virtine {virtine.name!r} killed by host failure: {error}"
                )
            else:
                crash = GuestFault(f"virtine {virtine.name!r} killed: {error}")
            recorder.hosted_end(["crash", type(crash).__name__, str(crash)])
            raise crash from error
        except VirtineCrash as crash:
            recorder.hosted_end(["crash", type(crash).__name__, str(crash)])
            raise
        except Exception as error:
            # An errant guest (the paper's example: a bad strcpy) crashes
            # only its own virtine; the fault is reported, not propagated
            # as a host failure.
            crash = GuestFault(
                f"virtine {virtine.name!r} faulted: {type(error).__name__}: {error}"
            )
            recorder.hosted_end(["crash", "GuestFault", str(crash)])
            raise crash from error
        else:
            recorder.hosted_end(["return", encode_value(virtine.result)])

    #: Largest single buffer an assembly guest may move per hypercall.
    ISA_MAX_TRANSFER = 1 << 20

    def _isa_hypercall(self, virtine: Virtine, nr_value: int) -> bool:
        """Dispatch an ``out HCALL_PORT, nr`` from assembly guest code.

        Register ABI (the co-designed convention of Section 5.1):

        * ``bx`` -- scalar argument (fd, handle, exit code, open flags)
        * ``cx`` -- guest-physical buffer address (data hypercalls)
        * ``dx`` -- buffer length
        * ``ax`` -- result on return (byte count / fd / size), or the
          all-ones error value when the handler rejects the call.

        Data crossing the boundary is copied through guest memory with
        memcpy cost, exactly like the hosted path.  Returns True when the
        virtine is done (EXIT).
        """
        try:
            nr = Hypercall(nr_value)
        except ValueError:
            raise GuestFault(f"virtine {virtine.name!r}: bad hypercall {nr_value}")
        vm = virtine.shell.vm
        cpu = vm.cpu
        bx = cpu.read_reg("bx")
        cx = cpu.read_reg("cx")
        dx = cpu.read_reg("dx")
        virtine.hypercall_count += 1
        self._beat(virtine)
        self.telemetry.counter("hypercalls_total", nr=nr.name).inc()
        try:
            with self.tracer.span(f"hypercall:{nr.name}", Category.HYPERCALL):
                exited = self._isa_hypercall_body(virtine, nr, bx, cx, dx)
        except HypercallDenied as denied:
            # Same fate as a hosted guest tripping the policy.
            raise PolicyKill(f"virtine {virtine.name!r} killed: {denied}") from denied
        self.recorder.isa_hypercall(nr.value, bx, cx, dx,
                                    cpu.read_reg("ax"), exited)
        return exited

    #: Hypercall numbers whose cx/dx registers name a guest buffer.
    _ISA_BUFFER_CALLS = frozenset({
        Hypercall.READ, Hypercall.RECV, Hypercall.WRITE, Hypercall.SEND,
        Hypercall.OPEN, Hypercall.STAT,
    })

    def _check_isa_buffer(
        self, virtine: Virtine, nr: Hypercall, cx: int, dx: int, size: int
    ) -> None:
        """Validate a guest-supplied buffer descriptor before any handler
        or memory path sees it.

        A hostile guest controls cx/dx completely; descriptors that are
        negative or straddle the guest-physical limit must land in the
        crash taxonomy as a precise :class:`GuestFault`, never surface as
        an ``IndexError``/``struct.error`` from the copy machinery.
        """
        if nr not in self._ISA_BUFFER_CALLS:
            return
        if dx < 0:
            raise GuestFault(
                f"virtine {virtine.name!r}: hypercall {nr.name} passed a "
                f"negative buffer length ({dx})"
            )
        if cx < 0:
            raise GuestFault(
                f"virtine {virtine.name!r}: hypercall {nr.name} passed a "
                f"negative buffer address ({cx})"
            )
        # Clamp to the per-call transfer cap first: oversized lengths are
        # the handlers' EINVAL/ENAMETOOLONG business, not a memory fault.
        limit = 4096 if nr in (Hypercall.OPEN, Hypercall.STAT) else self.ISA_MAX_TRANSFER
        window = min(dx, limit)
        if cx + window > size:
            raise GuestFault(
                f"virtine {virtine.name!r}: hypercall {nr.name} buffer "
                f"[{cx:#x}, {cx + window:#x}) straddles the guest-physical "
                f"limit {size:#x}"
            )

    def _isa_hypercall_body(
        self, virtine: Virtine, nr: Hypercall, bx: int, cx: int, dx: int
    ) -> bool:
        vm = virtine.shell.vm
        cpu = vm.cpu
        self._check_isa_buffer(virtine, nr, cx, dx, vm.memory.size)
        if nr is Hypercall.EXIT:
            self._policy_gate(virtine, nr)
            virtine.exit_code = bx
            return True
        if nr is Hypercall.SNAPSHOT:
            self._policy_gate(virtine, nr)
            self._capture(virtine, payload=None, hosted=False)
            return False
        error_value = cpu.mode.mask  # all-ones: the guest-visible errno
        try:
            if nr in (Hypercall.READ, Hypercall.RECV):
                count = min(dx, self.ISA_MAX_TRANSFER)
                data = self._dispatch(virtine, nr, (bx, count))
                self.clock.advance(self.costs.memcpy(len(data)))
                vm.memory.write(cx, data)
                cpu.write_reg("ax", len(data))
            elif nr in (Hypercall.WRITE, Hypercall.SEND):
                if dx > self.ISA_MAX_TRANSFER:
                    raise HypercallError(nr, "EINVAL", f"transfer {dx} too large")
                data = vm.memory.read(cx, dx)
                self.recorder.attach_guest_buffer(cx, data)
                self.clock.advance(self.costs.memcpy(len(data)))
                cpu.write_reg("ax", int(self._dispatch(virtine, nr, (bx, data))))
            elif nr in (Hypercall.OPEN, Hypercall.STAT):
                if dx > 4096:
                    raise HypercallError(nr, "ENAMETOOLONG", f"path length {dx}")
                raw = vm.memory.read(cx, dx)
                self.recorder.attach_guest_buffer(cx, raw)
                path = raw.decode("utf-8", errors="strict")
                args = (path, bx) if nr is Hypercall.OPEN else (path,)
                cpu.write_reg("ax", int(self._dispatch(virtine, nr, args)))
            elif nr is Hypercall.CLOSE:
                self._dispatch(virtine, nr, (bx,))
                cpu.write_reg("ax", 0)
            else:
                # Remaining numbers carry scalars only.
                result = self._dispatch(virtine, nr, (bx, cx))
                cpu.write_reg("ax", int(result) if isinstance(result, int) else 0)
        except GuestMemoryError as error:
            # The descriptor check above bounds the *window*; a handler
            # returning more data than the guest's buffer can hold (or a
            # fuzzer-forged descriptor) still lands here, typed.
            raise GuestFault(
                f"virtine {virtine.name!r}: hypercall {nr.name} touched "
                f"memory outside the guest ({error})"
            ) from error
        except HypercallError as error:
            virtine.audit.record(nr, allowed=True, detail=str(error))
            cpu.write_reg("ax", error_value)
        except UnicodeDecodeError:
            cpu.write_reg("ax", error_value)
        return False

    # -- hypercall dispatch -------------------------------------------------------------
    #: KVM snapshots full reset states; backends that cannot advertise
    #: False here and :attr:`GuestEnv.can_snapshot` reflects it.
    snapshot_capable = True

    def exit_boundary_cycles(self) -> int:
        """Cycles the EXIT hypercall's one-way boundary crossing costs.

        Exit pays only the outbound half of the round trip (there is no
        re-entry); each isolation backend prices this differently.
        """
        return int(self.costs.VMRUN_EXIT + self.costs.ioctl())

    def dispatch_hosted_hypercall(self, virtine: Virtine, nr: Hypercall, args: tuple) -> Any:
        """Full-cost hypercall from a hosted guest: exit, dispatch, re-enter.

        The exits are "doubly expensive due to the ring transitions
        necessitated by KVM" (Section 6.3): the guest pays the world
        switch out, the ioctl return to userspace, the handler's own host
        syscalls, and the ioctl + world switch back in.
        """
        costs = self.costs
        boundary = self.telemetry.counter("component_cycles_total",
                                          component="hypercall.boundary")
        with self.tracer.span(f"hypercall:{nr.name}", Category.HYPERCALL):
            out_cost = costs.VMRUN_EXIT + costs.ioctl()
            self.clock.advance(out_cost)
            boundary.inc(int(out_cost))
            virtine.hypercall_count += 1
            self.telemetry.counter("hypercalls_total", nr=nr.name).inc()
            # Open the op now so a mid-dispatch escape (timeout, stall
            # kill, injected fault) is visible as an op with no outcome.
            op = self.recorder.hosted_hypercall_begin(nr.value, args)
            if self.fault_plan.draw(FaultSite.GUEST_STALL, virtine.name):
                # The guest wedged before this hypercall landed: cycles pass
                # with no heartbeat, which an armed watchdog classifies as a
                # no-progress hang at the check below.
                self.tracer.instant("guest.stall", Category.GUEST,
                                    virtine=virtine.name)
                self.clock.advance(GUEST_STALL_CYCLES)
            self.check_deadline(virtine)
            self._beat(virtine)
            try:
                result = self._dispatch(virtine, nr, args)
                self._charge_marshalling(args, result)
                self.recorder.hosted_hypercall_end(op, "ok", result)
                return result
            except HypercallDenied:
                self.recorder.hosted_hypercall_end(op, "denied")
                raise
            except HypercallError as error:
                self.recorder.hosted_hypercall_end(op, "error", str(error))
                raise
            finally:
                back_cost = costs.ioctl() + costs.KVM_RUN_CHECKS + costs.VMRUN_ENTRY
                self.clock.advance(back_cost)
                boundary.inc(int(back_cost))

    def _charge_marshalling(self, args: tuple, result: Any) -> None:
        """Data crossing the boundary is copied, not shared (Section 3)."""
        moved = sum(len(a) for a in args if isinstance(a, (bytes, bytearray)))
        if isinstance(result, (bytes, bytearray)):
            moved += len(result)
        if moved:
            self.clock.advance(self.costs.memcpy(moved))

    def _policy_gate(self, virtine: Virtine, nr: Hypercall) -> None:
        policy_gate(virtine, nr)

    def _dispatch(self, virtine: Virtine, nr: Hypercall, args: tuple) -> Any:
        return dispatch_handler(virtine, nr, args)

    # -- snapshots ------------------------------------------------------------------------
    def capture_snapshot(self, virtine: Virtine, payload: Any) -> None:
        """SNAPSHOT hypercall from a hosted guest (policy-checked)."""
        costs = self.costs
        with self.tracer.span("hypercall:SNAPSHOT", Category.HYPERCALL):
            self.clock.advance(costs.VMRUN_EXIT + costs.ioctl())
            virtine.hypercall_count += 1
            self.recorder.hosted_snapshot(payload)
            try:
                self._policy_gate(virtine, Hypercall.SNAPSHOT)
                self._capture(virtine, payload, hosted=True)
            finally:
                self.clock.advance(costs.ioctl() + costs.KVM_RUN_CHECKS + costs.VMRUN_ENTRY)

    def _capture(self, virtine: Virtine, payload: Any, hosted: bool) -> None:
        vm = virtine.shell.vm
        with self.tracer.span("snapshot.capture", Category.SNAPSHOT) as span:
            pages = vm.memory.capture_dirty()
            self.recorder.mem_capture(sorted(pages))
            snap = Snapshot(
                image_name=virtine.image.name,
                pages=pages,
                cpu_state=vm.cpu.save_state(),
                hosted_payload=copy.deepcopy(payload),
                hosted=hosted,
            )
            cost = self.costs.memcpy(snap.copy_size)
            self.clock.advance(cost)
            self.telemetry.counter("component_cycles_total",
                                   component="snapshot.capture").inc(int(cost))
            self.telemetry.counter("snapshot_captures_total").inc()
            span.annotate(pages=len(pages))
            self.snapshots.put(getattr(virtine, "snapshot_key", virtine.image.name), snap)

    # -- cleanup --------------------------------------------------------------------------
    def _close_virtine_fds(self, virtine: Virtine) -> None:
        """Close any host fds the virtine leaked (isolation hygiene)."""
        for fd in list(virtine.owned_fds):
            try:
                self.kernel.fs.close(fd)
            except Exception:
                pass
            virtine.owned_fds.discard(fd)


class VirtineSession:
    """A retained virtine: one shell and runtime kept across invocations.

    Implements the "no teardown" optimisation of Section 6.5: "since all
    virtines are cleared and reset after execution, paying the cost of
    tearing down the JavaScript engine can be avoided ... by retaining
    it."  Only safe when every invocation belongs to the same trust
    domain; the session's shell never returns to the shared pool until
    :meth:`close`.
    """

    def __init__(
        self,
        wasp: Wasp,
        image: VirtineImage,
        *,
        policy: Policy | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        resources: dict[int, Any] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        use_snapshot: bool = True,
    ) -> None:
        self.wasp = wasp
        self.image = image
        self.use_snapshot = use_snapshot
        self._pool = wasp.pool_for(wasp.memory_size_for(image))
        self._shell: Shell | None = None
        self._virtine: Virtine | None = None
        self._persistent: dict = {}
        self._policy = policy
        self._handlers = handlers
        self._resources = resources
        self._allowed_paths = allowed_paths
        self.invocations = 0

    def invoke(
        self,
        args: Any = None,
        max_steps: int = 50_000_000,
        deadline_cycles: int | None = None,
        deadline: "Deadline | None" = None,
    ) -> VirtineResult:
        """Run one invocation, reusing the retained context if present.

        A crashing invocation poisons the retained context: the shell is
        quarantined (never blindly reinserted into the shared pool), the
        persistent state is discarded, and the next :meth:`invoke`
        rebuilds from scratch.
        """
        with self.wasp.tracer.span(f"invoke:{self.image.name}", Category.LAUNCH,
                                   image=self.image.name, session=True):
            try:
                return self._invoke(args, max_steps, deadline_cycles, deadline)
            except VirtineCrash:
                self._abandon_crashed()
                raise

    def _invoke(
        self, args: Any, max_steps: int, deadline_cycles: int | None,
        deadline: "Deadline | None" = None,
    ) -> VirtineResult:
        wasp = self.wasp
        region = wasp.clock.region()
        from_snapshot = False
        if self._shell is None:
            self._shell = self._pool.acquire()
            self._virtine = wasp._make_virtine(
                self.image, self._shell, self._policy, self._handlers,
                self._resources, self._allowed_paths,
            )
            self._virtine.snapshot_key = self.image.name
            self._arm(deadline_cycles, deadline)
            snap = None
            if self.use_snapshot:
                try:
                    snap = wasp._usable_snapshot(self.image.name)
                except SnapshotGone as gone:
                    self._shell = wasp._replace_gone_shell(
                        self._pool, self._shell, True, gone)
                    self._virtine.shell = self._shell
            if snap is not None and snap.hosted:
                from_snapshot = True
                wasp._restore_snapshot(self._virtine, snap)
                wasp._run_hosted(
                    self._virtine, args,
                    restored=snap.payload_copy(), persistent=self._persistent,
                    from_snapshot=True,
                )
                wasp._run_loop(self._virtine, args, max_steps)
            else:
                wasp._install_image(self._virtine)
                self._run_cold(args, max_steps)
        else:
            # Warm re-entry: the runtime inside the retained context is
            # still alive; one KVM_RUN round trip re-enters it.
            virtine = self._virtine
            assert virtine is not None
            virtine.policy.reset()
            self._arm(deadline_cycles, deadline)
            wasp.clock.advance(wasp.costs.vmrun_roundtrip())
            wasp._run_hosted(virtine, args, restored=self._persistent.get("state"),
                             persistent=self._persistent)
        self.invocations += 1
        virtine = self._virtine
        assert virtine is not None
        return VirtineResult(
            value=virtine.result,
            exit_code=virtine.exit_code,
            cycles=region.stop(),
            hypercall_count=virtine.hypercall_count,
            audit=virtine.audit,
            from_snapshot=from_snapshot,
            ax=self._shell.vm.cpu.regs["ax"],
        )

    def _arm(self, deadline_cycles: int | None,
             deadline: "Deadline | None" = None) -> None:
        """Reset the per-invocation timeout accounting."""
        virtine = self._virtine
        assert virtine is not None
        virtine.started_cycles = self.wasp.clock.cycles
        virtine.last_beat_cycles = self.wasp.clock.cycles
        if deadline is not None:
            virtine.deadline = int(deadline.expires_at)
        else:
            virtine.deadline = (
                self.wasp.clock.cycles + deadline_cycles
                if deadline_cycles is not None else None
            )

    def _abandon_crashed(self) -> None:
        """Quarantine the shell and drop all retained state post-crash."""
        if self._shell is not None:
            self._pool.quarantine(self._shell)
            self._shell = None
            self._virtine = None
            self._persistent.clear()

    def _run_cold(self, args: Any, max_steps: int) -> None:
        virtine = self._virtine
        assert virtine is not None
        wasp = self.wasp
        shell = virtine.shell
        steps_left = max_steps
        while True:
            try:
                info = shell.vcpu.run(wasp._deadline_slice(virtine, steps_left))
            except InjectedFault as fault:
                raise HostFault(
                    f"session virtine {virtine.name!r} lost its vCPU: {fault}"
                ) from fault
            steps_left -= info.steps
            wasp.check_deadline(virtine)
            if info.reason is ExitReason.HLT:
                return
            if info.reason is ExitReason.IO_OUT and info.port == HOSTED_ENTER_PORT:
                wasp._run_hosted(virtine, args, restored=None,
                                 persistent=self._persistent)
                continue
            if info.reason is ExitReason.IO_OUT and info.port == HCALL_PORT:
                if wasp._isa_hypercall(virtine, info.value):
                    return
                continue
            if info.detail == STEP_BUDGET_EXHAUSTED:
                if steps_left > 0:
                    continue
                wasp.timeouts += 1
                raise VirtineTimeout(
                    f"session virtine {virtine.name!r} exhausted its step "
                    f"budget ({max_steps - steps_left:,} steps)",
                    steps=max_steps - steps_left,
                    cycles=wasp.clock.cycles - virtine.started_cycles,
                )
            raise GuestFault(f"session virtine stopped unexpectedly: {info}")

    def close(self, clean: CleanMode = CleanMode.SYNC) -> None:
        """Release the retained shell back to the pool."""
        if self._shell is not None:
            self._pool.release(self._shell, clean)
            self._shell = None
            self._virtine = None
            self._persistent.clear()

    def __enter__(self) -> "VirtineSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
