"""Virtine migration and distributed services (Section 7.3).

"Because virtines implement an abstract machine model, are packaged
with their runtime environment, and employ similar semantics to RPC,
they allow for location transparency.  Virtines could therefore be
migrated to execute on remote machines just like containers ... If
virtines require host services or hardware not present in the local
machine, they can be migrated to a machine that does."

This module provides that: a :class:`Cluster` of Wasp nodes connected
by :class:`MigrationLink` s.  A virtine image (and, optionally, its
snapshot "reset state") migrates by transferring its bytes across the
link; invocation is location-transparent -- :meth:`Cluster.call` picks
a node that satisfies the image's capability requirements, migrates on
first use, and returns the result as if the call had been local.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.faults import NO_FAULTS, FaultPlan, FaultSite
from repro.runtime.image import VirtineImage
from repro.units import us_to_cycles
from repro.wasp.hypervisor import Wasp
from repro.wasp.snapshot import Snapshot
from repro.wasp.supervisor import CrashClass, classify
from repro.wasp.virtine import HostFault, VirtineCrash, VirtineResult


class MigrationError(Exception):
    """No node can host the virtine, or the transfer is invalid."""


class TransferDropped(MigrationError):
    """An image/snapshot transfer died on the wire (injected fault).

    Both sides have already paid the cycles for the partial transfer;
    the target has *not* gained residency.
    """


class TransferTampered(HostFault):
    """A migrated payload failed its wire digest on receive.

    Typed as a :class:`~repro.wasp.virtine.HostFault`: the host plane
    (the network, a compromised relay) corrupted the payload underneath
    a well-behaved workload.  The target fails *closed* -- no residency,
    no snapshot installed, the mismatch lands in the target supervisor's
    crash record -- and the caller may fail over to a different node.
    """

    def __init__(self, image_name: str, target: str,
                 sent: str, received: str) -> None:
        super().__init__(
            f"transfer of image {image_name!r} to node {target!r} failed "
            f"digest verification (sent {sent[:16]}, got {received[:16]})"
        )
        self.image_name = image_name
        self.target = target
        self.sent_digest = sent
        self.received_digest = received


def wire_digest(image: VirtineImage, snapshot: Snapshot | None) -> str:
    """sha256 over everything a migration puts on the wire.

    Covers the image bytes and -- when the reset state travels too --
    the snapshot's pages, architectural vCPU state, and integrity tag.
    The hosted payload is excluded for the same reason
    :meth:`Snapshot.compute_checksum` excludes it: it is an opaque host
    object with no stable wire representation.
    """
    digest = hashlib.sha256()
    digest.update(image.image_bytes)
    if snapshot is not None:
        for page in snapshot.sorted_pages():
            digest.update(page.to_bytes(8, "little"))
            digest.update(snapshot.pages[page])
        digest.update(repr(sorted(snapshot.cpu_state.items())).encode())
        digest.update(snapshot.checksum.to_bytes(8, "little", signed=True))
    return digest.hexdigest()


@dataclass(frozen=True)
class MigrationLink:
    """A network link between nodes (datacenter-RPC-flavoured)."""

    bandwidth_gbps: float = 25.0
    latency_us: float = 10.0

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles one side spends moving ``nbytes`` across the link."""
        seconds = nbytes * 8 / (self.bandwidth_gbps * 1e9)
        return us_to_cycles(self.latency_us + seconds * 1e6)


@dataclass
class Node:
    """One machine in the cluster: a Wasp instance plus capabilities."""

    name: str
    wasp: Wasp = field(default_factory=Wasp)
    #: Host services/hardware this node offers (e.g. "gpu", "blobstore").
    capabilities: frozenset[str] = frozenset()
    #: Images whose bytes (and snapshots) are already resident here.
    resident: set[str] = field(default_factory=set)

    def hosts(self, image: VirtineImage) -> bool:
        return image.name in self.resident


class Cluster:
    """A set of nodes offering location-transparent virtine execution."""

    def __init__(
        self,
        link: MigrationLink | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.link = link if link is not None else MigrationLink()
        self.fault_plan = fault_plan if fault_plan is not None else NO_FAULTS
        self._nodes: dict[str, Node] = {}
        self.migrations = 0
        #: Transfers that died on the wire (injected faults).
        self.dropped_transfers = 0
        #: Transfers rejected at the target for a wire-digest mismatch.
        self.tampered_transfers = 0
        #: Calls completed on a second node after the first one failed.
        self.failovers = 0

    # -- topology -------------------------------------------------------------
    def add_node(self, name: str, capabilities: set[str] | None = None,
                 wasp: Wasp | None = None) -> Node:
        if name in self._nodes:
            raise MigrationError(f"node {name!r} already in cluster")
        node = Node(
            name=name,
            wasp=wasp if wasp is not None else Wasp(),
            capabilities=frozenset(capabilities or ()),
        )
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise MigrationError(f"no such node: {name!r}") from None

    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    # -- placement ------------------------------------------------------------------
    def place(
        self, image: VirtineImage, exclude: frozenset[str] = frozenset()
    ) -> Node:
        """Pick a node satisfying the image's required capabilities.

        Requirements come from ``image.metadata["requires"]`` (a set of
        capability names).  Nodes already hosting the image win ties.
        ``exclude`` removes nodes from consideration (failover placement
        after a node-local crash).
        """
        required = set(image.metadata.get("requires", ()))
        candidates = [
            node for node in self._nodes.values()
            if required <= node.capabilities and node.name not in exclude
        ]
        if not candidates:
            raise MigrationError(
                f"no node offers {sorted(required)} for image {image.name!r}"
                + (f" (excluding {sorted(exclude)})" if exclude else "")
            )
        resident = [node for node in candidates if node.hosts(image)]
        return resident[0] if resident else candidates[0]

    # -- migration -----------------------------------------------------------------------
    def migrate(
        self,
        image: VirtineImage,
        source: Node | None,
        target: Node,
        include_snapshot: bool = True,
    ) -> int:
        """Move an image (and optionally its reset state) to ``target``.

        Returns the transferred byte count.  Transfer cycles are charged
        on both sides' clocks (send and receive).

        The sender stamps the payload with :func:`wire_digest`; the
        receiver recomputes it over what actually arrived (a private
        copy -- migrated state is never shared by reference with the
        source) *before* activating anything.  A mismatch fails closed
        as :class:`TransferTampered`: no residency, no snapshot
        installed, and the crash is recorded with the target's
        supervisor so tampering is visible in its crash record.
        """
        nbytes = image.size
        snapshot = None
        if include_snapshot and source is not None:
            snapshot = source.wasp.snapshots.get(image.name)
            if snapshot is not None:
                nbytes += snapshot.copy_size
        cost = self.link.transfer_cycles(nbytes)
        if self.fault_plan.draw(FaultSite.MIGRATION_TRANSFER, image.name):
            # The link died mid-transfer: both sides burned (half) the
            # cycles, residency did not change hands.
            if source is not None:
                source.wasp.clock.advance(cost // 2)
            target.wasp.clock.advance(cost // 2)
            self.dropped_transfers += 1
            raise TransferDropped(
                f"transfer of image {image.name!r} to node {target.name!r} "
                "dropped mid-flight"
            )
        sent_digest = wire_digest(image, snapshot)
        # What the wire delivers is a copy of the sender's state, not a
        # reference to it; tampering corrupts the copy in flight.
        received = copy.deepcopy(snapshot) if snapshot is not None else None
        tampered = self.fault_plan.draw(FaultSite.MIGRATION_TAMPER, image.name)
        if tampered and received is not None:
            received.corrupt()
        if source is not None:
            source.wasp.clock.advance(cost)
        target.wasp.clock.advance(cost)
        # Receive-side verification, charged at checksum bandwidth.
        target.wasp.clock.advance(target.wasp.costs.checksum(nbytes))
        received_digest = wire_digest(image, received)
        if tampered and received is None:
            # No snapshot travelled, so the corruption hit the image
            # bytes themselves; the recomputed digest cannot match.
            received_digest = "0" * 64
        if received_digest != sent_digest:
            self.tampered_transfers += 1
            crash = TransferTampered(image.name, target.name,
                                     sent_digest, received_digest)
            supervisor = target.wasp.supervisor
            if supervisor is not None:
                supervisor.record_external_crash(image.name, crash)
            raise crash
        target.resident.add(image.name)
        if received is not None:
            target.wasp.snapshots.put(image.name, received)
        self.migrations += 1
        return nbytes

    # -- location-transparent invocation -----------------------------------------------------
    def call(
        self,
        image: VirtineImage,
        args: Any = None,
        source: Node | None = None,
        **launch_kwargs: Any,
    ) -> VirtineResult:
        """Invoke a virtine somewhere in the cluster, RPC-style.

        Placement is automatic; the image (and snapshot) migrates on
        first use of a node.  The caller pays the request/response link
        latency on the source clock; execution runs on the target.

        Failover: a dropped transfer or a *transient* crash on the
        target (host fault, timeout) fails the call over to a different
        node rather than back to the caller.  Deterministic crashes
        (guest faults, policy kills) would reproduce anywhere, so they
        propagate immediately.
        """
        excluded: set[str] = set()
        while True:
            target = self.place(image, exclude=frozenset(excluded))
            try:
                if not target.hosts(image):
                    self.migrate(image, source, target)
                # Request hop (marshalled args are small; charge the
                # latency).
                if source is not None and source is not target:
                    source.wasp.clock.advance(self.link.transfer_cycles(256))
                result = target.wasp.launch(image, args=args, **launch_kwargs)
            except TransferDropped:
                excluded.add(target.name)
                if not self._has_alternative(image, excluded):
                    raise
                self.failovers += 1
                continue
            except VirtineCrash as crash:
                transient = classify(crash) in (
                    CrashClass.HOST_FAULT, CrashClass.TIMEOUT,
                )
                excluded.add(target.name)
                if not transient or not self._has_alternative(image, excluded):
                    raise
                self.failovers += 1
                continue
            # Response hop.
            if source is not None and source is not target:
                source.wasp.clock.advance(self.link.transfer_cycles(256))
            return result

    def _has_alternative(self, image: VirtineImage, excluded: set[str]) -> bool:
        """Whether a failover target remains after excluding ``excluded``."""
        try:
            self.place(image, exclude=frozenset(excluded))
        except MigrationError:
            return False
        return True
