"""Virtine migration and distributed services (Section 7.3).

"Because virtines implement an abstract machine model, are packaged
with their runtime environment, and employ similar semantics to RPC,
they allow for location transparency.  Virtines could therefore be
migrated to execute on remote machines just like containers ... If
virtines require host services or hardware not present in the local
machine, they can be migrated to a machine that does."

This module provides that: a :class:`Cluster` of Wasp nodes connected
by :class:`MigrationLink` s.  A virtine image (and, optionally, its
snapshot "reset state") migrates by transferring its bytes across the
link; invocation is location-transparent -- :meth:`Cluster.call` picks
a node that satisfies the image's capability requirements, migrates on
first use, and returns the result as if the call had been local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime.image import VirtineImage
from repro.units import us_to_cycles
from repro.wasp.hypervisor import Wasp
from repro.wasp.virtine import VirtineResult


class MigrationError(Exception):
    """No node can host the virtine, or the transfer is invalid."""


@dataclass(frozen=True)
class MigrationLink:
    """A network link between nodes (datacenter-RPC-flavoured)."""

    bandwidth_gbps: float = 25.0
    latency_us: float = 10.0

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles one side spends moving ``nbytes`` across the link."""
        seconds = nbytes * 8 / (self.bandwidth_gbps * 1e9)
        return us_to_cycles(self.latency_us + seconds * 1e6)


@dataclass
class Node:
    """One machine in the cluster: a Wasp instance plus capabilities."""

    name: str
    wasp: Wasp = field(default_factory=Wasp)
    #: Host services/hardware this node offers (e.g. "gpu", "blobstore").
    capabilities: frozenset[str] = frozenset()
    #: Images whose bytes (and snapshots) are already resident here.
    resident: set[str] = field(default_factory=set)

    def hosts(self, image: VirtineImage) -> bool:
        return image.name in self.resident


class Cluster:
    """A set of nodes offering location-transparent virtine execution."""

    def __init__(self, link: MigrationLink | None = None) -> None:
        self.link = link if link is not None else MigrationLink()
        self._nodes: dict[str, Node] = {}
        self.migrations = 0

    # -- topology -------------------------------------------------------------
    def add_node(self, name: str, capabilities: set[str] | None = None,
                 wasp: Wasp | None = None) -> Node:
        if name in self._nodes:
            raise MigrationError(f"node {name!r} already in cluster")
        node = Node(
            name=name,
            wasp=wasp if wasp is not None else Wasp(),
            capabilities=frozenset(capabilities or ()),
        )
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise MigrationError(f"no such node: {name!r}") from None

    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    # -- placement ------------------------------------------------------------------
    def place(self, image: VirtineImage) -> Node:
        """Pick a node satisfying the image's required capabilities.

        Requirements come from ``image.metadata["requires"]`` (a set of
        capability names).  Nodes already hosting the image win ties.
        """
        required = set(image.metadata.get("requires", ()))
        candidates = [
            node for node in self._nodes.values()
            if required <= node.capabilities
        ]
        if not candidates:
            raise MigrationError(
                f"no node offers {sorted(required)} for image {image.name!r}"
            )
        resident = [node for node in candidates if node.hosts(image)]
        return resident[0] if resident else candidates[0]

    # -- migration -----------------------------------------------------------------------
    def migrate(
        self,
        image: VirtineImage,
        source: Node | None,
        target: Node,
        include_snapshot: bool = True,
    ) -> int:
        """Move an image (and optionally its reset state) to ``target``.

        Returns the transferred byte count.  Transfer cycles are charged
        on both sides' clocks (send and receive).
        """
        nbytes = image.size
        snapshot = None
        if include_snapshot and source is not None:
            snapshot = source.wasp.snapshots.get(image.name)
            if snapshot is not None:
                nbytes += snapshot.copy_size
        cost = self.link.transfer_cycles(nbytes)
        if source is not None:
            source.wasp.clock.advance(cost)
        target.wasp.clock.advance(cost)
        target.resident.add(image.name)
        if snapshot is not None:
            target.wasp.snapshots.put(image.name, snapshot)
        self.migrations += 1
        return nbytes

    # -- location-transparent invocation -----------------------------------------------------
    def call(
        self,
        image: VirtineImage,
        args: Any = None,
        source: Node | None = None,
        **launch_kwargs: Any,
    ) -> VirtineResult:
        """Invoke a virtine somewhere in the cluster, RPC-style.

        Placement is automatic; the image (and snapshot) migrates on
        first use of a node.  The caller pays the request/response link
        latency on the source clock; execution runs on the target.
        """
        target = self.place(image)
        if not target.hosts(image):
            self.migrate(image, source, target)
        # Request hop (marshalled args are small; charge the latency).
        if source is not None and source is not target:
            source.wasp.clock.advance(self.link.transfer_cycles(256))
        result = target.wasp.launch(image, args=args, **launch_kwargs)
        # Response hop.
        if source is not None and source is not target:
            source.wasp.clock.advance(self.link.transfer_cycles(256))
        return result
