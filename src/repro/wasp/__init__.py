"""Wasp: the embeddable virtine hypervisor (the paper's core system).

Public surface::

    from repro.wasp import Wasp, CleanMode, Hypercall
    from repro.wasp import DefaultDenyPolicy, PermissivePolicy, VirtineConfig

    wasp = Wasp()
    image = ImageBuilder().hosted("job", entry_fn)
    result = wasp.launch(image, policy=PermissivePolicy())
"""

from repro.wasp.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AdmissionEvent,
    AdmissionRejected,
    AdmissionTicket,
    AdmissionTrace,
    BoundedQueue,
    BrownoutLevel,
    Deadline,
    QueuedRequest,
    ShedPolicy,
    TokenBucket,
    Watchdog,
)
from repro.wasp.guestenv import GuestEnv, GuestExitRequested
from repro.wasp.handlers import CannedHandlers
from repro.wasp.hypercall import (
    AuditLog,
    HCALL_PORT,
    Hypercall,
    HypercallDenied,
    HypercallError,
    HypercallRequest,
)
from repro.wasp.client import VirtineClient
from repro.wasp.futures import VirtineExecutor, VirtineFuture
from repro.wasp.hypervisor import VirtineSession, Wasp
from repro.wasp.migration import Cluster, MigrationLink, Node, TransferDropped
from repro.wasp.supervisor import (
    BreakerConfig,
    BreakerOpen,
    BreakerState,
    CircuitBreaker,
    CrashClass,
    RetryPolicy,
    SupervisionEvent,
    Supervisor,
    classify,
)
from repro.wasp.policy import (
    BitmaskPolicy,
    DefaultDenyPolicy,
    DynamicDisablePolicy,
    OneShotPolicy,
    PermissivePolicy,
    Policy,
    VirtineConfig,
)
from repro.wasp.pool import CleanMode, ShardedShellPool, Shell, ShellPool
from repro.wasp.snapshot import RestoreMode, Snapshot, SnapshotStore
from repro.wasp.virtine import (
    GuestFault,
    HangKind,
    HostFault,
    PolicyKill,
    Virtine,
    VirtineCrash,
    VirtineHang,
    VirtineResult,
    VirtineTimeout,
)

__all__ = [
    "Wasp",
    "VirtineSession",
    "VirtineClient",
    "VirtineExecutor",
    "VirtineFuture",
    "Cluster",
    "MigrationLink",
    "Node",
    "TransferDropped",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionEvent",
    "AdmissionRejected",
    "AdmissionTicket",
    "AdmissionTrace",
    "BoundedQueue",
    "BrownoutLevel",
    "Deadline",
    "QueuedRequest",
    "ShedPolicy",
    "TokenBucket",
    "Watchdog",
    "Supervisor",
    "SupervisionEvent",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerConfig",
    "BreakerOpen",
    "BreakerState",
    "CrashClass",
    "classify",
    "RestoreMode",
    "GuestEnv",
    "GuestExitRequested",
    "CannedHandlers",
    "AuditLog",
    "HCALL_PORT",
    "Hypercall",
    "HypercallDenied",
    "HypercallError",
    "HypercallRequest",
    "Policy",
    "DefaultDenyPolicy",
    "PermissivePolicy",
    "BitmaskPolicy",
    "OneShotPolicy",
    "DynamicDisablePolicy",
    "VirtineConfig",
    "CleanMode",
    "Shell",
    "ShellPool",
    "ShardedShellPool",
    "Snapshot",
    "SnapshotStore",
    "Virtine",
    "VirtineCrash",
    "GuestFault",
    "HostFault",
    "PolicyKill",
    "VirtineTimeout",
    "VirtineHang",
    "HangKind",
    "VirtineResult",
]
