"""The virtine-client profile: reusable launch configuration.

A *virtine client* is "a host program that uses (links against) the
embeddable virtine hypervisor" (Section 2).  In practice a client makes
many launches with the same security configuration -- policy, handler
table, granted paths -- so :class:`VirtineClient` bundles that profile
once and reuses it, instead of threading five keyword arguments through
every call site.

Profiles are *factories* for policies (each launch gets a fresh policy
instance, so stateful policies like
:class:`~repro.wasp.policy.OneShotPolicy` reset naturally) and merge
per-call overrides on top of the profile defaults.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.image import VirtineImage
from repro.wasp.hypercall import Hypercall
from repro.wasp.hypervisor import VirtineSession, Wasp
from repro.wasp.policy import DefaultDenyPolicy, Policy
from repro.wasp.virtine import VirtineResult


class VirtineClient:
    """A reusable launch profile bound to a Wasp instance."""

    def __init__(
        self,
        wasp: Wasp | None = None,
        *,
        policy_factory: Callable[[], Policy] | None = None,
        handlers: dict[Hypercall, Callable] | None = None,
        allowed_paths: tuple[str, ...] | None = None,
        use_snapshot: bool = True,
        **default_launch_kwargs: Any,
    ) -> None:
        self.wasp = wasp if wasp is not None else Wasp()
        self.policy_factory = policy_factory or DefaultDenyPolicy
        self.handlers = dict(handlers or {})
        self.allowed_paths = allowed_paths
        self.use_snapshot = use_snapshot
        self.default_launch_kwargs = default_launch_kwargs
        self.launches = 0

    # -- launching -------------------------------------------------------------
    def launch(self, image: VirtineImage, **overrides: Any) -> VirtineResult:
        """Launch ``image`` under this profile (overrides win)."""
        kwargs: dict[str, Any] = {
            "policy": self.policy_factory(),
            "handlers": self.handlers,
            "allowed_paths": self.allowed_paths,
            "use_snapshot": self.use_snapshot,
        }
        kwargs.update(self.default_launch_kwargs)
        kwargs.update(overrides)
        self.launches += 1
        return self.wasp.launch(image, **kwargs)

    def session(self, image: VirtineImage, **overrides: Any) -> VirtineSession:
        """Open a retained-context session under this profile."""
        kwargs: dict[str, Any] = {
            "policy": self.policy_factory(),
            "handlers": self.handlers,
            "allowed_paths": self.allowed_paths,
            "use_snapshot": self.use_snapshot,
        }
        kwargs.update(overrides)
        return self.wasp.session(image, **kwargs)

    # -- profile evolution ---------------------------------------------------------
    def with_handler(self, nr: Hypercall, handler: Callable) -> "VirtineClient":
        """A copy of this profile with one handler added/replaced."""
        merged = dict(self.handlers)
        merged[nr] = handler
        return VirtineClient(
            self.wasp,
            policy_factory=self.policy_factory,
            handlers=merged,
            allowed_paths=self.allowed_paths,
            use_snapshot=self.use_snapshot,
            **self.default_launch_kwargs,
        )

    def restricted_to(self, *paths: str) -> "VirtineClient":
        """A copy confined to the given filesystem roots."""
        return VirtineClient(
            self.wasp,
            policy_factory=self.policy_factory,
            handlers=self.handlers,
            allowed_paths=tuple(paths),
            use_snapshot=self.use_snapshot,
            **self.default_launch_kwargs,
        )
