"""Canned hypercall handlers.

Virtine clients "can also choose from a variety of general-purpose
handlers that Wasp provides out-of-the-box" (Section 5.1).  These are
those handlers: each validates its arguments under the adversarial
assumptions of Section 3.2 (inputs may be manipulated; memory bounds and
handles must be checked) and then re-creates the call on the host kernel,
exactly as the paper's HTTP experiment describes ("a validated read()
will turn into a read() on the host filesystem", Section 6.3).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.host.filesystem import FsError
from repro.host.kernel import HostKernel
from repro.host.network import NetError, Socket
from repro.wasp.hypercall import Hypercall, HypercallError, HypercallRequest

#: Upper bound on a single hypercall transfer; larger requests are
#: rejected rather than trusted (guest-supplied sizes are adversarial).
MAX_TRANSFER = 1 << 20

Handler = Callable[[HypercallRequest], Any]


def _require(condition: bool, nr: Hypercall, errno_name: str, message: str) -> None:
    if not condition:
        raise HypercallError(nr, errno_name, message)


def _arg(request: HypercallRequest, index: int) -> Any:
    """Fetch a positional argument, rejecting short argument lists
    cleanly (adversarial guests may pass any arity)."""
    _require(
        index < len(request.args),
        request.nr,
        "EINVAL",
        f"missing argument {index} ({len(request.args)} supplied)",
    )
    return request.args[index]


def _checked_path(request: HypercallRequest, path: Any) -> str:
    _require(isinstance(path, str), request.nr, "EINVAL", "path must be a string")
    _require(len(path) < 4096, request.nr, "ENAMETOOLONG", "path too long")
    _require(".." not in path.split("/"), request.nr, "EACCES", "path traversal rejected")
    allowed_roots = request.virtine.allowed_path_prefixes
    if allowed_roots is not None:
        _require(
            any(path.startswith(root) for root in allowed_roots),
            request.nr,
            "EACCES",
            f"path {path!r} outside permitted roots",
        )
    return path


def _checked_count(request: HypercallRequest, count: Any) -> int:
    _require(isinstance(count, int), request.nr, "EINVAL", "count must be an int")
    _require(0 <= count <= MAX_TRANSFER, request.nr, "EINVAL", f"count {count} out of bounds")
    return count


def _checked_data(request: HypercallRequest, data: Any) -> bytes:
    _require(isinstance(data, (bytes, bytearray)), request.nr, "EINVAL", "data must be bytes")
    _require(len(data) <= MAX_TRANSFER, request.nr, "EINVAL", "transfer too large")
    return bytes(data)


def _owned_fd(request: HypercallRequest, fd: Any) -> int:
    _require(isinstance(fd, int), request.nr, "EINVAL", "fd must be an int")
    _require(fd in request.virtine.owned_fds, request.nr, "EBADF", f"fd {fd} not owned by virtine")
    return fd


def _socket_resource(request: HypercallRequest, handle: Any) -> Socket:
    _require(isinstance(handle, int), request.nr, "EINVAL", "handle must be an int")
    resource = request.virtine.resources.get(handle)
    _require(resource is not None, request.nr, "EBADF", f"no resource with handle {handle}")
    _require(isinstance(resource, Socket), request.nr, "ENOTSOCK", f"handle {handle} is not a socket")
    return resource


class CannedHandlers:
    """The out-of-the-box POSIX-like handler set, bound to a host kernel."""

    def __init__(self, kernel: HostKernel) -> None:
        self.kernel = kernel

    def table(self) -> dict[Hypercall, Handler]:
        """The handler table a client installs into Wasp."""
        return {
            Hypercall.EXIT: self.hc_exit,
            Hypercall.OPEN: self.hc_open,
            Hypercall.READ: self.hc_read,
            Hypercall.WRITE: self.hc_write,
            Hypercall.STAT: self.hc_stat,
            Hypercall.CLOSE: self.hc_close,
            Hypercall.SEND: self.hc_send,
            Hypercall.RECV: self.hc_recv,
        }

    # -- handlers ---------------------------------------------------------------
    def hc_exit(self, request: HypercallRequest) -> int:
        code = request.args[0] if request.args else 0
        _require(isinstance(code, int), request.nr, "EINVAL", "exit code must be an int")
        request.virtine.exit_code = code
        return 0

    def hc_open(self, request: HypercallRequest) -> int:
        path = _checked_path(request, _arg(request, 0))
        flags = _arg(request, 1) if len(request.args) > 1 else 0
        _require(isinstance(flags, int), request.nr, "EINVAL", "flags must be an int")
        try:
            fd = self.kernel.sys_open(path, flags)
        except FsError as error:
            raise HypercallError(request.nr, error.errno_name, path) from error
        request.virtine.owned_fds.add(fd)
        return fd

    def hc_read(self, request: HypercallRequest) -> bytes:
        fd = _owned_fd(request, _arg(request, 0))
        count = _checked_count(request, _arg(request, 1))
        try:
            return self.kernel.sys_read(fd, count)
        except FsError as error:
            raise HypercallError(request.nr, error.errno_name, f"fd {fd}") from error

    def hc_write(self, request: HypercallRequest) -> int:
        fd = _owned_fd(request, _arg(request, 0))
        data = _checked_data(request, _arg(request, 1))
        try:
            return self.kernel.sys_write(fd, data)
        except FsError as error:
            raise HypercallError(request.nr, error.errno_name, f"fd {fd}") from error

    def hc_stat(self, request: HypercallRequest) -> int:
        path = _checked_path(request, _arg(request, 0))
        try:
            return self.kernel.sys_stat(path).size
        except FsError as error:
            raise HypercallError(request.nr, error.errno_name, path) from error

    def hc_close(self, request: HypercallRequest) -> int:
        fd = _owned_fd(request, _arg(request, 0))
        try:
            self.kernel.sys_close(fd)
        except FsError as error:
            raise HypercallError(request.nr, error.errno_name, f"fd {fd}") from error
        request.virtine.owned_fds.discard(fd)
        return 0

    def hc_send(self, request: HypercallRequest) -> int:
        sock = _socket_resource(request, _arg(request, 0))
        data = _checked_data(request, _arg(request, 1))
        try:
            return self.kernel.sys_send(sock, data)
        except NetError as error:
            raise HypercallError(request.nr, error.errno_name, "send") from error

    def hc_recv(self, request: HypercallRequest) -> bytes:
        sock = _socket_resource(request, _arg(request, 0))
        count = _checked_count(request, _arg(request, 1))
        try:
            return self.kernel.sys_recv(sock, count)
        except NetError as error:
            raise HypercallError(request.nr, error.errno_name, "recv") from error
