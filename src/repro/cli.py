"""Command-line interface: ``python -m repro <command>``.

The artifact's ``make smoketest`` analogue plus quick experiment
runners.  Commands:

* ``smoketest`` -- exercise every subsystem end-to-end and report.
* ``boot``      -- print the Table 1 boot breakdown.
* ``creation``  -- print the Figure 8 creation-latency comparison.
* ``backends``  -- print the five-mechanism isolation spectrum (per
  backend: capabilities, creation cost, measured boundary crossing).
* ``metrics``   -- run a supervised workload under injected faults and
  dump the supervision counters (``--json`` for machine-readable).
* ``trace``     -- run a traced workload and emit the span timeline,
  per-phase histograms, and attribution (``--format json`` writes a
  Chrome trace-event file loadable at https://ui.perfetto.dev).
* ``admission-replay`` -- run a seeded burst workload through the
  overload-protected scheduler twice and verify the recorded admission
  trace replays identically (IRIS-style record-and-replay).
* ``replay``    -- the hypervisor-boundary record/replay plane:
  ``record`` a workload's boundary event stream, ``run`` it back through
  the live handler plane with no guest interpreter (byte-identical or
  exit 1), or ``fuzz`` seeded mutations of it and assert every hostile
  stream lands in the typed crash taxonomy.
* ``chaos``     -- the durability gauntlet: crash-point fuzz the durable
  snapshot store (kill + recover after every journal record), then run
  the seeded cluster chaos plan twice and assert exactly-once recovery
  with a byte-identical recovery signature.
* ``store``     -- durable-store utilities; ``store scrub <files...>``
  round-trips file bytes through a crash-recovered content-addressed
  store and verifies integrity end to end.
* ``info``      -- version, cost-model calibration summary.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.units import cycles_to_us


def _ok(label: str, detail: str = "") -> None:
    print(f"  [ok] {label}" + (f" ({detail})" if detail else ""))


def cmd_smoketest(_args: argparse.Namespace) -> int:
    """Run one scenario through every subsystem; fail loudly on any break."""
    from repro.apps.crypto.aes import AES128
    from repro.apps.http.client import RequestGenerator
    from repro.apps.http.server import StaticHttpServer
    from repro.apps.js.virtine_js import JsVirtineClient, python_base64
    from repro.hw.cpu import Mode
    from repro.runtime.image import ImageBuilder
    from repro.wasp import Wasp

    print("virtines smoketest")

    wasp = Wasp()
    builder = ImageBuilder()

    result = wasp.launch(builder.minimal(Mode.LONG64), use_snapshot=False)
    _ok("boot minimal virtine to long mode", f"{cycles_to_us(result.cycles):.1f} us")

    fib = wasp.launch(builder.fib(Mode.LONG64, 15), use_snapshot=False)
    if fib.ax != 610:
        print(f"  [FAIL] fib(15) in guest assembly returned {fib.ax}")
        return 1
    _ok("assembly fib(15) == 610 in guest context")

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    if AES128(key).encrypt_block(plaintext) != expected:
        print("  [FAIL] AES-128 FIPS vector mismatch")
        return 1
    _ok("AES-128 matches FIPS-197 appendix B")

    data = bytes(range(256)) * 4
    js = JsVirtineClient(wasp, use_snapshot=True)
    first = js.run(data)
    warm = js.run(data)
    if warm.encoded != python_base64(data):
        print("  [FAIL] JS base64 mismatch")
        return 1
    _ok("JS engine base64 in a virtine",
        f"cold {cycles_to_us(first.cycles):.0f} us, warm {cycles_to_us(warm.cycles):.0f} us")

    http_wasp = Wasp()
    http_wasp.kernel.fs.add_file("/srv/index.html", b"<html>smoke</html>")
    server = StaticHttpServer(http_wasp, port=8000, isolation="snapshot")
    generator = RequestGenerator(http_wasp.kernel, server, "/index.html")
    outcome = generator.one_request()
    if outcome.response.status != 200 or outcome.response.body != b"<html>smoke</html>":
        print("  [FAIL] HTTP served wrong content")
        return 1
    _ok("HTTP request served from a virtine",
        f"{cycles_to_us(outcome.latency_cycles):.0f} us, "
        f"{server.served[-1].hypercalls} hypercalls")

    print("smoketest passed")
    return 0


def cmd_boot(_args: argparse.Namespace) -> int:
    from repro.hw.clock import Clock
    from repro.hw.cpu import Mode
    from repro.hw.isa import Assembler
    from repro.hw.vmx import VirtualMachine
    from repro.runtime.boot import boot_source

    vm = VirtualMachine(8 * 1024 * 1024, Clock())
    vm.load_program(Assembler(0x8000).assemble(boot_source(Mode.LONG64)))
    vm.vmrun()
    print("boot component breakdown (cycles):")
    for component, cycles in sorted(
        vm.interp.component_cycles.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {component:28s} {cycles:>8,}")
    print(f"  {'total':28s} {sum(vm.interp.component_cycles.values()):>8,}")
    return 0


def cmd_creation(_args: argparse.Namespace) -> int:
    from repro.host.process import ProcessBaseline
    from repro.host.threads import PthreadBaseline
    from repro.runtime.image import ImageBuilder
    from repro.wasp import CleanMode, Wasp

    wasp = Wasp()
    image = ImageBuilder().hlt_only()
    wasp.launch(image, use_snapshot=False)
    wasp.launch(image, use_snapshot=False)
    rows = [
        ("function call", wasp.costs.FUNCTION_CALL),
        ("vmrun (hardware limit)", wasp.costs.vmrun_roundtrip()),
        ("Wasp+CA (pooled, async clean)",
         wasp.launch(image, use_snapshot=False, clean=CleanMode.ASYNC).cycles),
        ("Wasp+C (pooled)",
         wasp.launch(image, use_snapshot=False, clean=CleanMode.SYNC).cycles),
        ("pthread create+join", PthreadBaseline(wasp.kernel).create_and_join()),
        ("Wasp (scratch)",
         wasp.launch(image, use_snapshot=False, pooled=False).cycles),
        ("process spawn", ProcessBaseline(wasp.kernel).spawn()),
    ]
    print("execution-context creation latencies:")
    for label, cycles in rows:
        print(f"  {label:32s} {cycles:>10,} cyc  {cycles_to_us(cycles):>9.2f} us")
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    """The five-mechanism isolation spectrum, measured live.

    One row per backend: declared capabilities, context-creation cost,
    and a measured warm boundary crossing through the real launcher
    (the Table 2 matrix).  ``--json`` for machine-readable output.
    """
    from repro.baselines import spectrum_mechanisms
    from repro.host.backend import BACKEND_NAMES, caps_of, create_host

    spectrum = spectrum_mechanisms()
    rows = []
    for name in BACKEND_NAMES:
        mechanism = spectrum[name]
        caps = caps_of(create_host(name))
        crossing = mechanism.cross()
        creation = (mechanism.creation_cycles()
                    if hasattr(mechanism, "creation_cycles") else None)
        rows.append({
            "backend": name,
            "system": crossing.system,
            "mechanism": crossing.mechanism,
            "creation_cycles": creation,
            "crossing_cycles": crossing.cycles,
            "crossing_us": round(crossing.latency_us, 3),
            "caps": {
                "snapshot": caps.snapshot,
                "pooled": caps.pooled,
                "in_process": caps.in_process,
                "kill_on_violation": caps.kill_on_violation,
            },
        })

    if args.json:
        import json

        print(json.dumps({"backends": rows}, sort_keys=True, indent=2))
        return 0

    print("isolation spectrum (Table 2 matrix, measured):")
    print(f"  {'backend':10s} {'mechanism':28s} {'create cyc':>12s} "
          f"{'cross cyc':>10s} {'cross us':>9s}  caps")
    for row in rows:
        creation = (f"{row['creation_cycles']:,}"
                    if row["creation_cycles"] is not None else "-")
        caps = ",".join(k for k, v in row["caps"].items() if v) or "-"
        print(f"  {row['backend']:10s} {row['mechanism']:28s} {creation:>12s} "
              f"{row['crossing_cycles']:>10,} {row['crossing_us']:>9.2f}  {caps}")
    print("select with @virtine(backend=...) or create_host(name)")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Figure 9/10: parallel creation throughput vs. simulated cores."""
    from repro.cluster import parallel_creation

    core_counts = []
    n = 1
    while n < args.cores:
        core_counts.append(n)
        n *= 2
    core_counts.append(args.cores)

    rows = []
    for cores in core_counts:
        row = {"cores": cores}
        for variant, pooled in (("pooled", True), ("scratch", False)):
            report = parallel_creation(cores, args.launches,
                                       pooled=pooled, seed=args.seed)
            replay = parallel_creation(cores, args.launches,
                                       pooled=pooled, seed=args.seed)
            assert report.signature() == replay.signature(), (
                f"non-deterministic replay at cores={cores} {variant}"
            )
            row[variant] = {
                "throughput_per_s": report.throughput_per_s,
                "makespan_cycles": report.makespan_cycles,
                "steals": report.steals,
            }
        rows.append(row)

    if args.json:
        import json

        print(json.dumps(
            {"seed": args.seed, "launches": args.launches, "rows": rows},
            sort_keys=True, indent=2,
        ))
        return 0
    print(f"parallel virtine creation, {args.launches} launches, seed {args.seed}")
    print(f"  {'cores':>5s}  {'pooled/s':>14s}  {'scratch/s':>14s}  {'speedup':>8s}")
    base = rows[0]["pooled"]["throughput_per_s"]
    for row in rows:
        pooled = row["pooled"]["throughput_per_s"]
        scratch = row["scratch"]["throughput_per_s"]
        print(f"  {row['cores']:>5d}  {pooled:>14,.0f}  {scratch:>14,.0f}"
              f"  {pooled / base:>7.2f}x")
    print("determinism: every row replayed with an identical signature")
    return 0


def _cmd_metrics_cluster(args: argparse.Namespace) -> int:
    """``repro metrics --cores N``: the faulty workload on a cluster.

    Per-core samples aggregate through :func:`repro.wasp.metrics.
    aggregate` (throughput counters summed, ``hangs_by_kind`` and the
    other keyed maps merged per key, breaker states most-degraded-wins)
    and the JSON adds a ``per_core`` breakdown next to the merged
    ``primary`` view.
    """
    from repro.cluster.smp import VirtineCluster
    from repro.faults import FaultPlan, FaultSite
    from repro.host.filesystem import O_RDONLY
    from repro.runtime.image import ImageBuilder
    from repro.wasp import Hypercall, PermissivePolicy
    from repro.wasp.guestenv import GuestEnv
    from repro.wasp.metrics import aggregate, collect

    def plan_for(core_id: int) -> FaultPlan:
        # Independent per-core fault streams, derived from the one seed.
        return (
            FaultPlan(seed=args.seed * 100 + core_id)
            .fail(FaultSite.VCPU_RUN, rate=0.06)
            .fail(FaultSite.HOST_SYSCALL, rate=0.04)
            .fail(FaultSite.POOL_ACQUIRE, rate=0.04)
            .fail(FaultSite.SNAPSHOT_RESTORE, rate=0.03)
        )

    cluster = VirtineCluster(args.cores, seed=args.seed, supervised=True,
                             fault_plan_factory=plan_for)
    for engine in cluster.engines:
        engine.wasp.kernel.fs.add_file("/data/blob", b"x" * 4096)

    def entry(env: GuestEnv) -> int:
        if not env.from_snapshot:
            env.charge(20_000)
            env.snapshot()
        fd = env.hypercall(Hypercall.OPEN, "/data/blob", O_RDONLY)
        data = env.hypercall(Hypercall.READ, fd, 4096)
        env.hypercall(Hypercall.CLOSE, fd)
        env.charge_bytes(len(data))
        return len(data)

    image = ImageBuilder().hosted(name="metrics-job", entry=entry)
    report = cluster.launch_many(
        image, [None] * args.requests,
        policy=PermissivePolicy(), use_snapshot=True,
    )
    samples = [collect(engine.wasp) for engine in cluster.engines]
    merged = aggregate(samples)

    if args.json:
        import json

        payload = {
            "seed": args.seed,
            "requests": args.requests,
            "cores": args.cores,
            "served": report.launches,
            "failed": len(report.failures),
            "primary": merged.to_dict(),
            "per_core": [
                {"core": core_id, **sample.to_dict()}
                for core_id, sample in enumerate(samples)
            ],
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0

    print(f"supervised cluster workload: seed={args.seed} "
          f"requests={args.requests} cores={args.cores}")
    print(f"  served={report.launches} failed={len(report.failures)} "
          f"makespan={report.makespan_cycles:,} cyc steals={report.steals}")
    print("aggregate (all cores):")
    print(merged.summary())
    for core_id, sample in enumerate(samples):
        crashes = sum(sample.crashes_by_class.values())
        print(f"  core {core_id}: launches={sample.launches} "
              f"crashes={crashes} retries={sample.retries} "
              f"timeouts={sample.timeouts} "
              f"clock={sample.clock_cycles:,} cyc")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Supervised faulty workload + counter dump (deterministic per seed)."""
    if getattr(args, "cores", 1) > 1:
        return _cmd_metrics_cluster(args)
    from repro.apps.serverless.platform import SupervisedPlatform
    from repro.faults import FaultPlan, FaultSite
    from repro.host.filesystem import O_RDONLY
    from repro.runtime.image import ImageBuilder
    from repro.wasp import Hypercall, PermissivePolicy, Wasp
    from repro.wasp.guestenv import GuestEnv
    from repro.wasp.metrics import collect

    plan = (
        FaultPlan(seed=args.seed)
        .fail(FaultSite.VCPU_RUN, rate=0.06)
        .fail(FaultSite.HOST_SYSCALL, rate=0.04)
        .fail(FaultSite.POOL_ACQUIRE, rate=0.04)
        .fail(FaultSite.SNAPSHOT_RESTORE, rate=0.03)
    )
    # The primary captures into the journaled content-addressed store,
    # so the dump includes the durable-store counter surface (dedup
    # ratio, GC, scrub, journal) alongside the supervision counters.
    from repro.store import DurableSnapshotStore

    primary = Wasp(fault_plan=plan, snapshot_store=DurableSnapshotStore())
    fallback = Wasp()
    for wasp in (primary, fallback):
        wasp.kernel.fs.add_file("/data/blob", b"x" * 4096)

    def entry(env: GuestEnv) -> int:
        if not env.from_snapshot:
            env.charge(20_000)  # init work that snapshotting elides
            env.snapshot()
        fd = env.hypercall(Hypercall.OPEN, "/data/blob", O_RDONLY)
        data = env.hypercall(Hypercall.READ, fd, 4096)
        env.hypercall(Hypercall.CLOSE, fd)
        env.charge_bytes(len(data))
        return len(data)

    image = ImageBuilder().hosted(name="metrics-job", entry=entry)
    platform = SupervisedPlatform(primary, fallback)
    report = platform.run_workload(
        image,
        [None] * args.requests,
        policy=PermissivePolicy(),
        use_snapshot=True,
    )

    if args.json:
        import json

        payload = {
            "seed": args.seed,
            "requests": args.requests,
            "served": report.served,
            "degraded_to_fallback": report.degraded_count,
            "client_visible_failures": report.client_visible_failures,
            "primary": collect(primary).to_dict(),
            "fallback": collect(fallback).to_dict(),
            "fault_trace": [
                {"site": event.site.value, "nth": event.nth,
                 "detail": event.detail}
                for event in plan.trace
            ],
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0 if report.client_visible_failures == 0 else 1

    print(f"supervised workload: seed={args.seed} requests={args.requests}")
    print(
        f"  served={report.served} degraded_to_fallback={report.degraded_count} "
        f"client_visible_failures={report.client_visible_failures}"
    )
    print("primary node:")
    print(collect(primary).summary())
    print("fallback node:")
    print(collect(fallback).summary())
    print(f"fault trace: {len(plan.trace)} injected fault(s)")
    for event in plan.trace:
        detail = f" {event.detail}" if event.detail else ""
        print(f"  {event.site.value}#{event.nth}{detail}")
    return 0 if report.client_visible_failures == 0 else 1


def cmd_admission_replay(args: argparse.Namespace) -> int:
    """Deterministic overload demo + trace replay check.

    Runs the seeded burst workload through an overload-protected Vespid
    platform twice with identical configuration and asserts the two
    admission traces (shed / eviction / expiry / timeout decisions) are
    identical.  Exit 0 requires the replay to match, the queue to stay
    within its bound, and admitted p99 latency to stay within the
    configured deadline -- the platform sheds load instead of collapsing.
    """
    from repro.apps.serverless.vespid import VespidPlatform
    from repro.apps.serverless.workload import BurstyWorkload
    from repro.faults import FaultPlan, FaultSite
    from repro.wasp.admission import (
        AdmissionConfig,
        AdmissionController,
        AdmissionTrace,
        ShedPolicy,
    )

    arrivals = BurstyWorkload.paper_pattern(scale=args.scale, seed=args.seed).arrivals()

    def one_run():
        plan = FaultPlan(seed=args.seed)
        if args.burst_fault_rate > 0:
            plan.fail(FaultSite.BURST_ARRIVAL, rate=args.burst_fault_rate)
        controller = AdmissionController(
            AdmissionConfig(
                max_queue_depth=args.queue_depth,
                shed_policy=ShedPolicy(args.policy),
                rate=args.rate,
                burst=args.burst,
            ),
            fault_plan=plan,
        )
        platform = VespidPlatform(
            max_workers=args.workers,
            admission=controller,
            deadline_s=args.deadline_s,
        )
        return platform.run_with_admission(arrivals)

    recorded = one_run()
    replayed = one_run()
    match = recorded.signature() == replayed.signature()

    p99_ms = recorded.latency_percentile_ms(99.0)
    deadline_ms = args.deadline_s * 1000.0
    p99_ok = p99_ms <= deadline_ms
    queue_ok = recorded.queue_high_water <= args.queue_depth

    ctrl = recorded.admission
    print(f"admission replay: seed={args.seed} scale={args.scale} "
          f"workers={args.workers} policy={args.policy}")
    print(f"  arrivals={len(arrivals)} admitted={recorded.admitted} "
          f"completed={recorded.completed} timeouts={recorded.timeouts}")
    shed_detail = " ".join(
        f"{reason}={count}"
        for reason, count in sorted(ctrl.shed_by_reason.items()) if count
    ) or "none"
    print(f"  shed={recorded.shed} ({shed_detail})")
    print(f"  queue high water={recorded.queue_high_water}/{args.queue_depth} "
          f"[{'ok' if queue_ok else 'OVERFLOW'}]")
    print(f"  admitted p99={p99_ms:.1f} ms vs deadline={deadline_ms:.0f} ms "
          f"[{'ok' if p99_ok else 'MISSED'}]")
    print(f"  trace: {len(ctrl.trace)} decisions, replay "
          f"{'identical' if match else 'DIVERGED'}")

    if args.trace:
        import os

        if os.path.exists(args.trace):
            with open(args.trace, "r", encoding="utf-8") as fh:
                stored = AdmissionTrace.from_json(fh.read())
            disk_match = stored.signature() == ctrl.trace.signature()
            print(f"  stored trace {args.trace}: "
                  f"{'identical' if disk_match else 'DIVERGED'}")
            match = match and disk_match
        else:
            with open(args.trace, "w", encoding="utf-8") as fh:
                fh.write(ctrl.trace.to_json())
            print(f"  recorded trace -> {args.trace}")

    return 0 if (match and p99_ok and queue_ok) else 1


def _traced_echo(seed: int, requests: int, telemetry=None):
    from repro.apps.http.server import EchoServer
    from repro.wasp import Wasp

    wasp = Wasp(trace=True, telemetry=telemetry)
    echo = EchoServer(wasp, port=7)
    for i in range(requests):
        conn = wasp.kernel.sys_connect(7)
        wasp.kernel.sys_send(conn, b"ping %d" % i)
        echo.handle_one()
    return wasp


def _traced_http(seed: int, requests: int, telemetry=None):
    from repro.apps.http.client import RequestGenerator
    from repro.apps.http.server import StaticHttpServer
    from repro.wasp import Wasp

    wasp = Wasp(trace=True, telemetry=telemetry)
    wasp.kernel.fs.add_file("/srv/index.html", b"<html>trace</html>")
    server = StaticHttpServer(wasp, port=8080, isolation="snapshot")
    generator = RequestGenerator(wasp.kernel, server, "/index.html")
    for _ in range(requests):
        generator.one_request()
    return wasp


def _traced_serverless(seed: int, requests: int, telemetry=None):
    """A seeded faulty burst, so shed/retry/quarantine spans appear."""
    from repro.apps.serverless.platform import SupervisedPlatform
    from repro.faults import FaultPlan, FaultSite
    from repro.runtime.image import ImageBuilder
    from repro.wasp import PermissivePolicy, Wasp
    from repro.wasp.guestenv import GuestEnv

    plan = (
        FaultPlan(seed=seed)
        .fail(FaultSite.VCPU_RUN, rate=0.08)
        .fail(FaultSite.POOL_ACQUIRE, rate=0.05)
        .fail(FaultSite.SNAPSHOT_RESTORE, rate=0.05)
    )
    primary = Wasp(fault_plan=plan, trace=True, telemetry=telemetry)
    fallback = Wasp()

    def entry(env: GuestEnv) -> int:
        if not env.from_snapshot:
            env.charge(20_000)
            env.snapshot()
        env.charge_bytes(4096)
        return 0

    image = ImageBuilder().hosted(name="trace-job", entry=entry)
    SupervisedPlatform(primary, fallback).run_workload(
        image, [None] * requests, policy=PermissivePolicy(), use_snapshot=True,
    )
    return primary


TRACE_WORKLOADS = {
    "echo": _traced_echo,
    "http": _traced_http,
    "serverless": _traced_serverless,
}


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace a workload; print a timeline or write a Perfetto-loadable file."""
    import json

    from repro.trace import (
        attribution,
        phase_histograms,
        render_timeline,
        to_chrome_json,
        validate_chrome_trace,
    )

    registry = None
    if getattr(args, "telemetry", False):
        from repro.telemetry import TelemetryRegistry

        registry = TelemetryRegistry()
    wasp = TRACE_WORKLOADS[args.workload](args.seed, args.requests,
                                          telemetry=registry)
    tracer = wasp.tracer

    if args.format == "json":
        payload = to_chrome_json(tracer, registry)
        validate_chrome_trace(json.loads(payload))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload)
            print(f"wrote {args.out} ({len(payload):,} bytes; "
                  "load it at https://ui.perfetto.dev)")
        else:
            sys.stdout.write(payload)
        return 0

    print(f"traced workload: {args.workload} seed={args.seed} "
          f"requests={args.requests} ({len(list(tracer.walk()))} spans)")
    if tracer.roots:
        print()
        print(f"last root span timeline (of {len(tracer.roots)}):")
        print(render_timeline(tracer.roots[-1]))
    print()
    print("attribution (leaf cycles by category):")
    folded = attribution(tracer, by="category")
    total = sum(folded.values()) or 1
    for category, cycles in sorted(folded.items(), key=lambda kv: -kv[1]):
        print(f"  {category:12s} {cycles:>12,} cyc  {cycles / total:>6.1%}")
    print()
    print("per-phase latency histograms (cycles):")
    for name, histogram in sorted(phase_histograms(tracer).items()):
        print(f"  {name:28s} {histogram.summary()}")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Run a workload with the telemetry plane on; export the snapshot.

    The snapshot's ``signature()`` is the determinism contract: the
    same seed (and core count) must reproduce it byte-for-byte, so two
    invocations are directly comparable with ``sha256sum``.
    """
    from repro.telemetry import (
        SLOMonitor,
        TelemetryRegistry,
        TelemetrySnapshot,
        absorb_wasp,
        to_prometheus,
    )

    if args.cores > 1:
        from repro.cluster.smp import VirtineCluster
        from repro.runtime.image import ImageBuilder
        from repro.wasp import PermissivePolicy
        from repro.wasp.guestenv import GuestEnv

        cluster = VirtineCluster(args.cores, seed=args.seed, telemetry=True)

        def entry(env: GuestEnv) -> int:
            if not env.from_snapshot:
                env.charge(20_000)
                env.snapshot()
            env.charge_bytes(4096)
            return 0

        image = ImageBuilder().hosted(name="telemetry-job", entry=entry)
        cluster.launch_many(image, [None] * args.requests,
                            policy=PermissivePolicy(), use_snapshot=True)
        snapshot = cluster.telemetry_snapshot(
            meta={"workload": "cluster", "requests": args.requests},
            black_boxes=args.black_boxes,
        )
    else:
        registry = TelemetryRegistry()
        if args.slo_deadline:
            registry.add_slo(SLOMonitor(
                name="launch-p99", metric="launch_cycles",
                deadline_cycles=args.slo_deadline,
            ))
        wasp = TRACE_WORKLOADS[args.workload](args.seed, args.requests,
                                              telemetry=registry)
        absorb_wasp(registry, wasp)
        snapshot = TelemetrySnapshot.capture(
            registry,
            meta={"workload": args.workload, "seed": args.seed,
                  "requests": args.requests},
            black_boxes=args.black_boxes,
        )

    if args.format == "json":
        out = snapshot.to_json()
    elif args.format == "prom":
        out = to_prometheus(snapshot)
    else:
        out = snapshot.summary() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(out)
        print(f"wrote {args.out} ({len(out):,} bytes) "
              f"signature={snapshot.signature()}")
    else:
        sys.stdout.write(out)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``profile diff A B``: per-component cycle regression check.

    ``A`` and ``B`` are telemetry snapshot JSON files (``repro
    telemetry --format json --out ...``); the diff normalizes each
    component's attributed cycles per launch, so runs with different
    request counts still compare.  ``--gate`` exits 1 when any
    component regressed past the threshold.
    """
    import json

    from repro.telemetry import TelemetrySnapshot, diff_profiles

    base = TelemetrySnapshot.load(args.base)
    other = TelemetrySnapshot.load(args.other)
    diff = diff_profiles(base.to_dict(), other.to_dict(),
                         threshold=args.threshold)
    if args.json:
        print(json.dumps(diff.to_dict(), sort_keys=True, indent=2))
    else:
        print(diff.to_text())
    if args.gate and diff.regressions:
        return 1
    return 0


#: Workloads the boundary record/replay plane can drive (kept in sync
#: with :data:`repro.replay.workloads.REPLAY_WORKLOADS`, asserted there).
REPLAY_WORKLOAD_NAMES = ("echo", "faulty", "http_snapshot", "serverless")


def cmd_replay(args: argparse.Namespace) -> int:
    """Record, replay, or fuzz a hypervisor-boundary event stream."""
    import os

    from repro.replay import BoundaryStream, InterfaceFuzzer, record, replay

    if args.replay_verb == "record":
        stream = record(args.workload, seed=args.seed, requests=args.requests,
                        backend=args.backend)
        stream.save(args.out, indent=2)
        print(f"recorded {args.workload}: {len(stream.events)} boundary events")
        print(f"  signature {stream.signature()}")
        print(f"  artifact  {args.out}")
        return 0

    stream = BoundaryStream.load(args.artifact)
    if args.replay_verb == "run":
        report = replay(stream, strict=not args.hostile)
        print(f"replayed {stream.workload} "
              f"(seed={stream.params.get('seed')}, "
              f"requests={stream.params.get('requests')}, "
              f"backend={stream.params.get('backend')})")
        print(f"  recorded signature {report.recorded_signature}")
        print(f"  replayed signature {report.replayed_signature}")
        if report.ok:
            print("  byte-identical: handler responses, taxonomy verdicts, "
                  "and trace attribution all match")
            return 0
        for divergence in report.divergences:
            print(f"  divergence: {divergence}")
        return 1

    # fuzz
    seed = args.seed
    if seed is None:
        seed = int(os.environ.get("REPRO_IFUZZ_SEED", "1234"))
    fuzzer = InterfaceFuzzer(stream, seed=seed, artifacts_dir=args.artifacts)
    report = fuzzer.run(cases=args.cases, only_case=args.case)
    print(f"fuzzed {stream.workload}: {len(report.cases)} case(s), "
          f"seed {report.seed}")
    counts = report.outcome_counts()
    for outcome in sorted(counts):
        print(f"  {counts[outcome]:4d}  {outcome}")
    for case in report.failures:
        print(f"  FAIL case {case.index} [{case.mutation}]: {case.outcome} "
              f"{case.detail}")
        for problem in case.invariant_failures:
            print(f"        invariant: {problem}")
    if report.ok:
        print("  hostile-guest invariant held: every mutation resolved to a "
              "typed taxonomy verdict; host plane intact")
        return 0
    print(f"  reproduce: REPRO_IFUZZ_SEED={report.seed} python -m repro "
          f"replay fuzz {args.artifact} --case <index>")
    return 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Crash-point fuzz the store, then prove cluster chaos recovery.

    Exit 0 requires all three: every crash-point case recovered to the
    journal's consistent prefix, the chaos run upheld exactly-once
    semantics (no lost results, no duplicated effects, store integrity
    intact), and an identical-seed re-run produced a byte-identical
    recovery signature.
    """
    import json
    import os

    from repro.cluster.chaos import run_chaos
    from repro.store import CrashPointFuzzer

    seed = args.seed
    if seed is None:
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

    telemetry = getattr(args, "telemetry", False)
    fuzz = CrashPointFuzzer(seed=seed, min_cases=args.cases).run()
    first = run_chaos(seed, cores=args.cores, tasks=args.tasks,
                      telemetry=telemetry)
    second = run_chaos(seed, cores=args.cores, tasks=args.tasks,
                       telemetry=telemetry)
    deterministic = first.signature() == second.signature()
    ok = fuzz.ok and first.ok and deterministic

    if args.json:
        payload = {
            "seed": seed,
            "ok": ok,
            "deterministic": deterministic,
            "recovery_signature": first.signature(),
            "crash_point": fuzz.to_dict(),
            "chaos": first.to_dict(),
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0 if ok else 1

    print(f"durability gauntlet: seed={seed}")
    print(f"  crash-point fuzz: {fuzz.cases} cases "
          f"({fuzz.torn_cases} torn-tail) over {len(fuzz.seeds_used)} "
          f"workload seed(s), {fuzz.records_journaled} records journaled")
    if fuzz.failures:
        for case in fuzz.failures[:10]:
            print(f"    FAIL seed={case.seed} boundary={case.boundary} "
                  f"torn={case.torn}: {case.detail}")
    else:
        print("    every kill point recovered to the consistent journal "
              "prefix, scrub clean")
    print(f"  cluster chaos: cores={args.cores} tasks={args.tasks} "
          f"events fired={len(first.fired)} skipped={len(first.skipped)}")
    print(f"    dead cores={sorted(first.dead_cores)} "
          f"re-executions={first.reexecutions} "
          f"suppressed duplicate effects={first.suppressed_effects}")
    print(f"    store rot injected={first.corrupted_chunks} "
          f"restore fallbacks={first.snapshot_fallbacks} "
          f"tampered migrations={first.tampered_migrations} "
          f"dropped migrations={first.interrupted_migrations}")
    for violation in first.violations:
        print(f"    INVARIANT VIOLATED: {violation}")
    for failure in first.launch_failures:
        print(f"    LAUNCH FAILED: {failure}")
    if first.ok:
        print("    exactly-once held: no lost results, no duplicated "
              "effects, store integrity intact")
    if first.telemetry is not None:
        boxes = first.telemetry.get("black_boxes", {})
        entries = sum(len(b["entries"]) for b in boxes.values())
        print(f"    telemetry: {len(first.telemetry['instruments'])} "
              f"instruments, {entries} flight-recorder entries across "
              f"{len(boxes)} black box(es)")
    print(f"  recovery signature {first.signature()[:32]} "
          f"[{'replayed identically' if deterministic else 'DIVERGED'}]")
    if not ok:
        print(f"  reproduce: REPRO_CHAOS_SEED={seed} python -m repro chaos")
    return 0 if ok else 1


def cmd_store(args: argparse.Namespace) -> int:
    """``store scrub``: integrity-check files through the durable store.

    Each file's bytes are chunked into a content-addressed snapshot,
    journaled, recovered on a cloned medium (a simulated host crash),
    reassembled, and compared byte-for-byte against the original; the
    recovered store must also scrub clean.
    """
    from repro.store import DurableSnapshotStore
    from repro.wasp.snapshot import Snapshot

    chunk = 4096
    store = DurableSnapshotStore()
    originals: dict[str, bytes] = {}
    for path in args.paths:
        with open(path, "rb") as fh:
            data = fh.read()
        originals[path] = data
        pages = {
            i: data[i * chunk:(i + 1) * chunk]
            for i in range(-(-len(data) // chunk) or 1)
        }
        store.put(path, Snapshot(image_name=path, pages=pages,
                                 cpu_state={"rip": 0, "len": len(data)}),
                  pin=True)

    recovered = DurableSnapshotStore(store.medium.clone())
    problems: list[str] = []
    for path, data in originals.items():
        snap = recovered.get(path)
        if snap is None:
            problems.append(f"{path}: missing after crash recovery")
            continue
        blob = b"".join(snap.pages[p] for p in sorted(snap.pages))
        if blob != data:
            problems.append(f"{path}: bytes diverged after crash recovery")
    report = recovered.scrub(repair=False)
    if not report.clean:
        problems.append(
            f"scrub: {len(report.corrupt_chunks)} corrupt / "
            f"{len(report.missing_chunks)} missing chunks, "
            f"{report.refcount_repairs} refcount drift"
        )

    counters = recovered.counters()
    print(f"store scrub: {len(originals)} file(s), "
          f"{sum(len(d) for d in originals.values()):,} bytes")
    print(f"  chunks={counters['chunks']} "
          f"dedup_ratio={counters['dedup_ratio']:.2f} "
          f"journal_records={counters['journal_records']} "
          f"replays={counters['journal_replays']}")
    for problem in problems:
        print(f"  FAIL {problem}")
    if not problems:
        print("  every file recovered byte-identical; scrub clean")
    return 0 if not problems else 1


def cmd_jit(args: argparse.Namespace) -> int:
    """Superblock-JIT introspection over a deterministic hot workload.

    Launches recursive ``fib`` (the instruction-dense throughput
    workload) ``--launches`` times on one KVM device, then prints the
    device domain's compiled-block statistics (``stats``) or every live
    block with its guest source lines (``dump``).  Two launches of the
    same image demonstrate the per-image warm start: the second shell
    attaches the already-compiled cache.
    """
    from repro.hw.clock import Clock
    from repro.hw.cpu import Mode
    from repro.hw.vmx import ExitReason
    from repro.kvm.device import KVM
    from repro.runtime.image import ImageBuilder

    clock = Clock()
    kvm = KVM(clock)
    image = ImageBuilder().fib(Mode.LONG64, args.n)
    for _ in range(args.launches):
        handle = kvm.create_vm()
        handle.set_user_memory_region(4 * 1024 * 1024)
        vcpu = handle.create_vcpu()
        handle.load_program(image.program)
        info = vcpu.run()
        if info.reason is not ExitReason.HLT:  # pragma: no cover - guard
            print(f"workload did not halt: {info.reason}")
            return 1
        handle.close()
    domain = kvm.jit_domain
    if domain is None:  # pragma: no cover - jit force-disabled via env
        print("superblock JIT disabled")
        return 1
    if args.jit_verb == "stats":
        stats = domain.stats()
        if args.json:
            import json

            print(json.dumps(stats, sort_keys=True, indent=2))
            return 0
        print(f"threshold            {stats['threshold']}")
        print(f"blocks compiled      {stats['blocks_compiled']}")
        print(f"invalidations        {stats['invalidations']}")
        print(f"block runs           {stats['block_runs']}")
        print(f"block instructions   {stats['block_instructions']}")
        print("side exits:")
        for reason, count in stats["side_exits"].items():
            print(f"  {reason:<18} {count}")
        print("images:")
        for entry in stats["images"]:
            print(f"  {entry['image']}: {entry['blocks']} blocks, "
                  f"{entry['compiles']} compiles, "
                  f"{entry['invalidations']} invalidations, "
                  f"warm hit ratio {entry['warm_hit_ratio']:.2f}")
        return 0
    blocks = domain.dump()
    if args.json:
        import json

        print(json.dumps(blocks, sort_keys=True, indent=2))
        return 0
    for blk in blocks:
        print(f"{blk['image']} pc={blk['pc']:#x} entry={blk['entry']} "
              f"len={blk['length']} mask={blk['mask_bits']}b "
              f"paging={'on' if blk['paging'] else 'off'} "
              f"pages={blk['pages']}")
        for line in blk["instructions"]:
            print(f"    {line}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    from repro.hw.costs import COSTS
    from repro.units import TINKER_HZ

    print(f"virtines reproduction v{__version__}")
    print(f"simulated platform: AMD EPYC 7281 'tinker' @ {TINKER_HZ / 1e9:.2f} GHz")
    print("calibration anchors:")
    print(f"  EPT first-touch fault    {COSTS.EPT_FIRST_TOUCH_FAULT:>8,} cyc")
    print(f"  CR0.PE flip              {COSTS.CR0_PE_FLIP:>8,} cyc")
    print(f"  lgdt (real mode)         {COSTS.LGDT_REAL:>8,} cyc")
    print(f"  KVM_CREATE_VM            {COSTS.KVM_CREATE_VM_BASE:>8,} cyc")
    print(f"  vmrun round trip         {COSTS.vmrun_roundtrip():>8,} cyc")
    print(f"  memcpy                   {COSTS.MEMCPY_CYCLES_PER_BYTE:>8.3f} cyc/byte (6.7 GB/s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Virtines (EuroSys '22) reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("smoketest", help="exercise every subsystem").set_defaults(
        handler=cmd_smoketest
    )
    subparsers.add_parser("boot", help="Table 1 boot breakdown").set_defaults(
        handler=cmd_boot
    )
    subparsers.add_parser("creation", help="Figure 8 creation latencies").set_defaults(
        handler=cmd_creation
    )
    backends = subparsers.add_parser(
        "backends", help="five-mechanism isolation spectrum (Table 2 matrix)"
    )
    backends.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of text")
    backends.set_defaults(handler=cmd_backends)
    scale = subparsers.add_parser(
        "scale", help="Figure 9/10 SMP creation scaling (deterministic)"
    )
    scale.add_argument("--cores", type=int, default=8,
                       help="largest simulated core count to sweep (default 8)")
    scale.add_argument("--launches", type=int, default=64,
                       help="virtine creations per data point (default 64)")
    scale.add_argument("--seed", type=int, default=42,
                       help="scheduler interleaving seed (default 42)")
    scale.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    scale.set_defaults(handler=cmd_scale)
    metrics = subparsers.add_parser(
        "metrics", help="supervision counters under injected faults"
    )
    metrics.add_argument("--seed", type=int, default=1234,
                         help="fault-plan seed (default 1234)")
    metrics.add_argument("--requests", type=int, default=200,
                         help="requests to serve (default 200)")
    metrics.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")
    metrics.add_argument("--cores", type=int, default=1,
                         help="run on a simulated cluster and aggregate "
                              "per-core counters (default 1)")
    metrics.set_defaults(handler=cmd_metrics)
    trace = subparsers.add_parser(
        "trace", help="cycle-accurate span trace of a workload"
    )
    trace.add_argument("workload", nargs="?", default="echo",
                       choices=sorted(TRACE_WORKLOADS),
                       help="workload to trace (default echo)")
    trace.add_argument("--seed", type=int, default=1234,
                       help="fault-plan seed for faulty workloads (default 1234)")
    trace.add_argument("--requests", type=int, default=3,
                       help="requests to run (default 3)")
    trace.add_argument("--format", default="text", choices=["text", "json"],
                       help="text timeline or Chrome trace-event JSON")
    trace.add_argument("--out", default=None,
                       help="write JSON output to this path instead of stdout")
    trace.add_argument("--telemetry", action="store_true",
                       help="merge telemetry counter tracks (ph 'C') into "
                            "the JSON trace")
    trace.set_defaults(handler=cmd_trace)
    telemetry = subparsers.add_parser(
        "telemetry",
        help="deterministic telemetry snapshot of a workload",
    )
    telemetry.add_argument("workload", nargs="?", default="serverless",
                           choices=sorted(TRACE_WORKLOADS),
                           help="workload to run (default serverless)")
    telemetry.add_argument("--seed", type=int, default=1234,
                           help="workload seed (default 1234)")
    telemetry.add_argument("--requests", type=int, default=8,
                           help="requests to run (default 8)")
    telemetry.add_argument("--cores", type=int, default=1,
                           help="run on a simulated cluster with per-core "
                                "registries (default 1)")
    telemetry.add_argument("--format", default="text",
                           choices=["text", "json", "prom"],
                           help="summary text, canonical JSON snapshot, or "
                                "Prometheus exposition")
    telemetry.add_argument("--out", default=None,
                           help="write output to this path instead of stdout")
    telemetry.add_argument("--black-boxes", action="store_true",
                           help="include the flight-recorder black boxes")
    telemetry.add_argument("--slo-deadline", type=int, default=None,
                           help="attach a launch_cycles p99 SLO monitor at "
                                "this cycle deadline")
    telemetry.set_defaults(handler=cmd_telemetry)
    profile = subparsers.add_parser(
        "profile", help="telemetry profile tooling"
    )
    profile_verbs = profile.add_subparsers(dest="profile_verb", required=True)
    pdiff = profile_verbs.add_parser(
        "diff",
        help="compare two telemetry snapshots' per-component cycles",
    )
    pdiff.add_argument("base", help="baseline snapshot JSON path")
    pdiff.add_argument("other", help="candidate snapshot JSON path")
    pdiff.add_argument("--threshold", type=float, default=0.02,
                       help="relative per-launch regression threshold "
                            "(default 0.02)")
    pdiff.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    pdiff.add_argument("--gate", action="store_true",
                       help="exit 1 when any component regressed")
    pdiff.set_defaults(handler=cmd_profile)
    replay = subparsers.add_parser(
        "admission-replay",
        help="deterministic overload demo + admission-trace replay check",
    )
    replay.add_argument("--seed", type=int, default=42,
                        help="workload + fault seed (default 42)")
    replay.add_argument("--scale", type=float, default=0.25,
                        help="workload rate multiplier (default 0.25)")
    replay.add_argument("--workers", type=int, default=8,
                        help="platform worker cap (default 8)")
    replay.add_argument("--queue-depth", type=int, default=32,
                        help="bounded admission queue depth (default 32)")
    replay.add_argument("--policy", default="reject_newest",
                        choices=["reject_newest", "reject_oldest", "priority"],
                        help="load-shedding policy (default reject_newest)")
    replay.add_argument("--rate", type=float, default=None,
                        help="per-image token refill rate, req/s (default off)")
    replay.add_argument("--burst", type=float, default=16.0,
                        help="token bucket capacity (default 16)")
    replay.add_argument("--deadline-s", type=float, default=2.0,
                        help="per-request deadline, seconds (default 2.0)")
    replay.add_argument("--burst-fault-rate", type=float, default=0.0,
                        help="BURST_ARRIVAL fault probability (default 0)")
    replay.add_argument("--trace", default=None,
                        help="record/verify the admission trace at this path")
    replay.set_defaults(handler=cmd_admission_replay)
    boundary = subparsers.add_parser(
        "replay",
        help="record/replay/fuzz the hypervisor-boundary event stream",
    )
    verbs = boundary.add_subparsers(dest="replay_verb", required=True)
    rec = verbs.add_parser(
        "record", help="record a seeded workload's boundary stream"
    )
    rec.add_argument("workload", choices=REPLAY_WORKLOAD_NAMES,
                     help="workload to record")
    rec.add_argument("--seed", type=int, default=1234,
                     help="workload seed (default 1234)")
    rec.add_argument("--requests", type=int, default=4,
                     help="requests to drive (default 4)")
    rec.add_argument("--backend", default="kvm", choices=["kvm", "hyperv"],
                     help="VMM backend (default kvm)")
    rec.add_argument("--out", default="stream.json",
                     help="artifact path (default stream.json)")
    rec.set_defaults(handler=cmd_replay)
    run = verbs.add_parser(
        "run", help="re-execute the handler plane against a recorded stream"
    )
    run.add_argument("artifact", help="recorded boundary-stream artifact")
    run.add_argument("--hostile", action="store_true",
                     help="treat stream inconsistencies as guest faults "
                          "instead of divergences")
    run.set_defaults(handler=cmd_replay)
    fuzz = verbs.add_parser(
        "fuzz", help="mutate a recorded stream, assert typed containment"
    )
    fuzz.add_argument("artifact", help="recorded boundary-stream artifact")
    fuzz.add_argument("--cases", type=int, default=100,
                      help="seeded mutation cases to run (default 100)")
    fuzz.add_argument("--seed", type=int, default=None,
                      help="mutation seed (default $REPRO_IFUZZ_SEED or 1234)")
    fuzz.add_argument("--case", type=int, default=None,
                      help="replay exactly one case index")
    fuzz.add_argument("--artifacts", default=None,
                      help="dump failing cases' stream + crash report here")
    fuzz.set_defaults(handler=cmd_replay)
    chaos = subparsers.add_parser(
        "chaos",
        help="crash-point fuzz the durable store + cluster chaos recovery",
    )
    chaos.add_argument("--seed", type=int, default=None,
                       help="chaos seed (default $REPRO_CHAOS_SEED or 1234)")
    chaos.add_argument("--cases", type=int, default=200,
                       help="minimum crash-point cases to fuzz (default 200)")
    chaos.add_argument("--cores", type=int, default=4,
                       help="cluster cores for the chaos run (default 4)")
    chaos.add_argument("--tasks", type=int, default=24,
                       help="idempotent tasks in the chaos run (default 24)")
    chaos.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    chaos.add_argument("--telemetry", action="store_true",
                       help="attach the telemetry snapshot + flight-recorder "
                            "black boxes to the chaos report")
    chaos.set_defaults(handler=cmd_chaos)
    store = subparsers.add_parser(
        "store", help="durable snapshot-store utilities"
    )
    store_verbs = store.add_subparsers(dest="store_verb", required=True)
    scrub = store_verbs.add_parser(
        "scrub",
        help="round-trip files through a crash-recovered store, verify bytes",
    )
    scrub.add_argument("paths", nargs="+", help="files to integrity-check")
    scrub.set_defaults(handler=cmd_store)
    jit = subparsers.add_parser(
        "jit", help="superblock-JIT stats / compiled-block dump"
    )
    jit_verbs = jit.add_subparsers(dest="jit_verb", required=True)
    for verb, help_text in (
        ("stats", "run a hot workload, print the JIT domain's counters"),
        ("dump", "run a hot workload, print every live compiled block"),
    ):
        sub = jit_verbs.add_parser(verb, help=help_text)
        sub.add_argument("--n", type=int, default=15,
                         help="fib(n) workload size (default 15)")
        sub.add_argument("--launches", type=int, default=2,
                         help="shells to launch (>=2 shows warm start)")
        sub.add_argument("--json", action="store_true",
                         help="machine-readable output")
        sub.set_defaults(handler=cmd_jit)
    subparsers.add_parser("info", help="version + calibration").set_defaults(
        handler=cmd_info
    )
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
