"""The guest C library: a newlib analogue (Section 5.3).

"We created a virtine-specific port of newlib ... Newlib allows
developers to provide their own system call implementations; we simply
forward them to the hypervisor as a hypercall."

:class:`GuestLibc` is that layer for hosted guests: a POSIX-looking API
whose every system call forwards to the corresponding hypercall (and is
therefore subject to the client's policy), plus a real in-guest heap
allocator (:class:`GuestHeap`) that carves memory out of the virtine's
own address space -- "virtines that dynamically allocate memory are
possible with an execution environment that provides heap allocation,
but that memory is currently limited to the virtine context"
(Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wasp.guestenv import GuestEnv
from repro.wasp.hypercall import Hypercall

#: Where the guest heap lives (above the marshalling return area).
HEAP_BASE = 0x280000
HEAP_SIZE = 0x100000  # 1 MB
_ALIGN = 16

#: Cycles per malloc/free call (newlib's dlmalloc-style bookkeeping).
MALLOC_COST = 90
FREE_COST = 60


class GuestLibcError(Exception):
    """Heap exhaustion or misuse of the guest libc."""


@dataclass
class _Block:
    addr: int
    size: int
    free: bool


class GuestHeap:
    """A first-fit free-list allocator inside guest memory."""

    def __init__(self, env: GuestEnv, base: int = HEAP_BASE, size: int = HEAP_SIZE) -> None:
        self.env = env
        self.base = base
        self.size = size
        self._blocks: list[_Block] = [_Block(addr=base, size=size, free=True)]

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the guest address."""
        if size <= 0:
            raise GuestLibcError(f"malloc({size})")
        self.env.charge(MALLOC_COST)
        needed = (size + _ALIGN - 1) & ~(_ALIGN - 1)
        for index, block in enumerate(self._blocks):
            if block.free and block.size >= needed:
                if block.size > needed:
                    self._blocks.insert(
                        index + 1,
                        _Block(addr=block.addr + needed, size=block.size - needed, free=True),
                    )
                    block.size = needed
                block.free = False
                return block.addr
        raise GuestLibcError(f"out of guest heap ({size} bytes requested)")

    def free(self, addr: int) -> None:
        """Release an allocation (coalescing adjacent free blocks)."""
        self.env.charge(FREE_COST)
        for index, block in enumerate(self._blocks):
            if block.addr == addr and not block.free:
                block.free = True
                self._coalesce(index)
                return
        raise GuestLibcError(f"free of unallocated address {addr:#x}")

    def _coalesce(self, index: int) -> None:
        # Merge with the next block, then with the previous.
        blocks = self._blocks
        if index + 1 < len(blocks) and blocks[index + 1].free:
            blocks[index].size += blocks[index + 1].size
            del blocks[index + 1]
        if index > 0 and blocks[index - 1].free:
            blocks[index - 1].size += blocks[index].size
            del blocks[index]

    @property
    def free_bytes(self) -> int:
        return sum(block.size for block in self._blocks if block.free)

    @property
    def allocated_bytes(self) -> int:
        return sum(block.size for block in self._blocks if not block.free)


class GuestLibc:
    """POSIX-looking calls that forward to hypercalls (newlib style)."""

    def __init__(self, env: GuestEnv) -> None:
        self.env = env
        self.heap = GuestHeap(env)

    # -- memory --------------------------------------------------------------
    def malloc(self, size: int) -> int:
        return self.heap.malloc(size)

    def free(self, addr: int) -> None:
        self.heap.free(addr)

    def memcpy_in(self, addr: int, data: bytes) -> None:
        """Store bytes at a guest address (bounds-checked by memory)."""
        self.env.charge_bytes(len(data))
        self.env.memory.write(addr, data)

    def memcpy_out(self, addr: int, size: int) -> bytes:
        self.env.charge_bytes(size)
        return self.env.memory.read(addr, size)

    # -- file I/O (forwarded as hypercalls) ------------------------------------------
    def open(self, path: str, flags: int = 0) -> int:
        return self.env.hypercall(Hypercall.OPEN, path, flags)

    def read(self, fd: int, count: int) -> bytes:
        return self.env.hypercall(Hypercall.READ, fd, count)

    def write(self, fd: int, data: bytes) -> int:
        return self.env.hypercall(Hypercall.WRITE, fd, data)

    def stat_size(self, path: str) -> int:
        return self.env.hypercall(Hypercall.STAT, path)

    def close(self, fd: int) -> int:
        return self.env.hypercall(Hypercall.CLOSE, fd)

    # -- sockets ------------------------------------------------------------------------
    def send(self, handle: int, data: bytes) -> int:
        return self.env.hypercall(Hypercall.SEND, handle, data)

    def recv(self, handle: int, count: int) -> bytes:
        return self.env.hypercall(Hypercall.RECV, handle, count)

    # -- process ------------------------------------------------------------------------
    def exit(self, code: int = 0) -> None:
        self.env.exit(code)

    # -- string formatting (the "large portion ... string formatting
    # routines" of the paper's runtime environment) ------------------------------------
    def snprintf(self, fmt: str, *args: object) -> str:
        """A tiny printf: %s %d %f %x %% (enough for server code)."""
        self.env.charge_bytes(len(fmt))
        out: list[str] = []
        arg_iter = iter(args)
        index = 0
        while index < len(fmt):
            ch = fmt[index]
            if ch != "%":
                out.append(ch)
                index += 1
                continue
            if index + 1 >= len(fmt):
                raise GuestLibcError("dangling % in format string")
            spec = fmt[index + 1]
            index += 2
            if spec == "%":
                out.append("%")
                continue
            try:
                value = next(arg_iter)
            except StopIteration:
                raise GuestLibcError(f"missing argument for %{spec}") from None
            if spec == "d":
                out.append(str(int(value)))
            elif spec == "s":
                out.append(str(value))
            elif spec == "f":
                out.append(f"{float(value):f}")
            elif spec == "x":
                out.append(f"{int(value):x}")
            else:
                raise GuestLibcError(f"unsupported format %{spec}")
        return "".join(out)
