"""Pre-built virtine execution environments (Section 5.4, Figure 10).

Wasp ships two default environments: the C-extension POSIX environment
(boot layer + newlib-analog libc + marshalling glue) and the raw Wasp
environment (boot layer only; the client provides everything).  The
paper envisions "an environment management system that will allow
programmers to treat these environments much like package dependencies"
-- this module is that registry: environments are named, versioned
descriptions of what goes into an image, and they compose.

An :class:`Environment` contributes:

* the target processor mode (a real-mode-only environment skips the
  entire protected/long bring-up, Figure 3's optimisation),
* a byte footprint added to the image,
* a one-time guest initialisation cost (what snapshotting elides),
* the set of hypercalls its runtime layer requires (merged into the
  suggested policy mask).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.hw.costs import COSTS
from repro.hw.cpu import Mode
from repro.runtime.image import ImageBuilder, LIBC_FOOTPRINT, VirtineImage
from repro.wasp.hypercall import Hypercall
from repro.wasp.policy import BitmaskPolicy, Policy, VirtineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wasp.guestenv import GuestEnv


class EnvironmentError_(Exception):
    """An unknown or ill-formed environment request."""


@dataclass(frozen=True)
class Environment:
    """A named, composable execution environment."""

    name: str
    description: str
    mode: Mode = Mode.LONG64
    #: Bytes this environment adds to the image.
    footprint: int = 0
    #: One-time guest-side initialisation cycles (snapshotting skips it).
    init_cycles: int = 0
    #: Hypercalls the environment's runtime layer needs.
    required_hypercalls: frozenset[Hypercall] = frozenset()
    #: Environments this one builds upon (resolved transitively).
    extends: tuple[str, ...] = ()


class EnvironmentRegistry:
    """The package-manager-like registry of environments."""

    def __init__(self) -> None:
        self._environments: dict[str, Environment] = {}

    def register(self, environment: Environment) -> None:
        if environment.name in self._environments:
            raise EnvironmentError_(f"environment {environment.name!r} already registered")
        for parent in environment.extends:
            if parent not in self._environments:
                raise EnvironmentError_(
                    f"environment {environment.name!r} extends unknown {parent!r}"
                )
        self._environments[environment.name] = environment

    def get(self, name: str) -> Environment:
        try:
            return self._environments[name]
        except KeyError:
            raise EnvironmentError_(f"no such environment: {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._environments))

    # -- resolution --------------------------------------------------------------
    def resolve(self, name: str) -> "ResolvedEnvironment":
        """Flatten an environment and its ancestors into one description."""
        chain: list[Environment] = []
        seen: set[str] = set()

        def visit(env_name: str) -> None:
            if env_name in seen:
                return
            seen.add(env_name)
            environment = self.get(env_name)
            for parent in environment.extends:
                visit(parent)
            chain.append(environment)

        visit(name)
        mode = max((e.mode for e in chain), key=lambda m: m.value)
        return ResolvedEnvironment(
            name=name,
            chain=tuple(chain),
            mode=mode,
            footprint=sum(e.footprint for e in chain),
            init_cycles=sum(e.init_cycles for e in chain),
            required_hypercalls=frozenset().union(
                *(e.required_hypercalls for e in chain)
            ),
        )


@dataclass(frozen=True)
class ResolvedEnvironment:
    """A flattened environment, ready to build images from."""

    name: str
    chain: tuple[Environment, ...]
    mode: Mode
    footprint: int
    init_cycles: int
    required_hypercalls: frozenset[Hypercall]

    def suggested_policy(self, *extra: Hypercall) -> Policy:
        """A least-privilege policy covering the environment's needs."""
        config = VirtineConfig.allowing(*self.required_hypercalls, *extra)
        return BitmaskPolicy(config)

    def build_image(
        self,
        name: str,
        entry: Callable[["GuestEnv"], object],
        builder: ImageBuilder | None = None,
        extra_bytes: int = 0,
        metadata: dict | None = None,
    ) -> VirtineImage:
        """Package ``entry`` with this environment's runtime layers.

        The hosted entry is wrapped so the environment's one-time
        initialisation cost is charged on cold starts and skipped after
        a snapshot restore (Figure 7), without the application entry
        having to know about it.
        """
        init_cycles = self.init_cycles
        snapshot_wanted = Hypercall.SNAPSHOT in self.required_hypercalls

        def wrapped_entry(env: "GuestEnv"):
            if not env.from_snapshot and not env.persistent.get("env_ready"):
                env.charge(init_cycles)
                if snapshot_wanted:
                    env.snapshot(payload={"environment": self.name})
            env.persistent["env_ready"] = True
            return entry(env)

        image_builder = builder if builder is not None else ImageBuilder()
        meta = {"environment": self.name, "layers": [e.name for e in self.chain]}
        if metadata:
            meta.update(metadata)
        base = image_builder.hosted(
            name=name,
            entry=wrapped_entry,
            mode=self.mode,
            include_libc=False,
            metadata=meta,
        )
        return VirtineImage(
            name=base.name,
            program=base.program,
            mode=base.mode,
            size=base.code_size + self.footprint + extra_bytes,
            hosted_entry=base.hosted_entry,
            metadata=base.metadata,
        )


def default_registry() -> EnvironmentRegistry:
    """The environments Wasp ships with (Figure 10), plus the app packs."""
    registry = EnvironmentRegistry()
    registry.register(Environment(
        name="raw",
        description="Boot layer only; the client provides the runtime "
                    "(Figure 10 path B, the direct Wasp C++ API).",
        mode=Mode.LONG64,
    ))
    registry.register(Environment(
        name="real-mode",
        description="16-bit-only environment for microsecond-lived "
                    "virtines (skips the entire protected/long bring-up).",
        mode=Mode.REAL16,
    ))
    registry.register(Environment(
        name="posix",
        description="The C-extension environment: newlib-analog libc "
                    "with syscalls forwarded as hypercalls (Figure 10 "
                    "path A).",
        extends=("raw",),
        footprint=LIBC_FOOTPRINT,
        init_cycles=COSTS.GUEST_LIBC_INIT,
        required_hypercalls=frozenset({Hypercall.SNAPSHOT}),
    ))
    registry.register(Environment(
        name="posix-io",
        description="posix plus the file/socket hypercall surface.",
        extends=("posix",),
        required_hypercalls=frozenset({
            Hypercall.OPEN, Hypercall.READ, Hypercall.WRITE,
            Hypercall.STAT, Hypercall.CLOSE, Hypercall.SEND, Hypercall.RECV,
        }),
    ))
    registry.register(Environment(
        name="js-engine",
        description="The Duktape-analog JavaScript engine image "
                    "(Section 6.5).",
        extends=("posix",),
        footprint=564 * 1024,  # + posix's 14K ~= the 578 KB Duktape image
        init_cycles=0,  # the engine charges its own alloc/bind costs
        required_hypercalls=frozenset({
            Hypercall.SNAPSHOT, Hypercall.GET_DATA, Hypercall.RETURN_DATA,
        }),
    ))
    return registry


#: The shared default registry instance.
DEFAULT_REGISTRY = default_registry()
