"""Guest boot code, in the mini-ISA assembly dialect.

This is the analogue of the paper's "roughly 160 lines of assembly" that
"closely mirrors the boot sequence of a classic OS kernel: it configures
protected mode, a GDT, paging, and finally jumps to 64-bit code"
(Section 4.2).  The sources are generated as text and assembled by
:class:`repro.hw.isa.Assembler`, so every boot cost in Table 1 emerges
from executed instructions:

* ``lgdt`` from real mode        -> "Load 32-bit GDT"
* CR0.PE flip                    -> "Protected transition"
* ``ljmp`` into 32-bit code      -> "Jump to 32-bit"
* 514 page-table entry stores + 3 first-touch EPT faults
                                 -> "Paging identity mapping"
* ``lgdt`` from protected mode   -> "Long transition"
* ``ljmp`` into 64-bit code      -> "Jump to 64-bit"

Milestone markers (outs to the zero-cost debug port) bracket each
component so the Table 1 benchmark can recover per-component deltas, just
as the artifact's guest-side ``rdtsc`` instrumentation does.
"""

from __future__ import annotations

from repro.hw.cpu import Mode

#: Where Wasp loads virtine binaries (Section 5.1).
IMAGE_BASE = 0x8000
#: Static GDT location (below the image).
GDT_ADDR = 0x6000
#: Base of the three identity-map table pages (PML4, PDPT, PD).
PAGE_TABLE_BASE = 0x100000
#: Real-mode stack top.
REAL_STACK = 0x7000
#: Protected/long-mode stack top.
HIGH_STACK = 0x200000

# Milestone markers recorded via the debug port.
MS_BOOT_START = 0
MS_AFTER_LGDT32 = 1
MS_AFTER_PE = 2
MS_IN_PROT32 = 3
MS_AFTER_IDENT_MAP = 4
MS_PAGING_ON = 5
MS_AFTER_LGDT64 = 6
MS_IN_LONG64 = 7
MS_MAIN_ENTRY = 10

_PTE_FLAGS = 0x3  # PRESENT | WRITABLE
_PDE_LARGE_FLAGS = 0x83  # PRESENT | WRITABLE | LARGE


def _prologue_real() -> str:
    """Real-mode entry: disable interrupts, set a stack."""
    return f"""
_start:
    cli
    mov sp, {REAL_STACK:#x}
    out 0xE9, {MS_BOOT_START}
"""


def _to_protected() -> str:
    """Real -> protected: load GDT, flip CR0.PE, far jump."""
    return f"""
    lgdt {GDT_ADDR:#x}
    out 0xE9, {MS_AFTER_LGDT32}
    mov bx, cr0
    or bx, 1
    mov cr0, bx
    out 0xE9, {MS_AFTER_PE}
    ljmp mode32, prot_entry
prot_entry:
    out 0xE9, {MS_IN_PROT32}
    mov sp, {HIGH_STACK:#x}
"""


def _build_identity_map() -> str:
    """Protected-mode construction of the 1 GB identity map.

    One PML4 entry, one PDPT entry, and 512 2 MB PD entries: 514 64-bit
    stores touching three previously-untouched table pages ("12 KB of
    memory references", Section 4.2).
    """
    pml4 = PAGE_TABLE_BASE
    pdpt = PAGE_TABLE_BASE + 0x1000
    pd = PAGE_TABLE_BASE + 0x2000
    return f"""
    mov di, {pml4:#x}
    mov ax, {pdpt | _PTE_FLAGS:#x}
    stos64
    mov di, {pdpt:#x}
    mov ax, {pd | _PTE_FLAGS:#x}
    stos64
    mov di, {pd:#x}
    mov ax, {_PDE_LARGE_FLAGS:#x}
    mov cx, 512
pd_loop:
    stos64
    add ax, 0x200000
    dec cx
    jnz pd_loop
    out 0xE9, {MS_AFTER_IDENT_MAP}
"""


def _to_long() -> str:
    """Protected -> long: PAE, CR3, EFER.LME, CR0.PG, GDT, far jump."""
    return f"""
    mov bx, cr4
    or bx, 0x20
    mov cr4, bx
    mov bx, {PAGE_TABLE_BASE:#x}
    mov cr3, bx
    mov cx, 0xC0000080
    mov ax, 0x100
    mov dx, 0
    wrmsr
    mov bx, cr0
    or bx, 0x80000000
    mov cr0, bx
    out 0xE9, {MS_PAGING_ON}
    lgdt {GDT_ADDR:#x}
    out 0xE9, {MS_AFTER_LGDT64}
    ljmp mode64, long_entry
long_entry:
    out 0xE9, {MS_IN_LONG64}
    mov sp, {HIGH_STACK:#x}
"""


def boot_source(mode: Mode, body: str = "    hlt") -> str:
    """Full boot source bringing the machine up to ``mode``, then ``body``.

    ``body`` runs in the target mode; it should end with ``hlt`` or a
    hypercall.  The default body simply halts, which is the minimal
    virtine used by the image-size experiment (Figure 12).
    """
    parts = [_prologue_real()]
    if mode in (Mode.PROT32, Mode.LONG64):
        parts.append(_to_protected())
    if mode is Mode.LONG64:
        parts.append(_build_identity_map())
        parts.append(_to_long())
    parts.append(f"    out 0xE9, {MS_MAIN_ENTRY}\n")
    parts.append(body if body.endswith("\n") else body + "\n")
    return "".join(parts)


def fib_source(mode: Mode, n: int) -> str:
    """Boot to ``mode`` and run a recursive ``fib(n)`` (Figure 3's workload).

    The argument is placed in ``ax``; the result is left in ``ax`` when
    the guest halts (the hypervisor reads it from the vCPU).
    """
    if n < 0:
        raise ValueError("fib argument must be non-negative")
    body = f"""
    mov ax, {n}
    call fib
    hlt
fib:
    cmp ax, 2
    jl fib_done
    push ax
    dec ax
    call fib
    pop bx
    push ax
    mov ax, bx
    sub ax, 2
    call fib
    pop bx
    add ax, bx
fib_done:
    ret
"""
    return boot_source(mode, body)


def echo_guest_source(
    mode: Mode = Mode.PROT32,
    buffer_addr: int = 0x40000,
    max_len: int = 2048,
    conn_handle: int = 0,
) -> str:
    """A *pure assembly* echo server guest (no hosted Python at all).

    Uses the register hypercall ABI: receive into ``buffer_addr`` from
    the granted connection, send the same bytes back, exit.  Port 0x200
    is :data:`repro.wasp.hypercall.HCALL_PORT`; the numbers are the
    :class:`~repro.wasp.hypercall.Hypercall` values (RECV=7, SEND=6,
    EXIT=0).
    """
    body = f"""
    mov bx, {conn_handle}
    mov cx, {buffer_addr:#x}
    mov dx, {max_len}
    out 0x200, 7
    mov dx, ax
    mov bx, {conn_handle}
    mov cx, {buffer_addr:#x}
    out 0x200, 6
    mov bx, 0
    out 0x200, 0
"""
    return boot_source(mode, body)


def hosted_trampoline_source(mode: Mode, enter_port: int) -> str:
    """Boot to ``mode`` and transfer control to the hosted runtime.

    Application-level virtines (the C-extension POSIX environment, the
    JS engine, the HTTP handlers) boot through the same assembly bring-up
    as everything else, then issue an ``out`` on ``enter_port``; the
    hypervisor runs the image's hosted entry function in response (see
    :mod:`repro.wasp.hypervisor`).  When the hosted function finishes,
    execution resumes here and the guest halts.
    """
    body = f"""
    out {enter_port:#x}, 0
    hlt
"""
    return boot_source(mode, body)
