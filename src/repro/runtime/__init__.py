"""Guest runtime environments.

Virtine images bundle a boot layer (written in the mini-ISA assembly
dialect), an optional guest libc (:mod:`repro.runtime.libc`), and the
function to run.  :mod:`repro.runtime.environments` provides the two
pre-built environments of Figure 10.
"""

from repro.runtime.image import VirtineImage, ImageBuilder
from repro.runtime.boot import (
    boot_source,
    fib_source,
    GDT_ADDR,
    PAGE_TABLE_BASE,
    IMAGE_BASE,
)

__all__ = [
    "VirtineImage",
    "ImageBuilder",
    "boot_source",
    "fib_source",
    "GDT_ADDR",
    "PAGE_TABLE_BASE",
    "IMAGE_BASE",
]
