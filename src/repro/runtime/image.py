"""Virtine images.

A virtine image is "a statically compiled binary containing all required
software" (Section 2), typically ~16 KB for the C-extension environment
(boot layer + newlib-analog libc + the function's call-graph slice).  The
image's byte size matters: Wasp copies it into guest memory on first
launch and copies the snapshot on every subsequent launch, so start-up
latency scales with image size (Figure 12).

:class:`ImageBuilder` assembles the boot layer for a target mode and
packages it with an optional *hosted entry* -- the Python callable that
plays the role of the compiled guest function (see
:mod:`repro.wasp.hypervisor` for how it executes under the hypervisor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.hw.cpu import Mode
from repro.hw.isa import Assembler, Program
from repro.runtime.boot import (
    IMAGE_BASE,
    boot_source,
    fib_source,
    hosted_trampoline_source,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wasp.guestenv import GuestEnv

#: Size of the boot layer + newlib-analog libc in the C-extension
#: environment; the paper reports basic images of ~16 KB (Section 2).
LIBC_FOOTPRINT = 14 * 1024

#: Port on which the boot trampoline hands control to the hosted runtime.
HOSTED_ENTER_PORT = 0x1F0


@dataclass
class VirtineImage:
    """An immutable description of what runs inside a virtine."""

    name: str
    program: Program
    mode: Mode
    #: Total image size in bytes (code + libc + data + padding); this is
    #: what launch-time copies are charged for.
    size: int
    #: Hosted guest function (None for pure-assembly virtines).
    hosted_entry: Callable[["GuestEnv"], object] | None = None
    #: Free-form metadata (environment name, workload parameters, ...).
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < len(self.program.image):
            raise ValueError(
                f"declared image size {self.size} smaller than assembled "
                f"code ({len(self.program.image)} bytes)"
            )

    @property
    def code_size(self) -> int:
        """Size of the assembled boot/code portion only."""
        return len(self.program.image)

    @property
    def image_bytes(self) -> bytes:
        """The full padded byte image (code followed by zero padding)."""
        return self.program.image + b"\x00" * (self.size - len(self.program.image))


class ImageBuilder:
    """Builds virtine images from boot sources."""

    def __init__(self, base: int = IMAGE_BASE) -> None:
        self.base = base
        self._assembler = Assembler(base=base)

    def _finish(
        self,
        name: str,
        source: str,
        mode: Mode,
        size: int | None,
        hosted_entry: Callable[["GuestEnv"], object] | None = None,
        metadata: dict | None = None,
    ) -> VirtineImage:
        program = self._assembler.assemble(source)
        declared = size if size is not None else len(program.image)
        declared = max(declared, len(program.image))
        return VirtineImage(
            name=name,
            program=program,
            mode=mode,
            size=declared,
            hosted_entry=hosted_entry,
            metadata=metadata or {},
        )

    def hlt_only(self, size: int | None = None) -> VirtineImage:
        """A context that halts on its very first instruction.

        This is the probe the creation-latency experiments use (Figures
        2 and 8): it measures pure context create/enter/exit with no boot
        work at all.
        """
        return self._finish("hlt-only", "_start:\n    hlt\n", Mode.REAL16, size)

    def minimal(self, mode: Mode = Mode.LONG64, size: int | None = None) -> VirtineImage:
        """A virtine that boots to ``mode`` and immediately halts.

        This is the image used for the boot-breakdown (Table 1) and
        image-size (Figure 12, via ``size`` padding) experiments.
        """
        return self._finish(f"minimal-{mode.value}", boot_source(mode), mode, size)

    def fib(self, mode: Mode, n: int) -> VirtineImage:
        """The hand-written assembly ``fib`` virtine of Figure 3."""
        return self._finish(
            f"fib{n}-{mode.value}",
            fib_source(mode, n),
            mode,
            None,
            metadata={"n": n},
        )

    def hosted(
        self,
        name: str,
        entry: Callable[["GuestEnv"], object],
        mode: Mode = Mode.LONG64,
        size: int | None = None,
        include_libc: bool = True,
        metadata: dict | None = None,
    ) -> VirtineImage:
        """An application virtine: boot layer + hosted guest function.

        ``size`` defaults to the boot code plus the libc footprint, which
        yields the ~16 KB basic images the paper describes.
        """
        source = hosted_trampoline_source(mode, HOSTED_ENTER_PORT)
        program = self._assembler.assemble(source)
        declared = size
        if declared is None:
            declared = len(program.image) + (LIBC_FOOTPRINT if include_libc else 0)
        declared = max(declared, len(program.image))
        return VirtineImage(
            name=name,
            program=program,
            mode=mode,
            size=declared,
            hosted_entry=entry,
            metadata=metadata or {},
        )
