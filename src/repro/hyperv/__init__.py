"""The Windows Hypervisor Platform backend (see :mod:`repro.hyperv.device`)."""

from repro.hyperv.device import HyperV

__all__ = ["HyperV"]
